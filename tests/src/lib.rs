//! Integration test host crate.
