//! Integration tests for the extension features built on top of the
//! paper's headline reproduction: safety monitor, roadside jammer,
//! background traffic and the teleoperation scenario.

use comfase::prelude::*;
use comfase::teleop::{TeleopScenario, TeleopWorld, TELEOP_VEHICLE};
use comfase_des::time::{SimDuration, SimTime};
use comfase_platoon::monitor::SafetyMonitorConfig;
use comfase_traffic::VehicleId;

#[test]
fn safety_monitor_campaign_prevents_dos_collisions() {
    let run = |protected: bool| {
        let mut scenario = TrafficScenario::paper_default();
        scenario.total_sim_time = SimTime::from_secs(40);
        if protected {
            scenario.safety_monitor = Some(SafetyMonitorConfig::default());
        }
        let engine = Engine::new(scenario, CommModel::paper_default(), 42).unwrap();
        let mut setup = AttackCampaignSetup::paper_dos_campaign();
        setup.attack_starts_s = vec![17.0, 18.2, 19.4]; // reduced sweep
        Campaign::new(engine, setup).unwrap().run(1).unwrap()
    };
    let unprotected = run(false);
    let protected = run(true);
    let collisions = |r: &CampaignResult| {
        r.records
            .iter()
            .map(|x| x.verdict.nr_collisions)
            .sum::<usize>()
    };
    assert!(collisions(&unprotected) > 0, "baseline must collide");
    assert!(
        collisions(&protected) < collisions(&unprotected),
        "monitor must remove collisions: {} vs {}",
        collisions(&protected),
        collisions(&unprotected)
    );
}

#[test]
fn monitored_golden_run_is_untouched() {
    // The monitor must not fire in healthy driving — otherwise it would
    // change the golden run and invalidate the classification baseline.
    let mut scenario = TrafficScenario::paper_default();
    scenario.total_sim_time = SimTime::from_secs(30);
    let plain = Engine::new(scenario.clone(), CommModel::paper_default(), 42)
        .unwrap()
        .golden_run()
        .unwrap();
    scenario.safety_monitor = Some(SafetyMonitorConfig::default());
    let monitored = Engine::new(scenario, CommModel::paper_default(), 42)
        .unwrap()
        .golden_run()
        .unwrap();
    assert_eq!(plain.max_decel(), monitored.max_decel());
    for v in [1u32, 2, 3, 4] {
        let a = plain.trace.vehicle(VehicleId(v)).unwrap();
        let b = monitored.trace.vehicle(VehicleId(v)).unwrap();
        assert_eq!(a.max_speed_deviation(b), 0.0, "vehicle {v} diverged");
    }
}

#[test]
fn jammer_classified_through_normal_pipeline() {
    let scenario = {
        let mut s = TrafficScenario::paper_default();
        s.total_sim_time = SimTime::from_secs(30);
        s
    };
    let engine = Engine::new(scenario.clone(), CommModel::paper_default(), 42).unwrap();
    let golden = engine.golden_run().unwrap();
    let mut world = World::new(&scenario, &CommModel::paper_default(), 42).unwrap();
    // The platoon cruises at ~27.8 m/s from x = 500: park the jammer where
    // it will be mid-window (t = 20 s -> x ~ 1050).
    world.add_jammer(JammerSpec {
        pos_x_m: 1050.0,
        pos_y_m: 10.0,
        period: SimDuration::from_micros(400),
        payload_bytes: 200,
        start: SimTime::from_secs(15),
        end: SimTime::from_secs(25),
    });
    world.run_to_end();
    let run = world.into_log();
    assert!(run.channel.lost_snir > 100, "jamming must destroy frames");
    let verdict = comfase::campaign::classify_against(&golden, &run);
    // Losing most beacons for 15 s must at least perturb the platoon.
    assert_ne!(verdict.class, Classification::NonEffective, "{verdict:?}");
}

#[test]
fn background_traffic_is_logged_and_harmless_in_other_lanes() {
    let mut scenario = TrafficScenario::paper_default();
    scenario.total_sim_time = SimTime::from_secs(20);
    scenario.background_vehicles = vec![(1, 480.0, 22.0), (1, 420.0, 26.0), (2, 300.0, 30.0)];
    let engine = Engine::new(scenario, CommModel::paper_default(), 42).unwrap();
    let golden = engine.golden_run().unwrap();
    assert!(!golden.has_collision());
    // 4 platoon + 3 background vehicles all traced.
    assert_eq!(golden.trace.vehicle_ids().len(), 7);
    // Background Krauss car catching a slower one keeps a positive gap.
    let fast = golden.trace.vehicle(VehicleId(6)).unwrap();
    assert!(fast.pos.max_value().unwrap() > 420.0);
}

#[test]
fn teleop_delay_campaign_sweep() {
    // A miniature campaign over the teleoperation scenario: increasing
    // command delay monotonically erodes the stopping margin until the
    // vehicle crashes.
    let scenario = TeleopScenario::highway_default();
    let obstacle_rear = scenario.obstacle_pos_m - scenario.vehicle.length_m;
    let mut margins = Vec::new();
    for pd in [0.0, 0.4, 0.8] {
        let mut w = TeleopWorld::new(&scenario, 3).unwrap();
        if pd > 0.0 {
            let attack = AttackSpec {
                model: AttackModelKind::Delay,
                value: pd,
                targets: vec![TELEOP_VEHICLE].into(),
                start: SimTime::ZERO,
                end: scenario.total_sim_time,
            };
            w.install_attack(attack.build_interceptor(0));
        }
        w.run_to_end();
        let log = w.into_log();
        let tr = log.trace.vehicle(VehicleId(TELEOP_VEHICLE)).unwrap();
        margins.push(obstacle_rear - tr.pos.max_value().unwrap());
    }
    assert!(
        margins[0] > margins[1] && margins[1] > margins[2],
        "margins must shrink with delay: {margins:?}"
    );
    assert!(
        margins[0] > 5.0,
        "healthy run keeps a healthy margin: {margins:?}"
    );
}

#[test]
fn teleop_status_falsification_is_dangerous() {
    // Falsify the *uplinked position* (the vehicle pretends to be further
    // back): the operator brakes too late.
    let scenario = TeleopScenario::highway_default();
    let run = |offset: f64| {
        let mut w = TeleopWorld::new(&scenario, 3).unwrap();
        if offset != 0.0 {
            // Falsification of the teleop status payload is intentionally
            // beacon-format specific; emulate the same effect with a delay
            // of the uplink only — sender-side targeting.
            let attack = AttackSpec {
                model: AttackModelKind::Delay,
                value: offset,
                targets: vec![TELEOP_VEHICLE].into(),
                start: SimTime::ZERO,
                end: scenario.total_sim_time,
            };
            w.install_attack(attack.build_interceptor(0));
        }
        w.run_to_end();
        let log = w.into_log();
        log.trace.has_collision()
    };
    assert!(!run(0.0));
    assert!(
        run(2.0),
        "2 s of stale state must defeat the operator's planning"
    );
}

#[test]
fn staleness_failsafe_mitigates_dos() {
    let run = |timeout: Option<f64>| {
        let mut scenario = TrafficScenario::paper_default();
        scenario.total_sim_time = SimTime::from_secs(40);
        scenario.platoon.staleness_timeout_s = timeout;
        let engine = Engine::new(scenario, CommModel::paper_default(), 42).unwrap();
        let attack = AttackSpec {
            model: AttackModelKind::Dos,
            value: 60.0,
            targets: vec![2].into(),
            start: SimTime::from_secs(17),
            end: SimTime::from_secs(40),
        };
        engine.run_experiment(&attack, 0).unwrap()
    };
    let unprotected = run(None);
    let protected = run(Some(0.5));
    assert!(unprotected.has_collision(), "paper behaviour reproduced");
    assert!(
        !protected.has_collision(),
        "a 0.5 s staleness failsafe must defuse the DoS: {:?}",
        protected.trace.collisions
    );
    // The failsafe actually engaged on the attacked vehicle.
    assert!(protected.comm[&2].app.degraded_steps > 0);
    // And the healthy vehicles never degraded before the attack.
    let golden = {
        let mut scenario = TrafficScenario::paper_default();
        scenario.total_sim_time = SimTime::from_secs(40);
        scenario.platoon.staleness_timeout_s = Some(0.5);
        Engine::new(scenario, CommModel::paper_default(), 42)
            .unwrap()
            .golden_run()
            .unwrap()
    };
    for v in [2u32, 3, 4] {
        assert_eq!(
            golden.comm[&v].app.degraded_steps, 0,
            "vehicle {v} degraded in golden run"
        );
    }
}

#[test]
fn multi_target_attack_hits_all_targets() {
    let mut scenario = TrafficScenario::paper_default();
    scenario.total_sim_time = SimTime::from_secs(30);
    let engine = Engine::new(scenario, CommModel::paper_default(), 42).unwrap();
    let attack = AttackSpec {
        model: AttackModelKind::Dos,
        value: 30.0,
        targets: vec![2, 3].into(),
        start: SimTime::from_secs(10),
        end: SimTime::from_secs(30),
    };
    let run = engine.run_experiment(&attack, 0).unwrap();
    let golden = engine.golden_run().unwrap();
    // Both targets stop hearing beacons; vehicle 4 loses its predecessor
    // (3) but still hears the leader.
    for v in [2u32, 3] {
        assert!(
            run.comm[&v].app.beacons_used < golden.comm[&v].app.beacons_used,
            "vehicle {v} kept receiving"
        );
    }
    let verdict = engine.classify_experiment(&golden, &run);
    assert_eq!(verdict.class, Classification::Severe);
}

#[test]
fn collision_latency_is_reported_for_dos_campaign() {
    let mut scenario = TrafficScenario::paper_default();
    scenario.total_sim_time = SimTime::from_secs(40);
    let engine = Engine::new(scenario, CommModel::paper_default(), 42).unwrap();
    let mut setup = AttackCampaignSetup::paper_dos_campaign();
    setup.attack_starts_s = vec![17.0, 17.4, 17.8];
    let result = Campaign::new(engine, setup).unwrap().run(1).unwrap();
    let stats = comfase::analysis::collision_latency_stats(&result.records);
    assert!(stats.count() >= 2, "DoS at cycle start collides");
    // Collisions need a physically plausible build-up time.
    assert!(stats.min().unwrap() > 0.5, "{stats}");
    assert!(stats.max().unwrap() < 23.0, "{stats}");
}
