//! Integration tests for fault-tolerant campaign execution: panic
//! isolation, the deterministic event-budget watchdog, quarantine, and
//! checkpoint/resume from the append-only journal.
//!
//! The budget tests self-calibrate: they run the campaign once without a
//! budget, read each experiment's `kernel.delivered` from the metrics
//! artifact (the exact counter the watchdog checks), and pick a limit
//! below the heaviest experiment. That keeps the assertions valid as the
//! simulation stack evolves — no magic event counts.

use std::path::PathBuf;

use comfase::prelude::*;
use comfase_des::time::SimTime;

fn quick_scenario(secs: i64) -> TrafficScenario {
    let mut s = TrafficScenario::paper_default();
    s.total_sim_time = SimTime::from_secs(secs);
    s
}

/// An 8-experiment delay campaign with telemetry on (the same shape the
/// observability suite uses).
fn supervised_campaign() -> Campaign {
    let setup = AttackCampaignSetup {
        attack_model: AttackModelKind::Delay,
        target_vehicles: vec![2],
        attack_values: vec![0.4, 1.6],
        attack_starts_s: vec![17.0, 19.4],
        attack_durations_s: vec![2.0, 8.0],
    };
    let engine = Engine::new(quick_scenario(30), CommModel::paper_default(), 42).unwrap();
    Campaign::new(engine, setup)
        .unwrap()
        .with_obs(ObsConfig::metrics_only())
}

/// Per-experiment delivered-event totals from an unconstrained run —
/// the calibration data for the budget tests.
fn delivered_per_experiment() -> Vec<(usize, u64)> {
    let metrics = supervised_campaign()
        .run_with_mode(2, ExecutionMode::FromScratch)
        .unwrap()
        .metrics
        .expect("telemetry was enabled");
    metrics
        .per_experiment
        .iter()
        .map(|row| (row.index, row.kernel.delivered))
        .collect()
}

/// A journal path in the system temp dir, unique per test process, with
/// any stale copy removed.
fn tmp_journal(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "comfase-robustness-{}-{name}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn quarantine_config(mode: ExecutionMode) -> RunConfig {
    RunConfig {
        mode,
        failure_policy: FailurePolicy::quarantine(),
        ..RunConfig::default()
    }
}

/// Acceptance: a campaign containing a panicking experiment and a
/// budget-exceeding experiment still completes under quarantine, and the
/// failure report carries structured kinds for both.
#[test]
fn panicking_and_budget_exceeding_experiments_are_quarantined() {
    let delivered = delivered_per_experiment();
    let total = delivered.len();
    assert_eq!(total, 8);
    let (heaviest, max_delivered) = *delivered.iter().max_by_key(|(_, d)| *d).unwrap();
    // Panic on some experiment other than the heaviest, so the budget
    // failure and the panic land on distinct indices.
    let panic_index = (heaviest + 1) % total;

    let campaign = supervised_campaign()
        .with_chaos(ChaosConfig {
            panic_on: vec![panic_index],
            ..ChaosConfig::default()
        })
        .with_budget(EventBudget {
            max_delivered: Some(max_delivered - 1),
            ..EventBudget::UNLIMITED
        });
    let result = campaign
        .run_supervised(
            4,
            &quarantine_config(ExecutionMode::PrefixFork),
            &NullObserver,
        )
        .unwrap();

    assert_eq!(
        result.records.len() + result.failures.len(),
        total,
        "every experiment either completed or was quarantined: {:?}",
        result.failure_summary()
    );
    let panic_failure = result
        .failures
        .iter()
        .find(|f| f.index == panic_index)
        .expect("chaos panic was quarantined");
    assert_eq!(panic_failure.kind, FailureKind::Panicked);
    assert!(
        panic_failure.payload.contains("injected panic"),
        "{panic_failure:?}"
    );
    let budget_failure = result
        .failures
        .iter()
        .find(|f| f.index == heaviest)
        .expect("heaviest experiment exceeded the budget");
    assert_eq!(budget_failure.kind, FailureKind::BudgetExceeded);
    assert!(result.failure_summary().contains_key("panicked"));
    assert!(result.failure_summary().contains_key("budget-exceeded"));
    // Everything that is neither panicked nor over budget completed.
    assert!(!result.records.is_empty());
}

/// The event-budget watchdog is deterministic: the same experiments fail
/// with the same structured failures on every thread count and in every
/// execution mode — including `SnapshotDag`, where the breach may surface
/// while advancing a shared attack chain.
#[test]
fn budget_failures_identical_across_modes_and_threads() {
    let delivered = delivered_per_experiment();
    let max_delivered = delivered.iter().map(|(_, d)| *d).max().unwrap();
    let budget = EventBudget {
        max_delivered: Some(max_delivered - 1),
        ..EventBudget::UNLIMITED
    };

    let run = |threads: usize, mode: ExecutionMode| {
        supervised_campaign()
            .with_budget(budget)
            .run_supervised(threads, &quarantine_config(mode), &NullObserver)
            .unwrap()
    };

    let reference = run(1, ExecutionMode::FromScratch);
    assert!(
        !reference.failures.is_empty(),
        "the heaviest experiment must exceed the budget"
    );
    for failure in &reference.failures {
        assert_eq!(failure.kind, FailureKind::BudgetExceeded, "{failure:?}");
        assert_eq!(failure.attempts, 1, "budget breaches are not retried");
    }
    for threads in [1, 4, 8] {
        for mode in [
            ExecutionMode::FromScratch,
            ExecutionMode::PrefixFork,
            ExecutionMode::SnapshotDag,
        ] {
            let other = run(threads, mode);
            assert_eq!(
                other.failures, reference.failures,
                "failures diverged at {threads} thread(s) under {mode:?}"
            );
            assert_eq!(
                other.records, reference.records,
                "records diverged at {threads} thread(s) under {mode:?}"
            );
        }
    }
}

/// The journal records the full campaign: a header pinning the campaign
/// identity plus one completed entry per experiment, and resuming from a
/// complete journal reproduces the metrics artifact byte for byte.
#[test]
fn journal_records_a_full_campaign_and_resumes_from_it() {
    let path = tmp_journal("full");
    let campaign = supervised_campaign();
    let config = RunConfig {
        journal: Some(path.clone()),
        ..RunConfig::default()
    };
    let reference = campaign.run_supervised(4, &config, &NullObserver).unwrap();
    let reference_bytes = reference.metrics.as_ref().unwrap().to_json_bytes();

    let state = read_journal(&path).unwrap();
    let header = state.header.clone().expect("journal has a header");
    assert_eq!(header.schema_version, 2);
    assert_eq!(header.seed, 42);
    assert_eq!(header.total, 8);
    assert_eq!(&header.setup, campaign.setup());
    assert_eq!(header.fingerprint, campaign.fingerprint().unwrap());
    assert_eq!(header.shard, None, "an unsharded run declares no shard");
    assert!(
        state.golden.is_some(),
        "a telemetry-enabled journal carries the golden metrics row"
    );
    assert_eq!(state.completed.len(), 8);
    assert!(state.failures.is_empty());

    // Resuming from the complete journal re-runs nothing and still hands
    // back the identical artifact.
    let resumed = campaign.resume(&path, 4).unwrap();
    assert_eq!(resumed.records, reference.records);
    assert_eq!(
        resumed.metrics.as_ref().unwrap().to_json_bytes(),
        reference_bytes
    );
    let _ = std::fs::remove_file(&path);
}

/// Resume after an interruption — journal truncated mid-campaign with a
/// torn final line, as a SIGKILL mid-write leaves it — produces records
/// and a metrics artifact byte-identical to the uninterrupted run's, in
/// every execution mode and at 1/4/8 worker threads.
#[test]
fn resume_after_truncation_is_byte_identical() {
    let reference_path = tmp_journal("reference");
    let campaign = supervised_campaign();
    let config = RunConfig {
        journal: Some(reference_path.clone()),
        ..RunConfig::default()
    };
    let reference = campaign.run_supervised(4, &config, &NullObserver).unwrap();
    let reference_bytes = reference.metrics.as_ref().unwrap().to_json_bytes();

    // Keep the header, the golden row and the first three completed
    // experiments, then a torn final line: the on-disk state after
    // killing the process.
    let full = std::fs::read_to_string(&reference_path).unwrap();
    let kept: Vec<&str> = full.lines().take(5).collect();
    let mut truncated = kept.join("\n");
    truncated.push('\n');
    truncated.push_str("{\"entry\":\"completed\",\"ind");

    for threads in [1, 4, 8] {
        for mode in [
            ExecutionMode::FromScratch,
            ExecutionMode::PrefixFork,
            ExecutionMode::SnapshotDag,
        ] {
            let path = tmp_journal("truncated");
            std::fs::write(&path, &truncated).unwrap();
            let resume_config = RunConfig {
                mode,
                journal: Some(path.clone()),
                resume: true,
                ..RunConfig::default()
            };
            let resumed = campaign
                .run_supervised(threads, &resume_config, &NullObserver)
                .unwrap();
            assert_eq!(
                resumed.records, reference.records,
                "records diverged at {threads} thread(s) under {mode:?}"
            );
            assert_eq!(
                resumed.metrics.as_ref().unwrap().to_json_bytes(),
                reference_bytes,
                "metrics artifact diverged at {threads} thread(s) under {mode:?}"
            );
            // After the resumed run, the journal accounts for everything.
            let state = read_journal(&path).unwrap();
            assert_eq!(state.completed.len(), 8);
            let _ = std::fs::remove_file(&path);
        }
    }
    let _ = std::fs::remove_file(&reference_path);
}

/// A journal from a different campaign (wrong seed) is rejected on
/// resume instead of silently merging foreign results.
#[test]
fn resume_rejects_a_foreign_journal() {
    let path = tmp_journal("foreign");
    let campaign = supervised_campaign();
    let config = RunConfig {
        journal: Some(path.clone()),
        ..RunConfig::default()
    };
    campaign.run_supervised(2, &config, &NullObserver).unwrap();

    let setup = campaign.setup().clone();
    let other_engine = Engine::new(quick_scenario(30), CommModel::paper_default(), 43).unwrap();
    let other = Campaign::new(other_engine, setup)
        .unwrap()
        .with_obs(ObsConfig::metrics_only());
    let err = other.resume(&path, 2).unwrap_err();
    assert!(
        matches!(err, ComfaseError::InvalidConfig(_)),
        "foreign journal must be an InvalidConfig error, got {err:?}"
    );
    let _ = std::fs::remove_file(&path);
}

/// A journal whose pre-fingerprint identity fields all match (same seed,
/// same experiment count, same setup) but whose underlying configuration
/// changed — here the traffic scenario — is rejected on resume: only the
/// canonical full-config fingerprint can catch this class of mismatch.
#[test]
fn resume_rejects_a_mutated_configuration() {
    let path = tmp_journal("mutated-config");
    let campaign = supervised_campaign();
    let config = RunConfig {
        journal: Some(path.clone()),
        ..RunConfig::default()
    };
    campaign.run_supervised(2, &config, &NullObserver).unwrap();

    let engine = Engine::new(quick_scenario(31), CommModel::paper_default(), 42).unwrap();
    let mutated = Campaign::new(engine, campaign.setup().clone())
        .unwrap()
        .with_obs(ObsConfig::metrics_only());
    assert_ne!(
        mutated.fingerprint().unwrap(),
        campaign.fingerprint().unwrap(),
        "the scenario change must move the fingerprint"
    );
    let err = mutated.resume(&path, 2).unwrap_err();
    assert!(
        matches!(err, ComfaseError::InvalidConfig(_)),
        "mutated config must be an InvalidConfig error, got {err:?}"
    );
    assert!(
        err.to_string().contains("fingerprint"),
        "the error should name the fingerprint mismatch: {err}"
    );
    let _ = std::fs::remove_file(&path);
}

/// Kill-one-shard recovery end to end: a 2-way split where one shard's
/// journal is truncated mid-campaign (as a SIGKILL leaves it), then that
/// shard is resumed and the journals merged — the merged artifact is
/// byte-identical to the single-process run's.
#[test]
fn killed_shard_resumes_and_merges_byte_identically() {
    use comfase_dist::merge_journals;

    let campaign = supervised_campaign();
    let reference = campaign.run(4).unwrap();
    let reference_bytes = reference.metrics.as_ref().unwrap().to_json_bytes();

    let shard0 = tmp_journal("shard0");
    let shard1 = tmp_journal("shard1");
    for (index, path) in [(0, &shard0), (1, &shard1)] {
        let config = RunConfig {
            journal: Some(path.clone()),
            shard: Some(ShardRange { index, of: 2 }),
            ..RunConfig::default()
        };
        campaign.run_supervised(2, &config, &NullObserver).unwrap();
    }

    // Kill shard 1 mid-run: keep its header, golden row and first two
    // completed experiments, then a torn final line.
    let full = std::fs::read_to_string(&shard1).unwrap();
    let kept: Vec<&str> = full.lines().take(4).collect();
    let mut truncated = kept.join("\n");
    truncated.push('\n');
    truncated.push_str("{\"entry\":\"completed\",\"ind");
    std::fs::write(&shard1, &truncated).unwrap();

    // Merging the incomplete split refuses loudly instead of producing a
    // partial artifact.
    let err = merge_journals(&[shard0.clone(), shard1.clone()]).unwrap_err();
    assert!(
        matches!(err, ComfaseError::InvalidConfig(_)),
        "incomplete coverage must be an InvalidConfig error, got {err:?}"
    );

    // Resume the killed shard, then merge: byte-identical.
    let resume_config = RunConfig {
        journal: Some(shard1.clone()),
        resume: true,
        shard: Some(ShardRange { index: 1, of: 2 }),
        ..RunConfig::default()
    };
    campaign
        .run_supervised(2, &resume_config, &NullObserver)
        .unwrap();
    let merged = merge_journals(&[shard0.clone(), shard1.clone()]).unwrap();
    assert_eq!(
        merged.to_json_bytes(),
        reference_bytes,
        "merged shard metrics must be byte-identical to the single-process artifact"
    );
    let _ = std::fs::remove_file(&shard0);
    let _ = std::fs::remove_file(&shard1);
}

/// Panic isolation end to end: under the default abort policy a chaos
/// panic surfaces as a structured `WorkerFailed` error — not a poisoned
/// thread pool or an aborted process.
#[test]
fn abort_policy_surfaces_a_panic_as_worker_failed() {
    let campaign = supervised_campaign().with_chaos(ChaosConfig {
        panic_on: vec![3],
        ..ChaosConfig::default()
    });
    let err = campaign.run(4).unwrap_err();
    match err {
        ComfaseError::WorkerFailed(msg) => {
            assert!(msg.contains("injected panic"), "{msg}");
        }
        other => panic!("expected WorkerFailed, got {other:?}"),
    }
}
