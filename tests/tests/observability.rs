//! Integration tests for the observability subsystem (`comfase-obs`):
//! the deterministic `metrics.json` artifact and the frame-accounting
//! identity, exercised through the full engine/campaign stack.

use comfase::prelude::*;
use comfase_des::time::{SimDuration, SimTime};

fn quick_scenario(secs: i64) -> TrafficScenario {
    let mut s = TrafficScenario::paper_default();
    s.total_sim_time = SimTime::from_secs(secs);
    s
}

fn metrics_campaign() -> Campaign {
    let setup = AttackCampaignSetup {
        attack_model: AttackModelKind::Delay,
        target_vehicles: vec![2],
        attack_values: vec![0.4, 1.6],
        attack_starts_s: vec![17.0, 19.4],
        attack_durations_s: vec![2.0, 8.0],
    };
    let engine = Engine::new(quick_scenario(30), CommModel::paper_default(), 42).unwrap();
    Campaign::new(engine, setup)
        .unwrap()
        .with_obs(ObsConfig::metrics_only())
}

fn run_metrics(threads: usize, mode: ExecutionMode) -> CampaignMetrics {
    metrics_campaign()
        .run_with_mode(threads, mode)
        .unwrap()
        .metrics
        .expect("telemetry was enabled")
}

/// The campaign-level metrics artifact is part of the deterministic
/// contract: fork-from-prefix execution and from-scratch execution must
/// produce the same values, at any worker-thread count.
#[test]
fn campaign_metrics_identical_across_modes_and_threads() {
    let reference = run_metrics(1, ExecutionMode::FromScratch);
    assert_eq!(reference.experiments, 8);
    assert_eq!(
        reference.aggregate.verdicts.values().sum::<u64>(),
        8,
        "{reference:?}"
    );
    for threads in [1, 4, 8] {
        let forked = run_metrics(threads, ExecutionMode::PrefixFork);
        assert_eq!(
            forked, reference,
            "metrics diverged at {threads} thread(s) under PrefixFork"
        );
        let dag = run_metrics(threads, ExecutionMode::SnapshotDag);
        assert_eq!(
            dag, reference,
            "metrics diverged at {threads} thread(s) under SnapshotDag"
        );
    }
    let scratch4 = run_metrics(4, ExecutionMode::FromScratch);
    assert_eq!(scratch4, reference);
}

/// Stronger than struct equality: the serialized artifact written to
/// `results/metrics.json` is byte-for-byte identical across modes.
#[test]
fn metrics_json_bytes_identical_across_modes() {
    let scratch = run_metrics(1, ExecutionMode::FromScratch).to_json_bytes();
    let forked = run_metrics(8, ExecutionMode::PrefixFork).to_json_bytes();
    let dag = run_metrics(8, ExecutionMode::SnapshotDag).to_json_bytes();
    assert_eq!(scratch, forked);
    assert_eq!(
        scratch, dag,
        "SnapshotDag artifact must match byte-for-byte"
    );
    assert_eq!(
        scratch.last(),
        Some(&b'\n'),
        "artifact is newline-terminated"
    );
}

/// Every planned link is attributed to exactly one fate when telemetry is
/// on: `links_planned == received + lost_snir + lost_sensitivity +
/// rx_inactive + in_flight_at_end`. A jammer makes the normally-zero
/// terms non-trivial — SNIR losses from collisions and `rx_inactive` from
/// links planned toward the jammer's own never-decoding radio.
#[test]
fn drop_causes_sum_to_frames_not_delivered() {
    let scenario = quick_scenario(10);
    let mut world = World::with_obs(
        &scenario,
        &CommModel::paper_default(),
        1,
        ObsConfig::metrics_only(),
    )
    .unwrap();
    world.add_jammer(JammerSpec {
        pos_x_m: 490.0,
        pos_y_m: 10.0,
        period: SimDuration::from_micros(300),
        payload_bytes: 200,
        start: SimTime::from_secs(2),
        end: SimTime::from_secs(10),
    });
    world.run_to_end();
    let log = world.into_log();

    let f = log.frame_breakdown();
    assert!(f.links_planned > 0, "{f:?}");
    assert!(f.lost_snir > 0, "jammer must cause SNIR losses: {f:?}");
    assert!(
        f.rx_inactive > 0,
        "links planned toward the jammer radio count as rx_inactive: {f:?}"
    );
    assert_eq!(
        f.links_planned,
        f.received + f.lost_snir + f.lost_sensitivity + f.rx_inactive + f.in_flight_at_end,
        "accounting identity: {f:?}"
    );
    assert_eq!(
        f.not_delivered(),
        f.lost_snir + f.lost_sensitivity + f.rx_inactive + f.in_flight_at_end,
        "{f:?}"
    );

    // The obs counters agree with the channel's own bookkeeping. The
    // jammer bypasses the MAC, so vehicle transmissions ("phy.tx.frames")
    // plus one junk frame per dispatched jammer event cover everything
    // the channel counted.
    assert_eq!(log.obs.counter("phy.rx.ok"), log.channel.received);
    assert_eq!(
        log.obs.counter("phy.rx.lost"),
        log.channel.lost_snir + log.channel.lost_sensitivity
    );
    let jammer_frames = log.obs.counter("kernel.dispatch.jammer_tx");
    assert!(jammer_frames > 0);
    assert_eq!(
        log.obs.counter("phy.tx.frames") + jammer_frames,
        log.channel.transmissions
    );
}

/// Telemetry is opt-in: the default (`NullRecorder`) path records nothing
/// and the campaign result carries no metrics block.
#[test]
fn telemetry_disabled_by_default() {
    let engine = Engine::new(quick_scenario(5), CommModel::paper_default(), 42).unwrap();
    let golden = engine.golden_run().unwrap();
    assert!(golden.obs.is_empty(), "{:?}", golden.obs);

    let setup = AttackCampaignSetup {
        attack_model: AttackModelKind::Delay,
        target_vehicles: vec![2],
        attack_values: vec![0.4],
        attack_starts_s: vec![2.0],
        attack_durations_s: vec![1.0],
    };
    let campaign = Campaign::new(
        Engine::new(quick_scenario(5), CommModel::paper_default(), 42).unwrap(),
        setup,
    )
    .unwrap();
    let result = campaign.run(2).unwrap();
    assert!(result.metrics.is_none());
}

/// Event tracing captures tx/rx marks with sim timestamps and renders a
/// chrome://tracing-loadable JSON document.
#[test]
fn golden_run_event_trace_renders() {
    let engine = Engine::new(quick_scenario(5), CommModel::paper_default(), 42)
        .unwrap()
        .with_obs(ObsConfig::with_trace());
    let golden = engine.golden_run().unwrap();
    assert!(!golden.obs.events.is_empty());
    // No jammer here, so the MAC-level tx counter covers every frame the
    // channel put on the air.
    assert_eq!(
        golden.obs.counter("phy.tx.frames"),
        golden.channel.transmissions
    );
    let json = chrome_trace_json(&golden.obs.events);
    assert!(json.starts_with('{'), "object-form trace document");
    assert!(json.contains("\"traceEvents\":["), "trace events array");
    assert!(json.contains("\"ph\":\"B\""), "begin events present");
    assert!(json.contains("\"ph\":\"i\""), "instant events present");
}
