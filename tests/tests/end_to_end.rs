//! End-to-end integration tests across all ComFASE-RS crates: DES kernel,
//! traffic, wireless, platooning and the ComFASE engine together.

use comfase::analysis;
use comfase::prelude::*;
use comfase_des::time::{SimDuration, SimTime};
use comfase_traffic::VehicleId;

fn quick_scenario(secs: i64) -> TrafficScenario {
    let mut s = TrafficScenario::paper_default();
    s.total_sim_time = SimTime::from_secs(secs);
    s
}

fn engine(secs: i64) -> Engine {
    Engine::new(quick_scenario(secs), CommModel::paper_default(), 42).unwrap()
}

#[test]
fn full_pipeline_small_campaign() {
    let setup = AttackCampaignSetup {
        attack_model: AttackModelKind::Delay,
        target_vehicles: vec![2],
        attack_values: vec![0.4, 1.6],
        attack_starts_s: vec![17.0, 19.4],
        attack_durations_s: vec![2.0, 8.0],
    };
    let campaign = Campaign::new(engine(35), setup).unwrap();
    let result = campaign.run(2).unwrap();
    assert_eq!(result.len(), 8);

    // Analysis plumbing produces consistent totals.
    let summary = analysis::summary(&result.records);
    assert_eq!(summary.total(), 8);
    let by_dur = analysis::by_duration(&result.records);
    assert_eq!(by_dur.values().map(|c| c.total()).sum::<usize>(), 8);
    let by_val = analysis::by_value(&result.records);
    assert_eq!(by_val.len(), 2);
    let by_start = analysis::by_start_time(&result.records);
    assert_eq!(by_start.len(), 2);

    // The strong long attack must dominate the weak short one.
    let weak = &result.records[0]; // start 17.0, value 0.4, dur 2
    let strong = &result.records[3]; // start 17.0, value 1.6, dur 8
    assert!(strong.verdict.class >= weak.verdict.class, "{result:?}");
}

#[test]
fn golden_run_statistics_are_plausible() {
    let golden = engine(30).golden_run().unwrap();
    // All four vehicles traced over the full horizon at 100 Hz.
    assert_eq!(golden.trace.vehicle_ids().len(), 4);
    for (id, tr) in golden.trace.iter() {
        assert_eq!(tr.speed.len(), 3000, "{id} has wrong trace length");
        // Everyone keeps moving at highway speed.
        assert!(tr.speed.min_value().unwrap() > 20.0);
        assert!(tr.speed.max_value().unwrap() < 35.0);
    }
    // Radio actually worked: ~10 beacons/s/vehicle for 30 s, all received
    // by 3 peers within close range.
    assert!(golden.channel.transmissions >= 4 * 280);
    assert!(
        golden.channel.received > golden.channel.transmissions,
        "broadcast fan-out"
    );
    assert_eq!(golden.channel.links_dropped_by_interceptor, 0);
    assert_eq!(golden.channel.links_delay_modified, 0);
}

#[test]
fn delay_attack_changes_only_the_attack_window_onwards() {
    let e = engine(30);
    let golden = e.golden_run().unwrap();
    let attack = AttackSpec {
        model: AttackModelKind::Delay,
        value: 1.0,
        targets: vec![2].into(),
        start: SimTime::from_secs(17),
        end: SimTime::from_secs(20),
    };
    let run = e.run_experiment(&attack, 0).unwrap();
    // Before the attack the two runs are bit-identical.
    for v in [1u32, 2, 3, 4] {
        let g = golden.trace.vehicle(VehicleId(v)).unwrap();
        let r = run.trace.vehicle(VehicleId(v)).unwrap();
        for t in [1.0, 5.0, 10.0, 16.9] {
            let st = SimTime::from_secs_f64(t);
            assert_eq!(
                g.speed.sample_at(st),
                r.speed.sample_at(st),
                "veh {v} diverged before the attack at {t}s"
            );
        }
    }
    // After it, vehicle 2 (or a follower) deviates.
    let verdict = e.classify_experiment(&golden, &run);
    assert!(verdict.max_speed_deviation_mps > 0.01, "{verdict:?}");
}

#[test]
fn dos_blocks_all_target_communication() {
    let e = engine(30);
    let attack = AttackSpec {
        model: AttackModelKind::Dos,
        value: 30.0,
        targets: vec![2].into(),
        start: SimTime::from_secs(10),
        end: SimTime::from_secs(30),
    };
    let run = e.run_experiment(&attack, 0).unwrap();
    // Vehicle 3's predecessor knowledge froze at the attack start: its
    // app stops counting predecessor beacons after t=10 while leader
    // beacons keep arriving.
    let golden = e.golden_run().unwrap();
    let g3 = golden.comm[&3].app.beacons_used;
    let r3 = run.comm[&3].app.beacons_used;
    assert!(
        r3 < g3,
        "vehicle 3 should have received fewer beacons under DoS: {r3} vs {g3}"
    );
    // Vehicle 2 hears nothing at all after t=10: beacons used drops.
    assert!(run.comm[&2].app.beacons_used < golden.comm[&2].app.beacons_used);
}

#[test]
fn attacking_everyone_disables_the_whole_platoon_network() {
    let e = engine(30);
    let attack = AttackSpec {
        model: AttackModelKind::Dos,
        value: 30.0,
        targets: vec![1, 2, 3, 4].into(),
        start: SimTime::from_secs(5),
        end: SimTime::from_secs(30),
    };
    let run = e.run_experiment(&attack, 0).unwrap();
    // After t=5 nothing is delivered: roughly 4 vehicles * ~49 beacons
    // before the attack fan out to 3 receivers each.
    let golden = e.golden_run().unwrap();
    assert!(run.channel.received < golden.channel.received / 4);
}

#[test]
fn falsification_attack_perturbs_followers() {
    let e = engine(30);
    let golden = e.golden_run().unwrap();
    let attack = AttackSpec {
        model: AttackModelKind::Falsify(FalsifiedField::Acceleration),
        value: 3.0, // leader pretends to accelerate 3 m/s² harder
        targets: vec![1].into(),
        start: SimTime::from_secs(15),
        end: SimTime::from_secs(25),
    };
    let run = e.run_experiment(&attack, 0).unwrap();
    let verdict = e.classify_experiment(&golden, &run);
    assert_ne!(verdict.class, Classification::NonEffective, "{verdict:?}");
    assert!(run.channel.links_payload_modified > 0);
}

#[test]
fn drop_attack_loses_frames_probabilistically() {
    let e = engine(30);
    let attack = AttackSpec {
        model: AttackModelKind::Drop,
        value: 0.7,
        targets: vec![2].into(),
        start: SimTime::from_secs(10),
        end: SimTime::from_secs(25),
    };
    let run = e.run_experiment(&attack, 1).unwrap();
    assert!(run.channel.links_dropped_by_interceptor > 50);
    // Same experiment index → identical result (deterministic RNG).
    let run2 = e.run_experiment(&attack, 1).unwrap();
    assert_eq!(
        run.channel.links_dropped_by_interceptor,
        run2.channel.links_dropped_by_interceptor
    );
}

#[test]
fn experiments_are_independent_of_execution_order() {
    // Campaign parallelism must not leak state between experiments.
    let setup = AttackCampaignSetup {
        attack_model: AttackModelKind::Delay,
        target_vehicles: vec![2],
        attack_values: vec![1.2],
        attack_starts_s: vec![17.0, 18.0, 19.0],
        attack_durations_s: vec![4.0],
    };
    let campaign = Campaign::new(engine(30), setup).unwrap();
    let serial = campaign.run(1).unwrap();
    let parallel = campaign.run(3).unwrap();
    for (a, b) in serial.records.iter().zip(parallel.records.iter()) {
        assert_eq!(a, b);
    }
}

#[test]
fn attack_window_restores_cleanly() {
    // After the attack ends, newly sent frames use physical propagation
    // delay again (sub-microsecond).
    let e = engine(30);
    let attack = AttackSpec {
        model: AttackModelKind::Delay,
        value: 2.0,
        targets: vec![2].into(),
        start: SimTime::from_secs(10),
        end: SimTime::from_secs(12),
    };
    let run = e.run_experiment(&attack, 0).unwrap();
    // ~2 s of attack at 10 Hz × (3 links from veh 2 + 3 links to veh 2).
    let touched = run.channel.links_delay_modified;
    assert!(
        (60..=180).contains(&touched),
        "expected ≈120 delayed links for a 2 s window, got {touched}"
    );
}

#[test]
fn verdicts_expose_the_responsible_vehicle() {
    let e = engine(40);
    let golden = e.golden_run().unwrap();
    let attack = AttackSpec {
        model: AttackModelKind::Dos,
        value: 40.0,
        targets: vec![2].into(),
        start: SimTime::from_secs(17),
        end: SimTime::from_secs(40),
    };
    let run = e.run_experiment(&attack, 0).unwrap();
    let verdict = e.classify_experiment(&golden, &run);
    assert_eq!(verdict.class, Classification::Severe);
    let collider = verdict.collider().expect("DoS at cycle start collides");
    assert!(
        [2, 3, 4].contains(&collider.0),
        "collider must be a follower, got {collider}"
    );
    // The collision is also visible in the raw trace with full detail.
    let c = run.trace.first_collision().unwrap();
    assert_eq!(c.collider, collider);
    assert!(c.time > attack.start);
    assert!(c.overlap_m >= 0.0);
}

#[test]
fn forking_campaign_is_identical_to_from_scratch_campaign() {
    // The prefix-fork runner must reproduce the reference from-scratch
    // runner bit for bit: same records, same verdicts, same golden run.
    let setup = AttackCampaignSetup {
        attack_model: AttackModelKind::Delay,
        target_vehicles: vec![2],
        attack_values: vec![0.4, 1.6],
        attack_starts_s: vec![17.0, 19.4],
        attack_durations_s: vec![2.0, 8.0],
    };
    let campaign = Campaign::new(engine(35), setup).unwrap();
    let forked = campaign
        .run_with_mode(2, ExecutionMode::PrefixFork)
        .unwrap();
    let scratch = campaign
        .run_with_mode(2, ExecutionMode::FromScratch)
        .unwrap();
    assert_eq!(forked.records, scratch.records);
    assert_eq!(forked.params, scratch.params);
    assert_eq!(forked.golden, scratch.golden);
    // Two distinct start times → two prefix snapshots shared by 8 runs.
    assert_eq!(forked.stats.prefix_snapshots, 2);
    assert_eq!(forked.stats.forked_runs, 8);
    assert_eq!(scratch.stats.scratch_runs, 8);
}

#[test]
fn world_snapshot_fork_resumes_bit_identically() {
    // Clone a running world mid-simulation; the clone and the original
    // must produce identical logs (traces, channel stats, comm counters).
    let scenario = quick_scenario(30);
    let comm = CommModel::paper_default();
    let mut world = World::new(&scenario, &comm, 42).unwrap();
    world.run_until(SimTime::from_secs(14));
    let mut fork = world.clone();
    world.run_to_end();
    fork.run_to_end();
    assert_eq!(world.into_log(), fork.into_log());
}

#[test]
fn world_clock_and_traffic_clock_stay_in_lockstep() {
    let mut world = World::new(&quick_scenario(20), &CommModel::paper_default(), 1).unwrap();
    for t in [5, 10, 20] {
        world.run_until(SimTime::from_secs(t));
        assert_eq!(world.now(), SimTime::from_secs(t));
        assert_eq!(world.traffic().time(), SimTime::from_secs(t));
    }
}

#[test]
fn beacon_staleness_is_bounded_by_delay_value() {
    // Under a 1 s delay attack, the newest predecessor beacon vehicle 3
    // can know about is at least ~1 s old during the window.
    let mut world = World::new(&quick_scenario(30), &CommModel::paper_default(), 1).unwrap();
    world.run_until(SimTime::from_secs(15));
    let attack = AttackSpec {
        model: AttackModelKind::Delay,
        value: 1.0,
        targets: vec![2].into(),
        start: SimTime::from_secs(15),
        end: SimTime::from_secs(25),
    };
    world.install_attack(attack.build_interceptor(0));
    world.run_until(SimTime::from_secs(25));
    // Advance a touch more than the remaining in-flight horizon.
    world.clear_attack();
    world.run_until(SimTime::from_secs(25) + SimDuration::from_millis(10));
    // No direct app access from here; assert via the run log instead:
    let log = world.into_log();
    assert!(log.channel.links_delay_modified > 0);
}
