//! Streaming attack-labeled dataset export: byte-identity of the merged
//! corpus across execution modes, thread counts, sharding topologies,
//! steal recovery and cache replay.
//!
//! The invariant under test everywhere: however a campaign with dataset
//! export is executed — one process or many, static shards or stolen
//! claim units, simulated or cache-served — merging the exported
//! `exp-*.jsonl` shards produces a **byte-identical** `corpus.jsonl`.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use comfase::campaign::WorkSource;
use comfase::prelude::*;
use comfase_des::time::SimTime;
use comfase_dist::{merge_dataset_dirs, plan_shards, ClaimSource, DiskCache};

fn quick_scenario(secs: i64) -> TrafficScenario {
    let mut s = TrafficScenario::paper_default();
    s.total_sim_time = SimTime::from_secs(secs);
    s
}

/// The 8-experiment delay campaign shape shared with the dist and steal
/// suites — telemetry *and* dataset capture on.
fn campaign() -> Campaign {
    let setup = AttackCampaignSetup {
        attack_model: AttackModelKind::Delay,
        target_vehicles: vec![2],
        attack_values: vec![0.4, 1.6],
        attack_starts_s: vec![17.0, 19.4],
        attack_durations_s: vec![2.0, 8.0],
    };
    let engine = Engine::new(quick_scenario(30), CommModel::paper_default(), 42).unwrap();
    Campaign::new(engine, setup)
        .unwrap()
        .with_obs(ObsConfig::metrics_only().with_dataset())
}

/// A scratch path in the system temp dir, unique per test process, with
/// any stale copy removed.
fn tmp_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("comfase-dataset-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&path);
    path
}

/// A run config exporting dataset shards into `dir`.
fn export_config(dir: &Path, mode: ExecutionMode) -> RunConfig {
    RunConfig {
        mode,
        dataset: Some(Arc::new(DirSink::create(dir).unwrap()) as Arc<dyn DatasetSink>),
        ..RunConfig::default()
    }
}

/// Merges the shard directories and returns the corpus bytes.
fn merged_corpus(dirs: &[PathBuf], label: &str) -> Vec<u8> {
    let out = tmp_path(&format!("{label}-merged"));
    let report = merge_dataset_dirs(dirs, &out)
        .unwrap_or_else(|e| panic!("dataset merge failed under {label}: {e}"));
    let corpus = std::fs::read(&report.corpus_path).unwrap();
    assert_eq!(report.corpus_bytes, corpus.len() as u64);
    let _ = std::fs::remove_dir_all(&out);
    corpus
}

/// Acceptance: the merged corpus — and the metrics artifact alongside it
/// — is byte-identical across all three execution modes and 1/4/8
/// worker threads, and the export changes no verdict relative to a
/// capture-only run.
#[test]
fn exported_corpus_is_byte_identical_across_modes_and_threads() {
    let dir = tmp_path("ref-shards");
    let reference = campaign()
        .run_supervised(
            4,
            &export_config(&dir, ExecutionMode::PrefixFork),
            &NullObserver,
        )
        .unwrap();
    let reference_corpus = merged_corpus(&[dir.clone()], "ref");
    let reference_metrics = reference.metrics.as_ref().unwrap().to_json_bytes();
    assert!(!reference_corpus.is_empty());
    let _ = std::fs::remove_dir_all(&dir);

    for mode in [
        ExecutionMode::FromScratch,
        ExecutionMode::PrefixFork,
        ExecutionMode::SnapshotDag,
    ] {
        for threads in [1usize, 4, 8] {
            let label = format!("{mode:?}-t{threads}");
            let dir = tmp_path(&format!("{label}-shards"));
            let result = campaign()
                .run_supervised(threads, &export_config(&dir, mode), &NullObserver)
                .unwrap_or_else(|e| panic!("export run failed under {label}: {e}"));
            assert_eq!(
                result.metrics.as_ref().unwrap().to_json_bytes(),
                reference_metrics,
                "metrics diverged with export on under {label}"
            );
            assert_eq!(
                result.records, reference.records,
                "records diverged under {label}"
            );
            assert_eq!(
                merged_corpus(&[dir.clone()], &label),
                reference_corpus,
                "corpus diverged under {label}"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Static 2- and 4-way sharded splits export into one shared directory;
/// the merged corpus is byte-identical to the single-process export.
#[test]
fn sharded_workers_export_into_one_directory_and_merge_identically() {
    let solo_dir = tmp_path("solo-shards");
    campaign()
        .run_supervised(
            4,
            &export_config(&solo_dir, ExecutionMode::SnapshotDag),
            &NullObserver,
        )
        .unwrap();
    let reference_corpus = merged_corpus(&[solo_dir.clone()], "solo");
    let _ = std::fs::remove_dir_all(&solo_dir);

    for n in [2usize, 4] {
        let label = format!("split-{n}");
        let shared_dir = tmp_path(&format!("{label}-shards"));
        let campaign = campaign();
        let mut journals = Vec::new();
        for shard in plan_shards(&campaign, n).unwrap() {
            let journal = tmp_path(&format!("{label}-{}.journal", shard.index));
            let config = RunConfig {
                journal: Some(journal.clone()),
                shard: Some(ShardRange {
                    index: shard.index,
                    of: shard.of,
                }),
                ..export_config(&shared_dir, ExecutionMode::PrefixFork)
            };
            campaign
                .run_supervised(2, &config, &NullObserver)
                .unwrap_or_else(|e| panic!("shard {} failed under {label}: {e}", shard.index));
            journals.push(journal);
        }
        assert_eq!(
            merged_corpus(&[shared_dir.clone()], &label),
            reference_corpus,
            "corpus diverged under {label}"
        );
        for journal in journals {
            let _ = std::fs::remove_file(journal);
        }
        let _ = std::fs::remove_dir_all(&shared_dir);
    }
}

/// Steal recovery: a claim-driven victim dies mid-campaign (after
/// exporting part of its unit), a survivor steals and re-executes the
/// stranded unit — re-exporting some shards bit-equal over the victim's
/// — and the merged corpus is unchanged.
#[test]
fn stolen_units_reexport_bit_equal_shards_and_the_corpus_is_unchanged() {
    let reference_dir = tmp_path("steal-ref-shards");
    campaign()
        .run_supervised(
            4,
            &export_config(&reference_dir, ExecutionMode::PrefixFork),
            &NullObserver,
        )
        .unwrap();
    let reference_corpus = merged_corpus(&[reference_dir.clone()], "steal-ref");
    let _ = std::fs::remove_dir_all(&reference_dir);

    let claim_dir = tmp_path("steal-claims");
    let shared_dir = tmp_path("steal-shards");
    let victim_journal = tmp_path("steal-victim.journal");
    let survivor_journal = tmp_path("steal-survivor.journal");
    let claim_source = |campaign: &Campaign, worker: &str| {
        Arc::new(
            ClaimSource::for_campaign(&claim_dir, campaign, worker, Some(3), 3)
                .unwrap()
                .with_scan_interval(Duration::from_millis(1)),
        ) as Arc<dyn WorkSource>
    };

    // The victim dies on experiment 1: experiment 0 of its unit is
    // already exported and journaled, the rest of the unit is stranded.
    let victim = campaign().with_chaos(ChaosConfig {
        fail_on: vec![1],
        ..ChaosConfig::default()
    });
    let config = RunConfig {
        journal: Some(victim_journal.clone()),
        work: Some(claim_source(&victim, "victim")),
        ..export_config(&shared_dir, ExecutionMode::PrefixFork)
    };
    victim
        .run_supervised(1, &config, &NullObserver)
        .expect_err("the chaos kill must abort the victim");

    // The survivor drains the ledger, stealing the victim's unit and
    // re-exporting its shards into the same directory.
    let survivor = campaign();
    let config = RunConfig {
        journal: Some(survivor_journal.clone()),
        work: Some(claim_source(&survivor, "survivor")),
        ..export_config(&shared_dir, ExecutionMode::PrefixFork)
    };
    survivor.run_supervised(4, &config, &NullObserver).unwrap();

    assert_eq!(
        merged_corpus(&[shared_dir.clone()], "steal"),
        reference_corpus,
        "corpus diverged after steal recovery"
    );
    for path in [&victim_journal, &survivor_journal] {
        let _ = std::fs::remove_file(path);
    }
    let _ = std::fs::remove_dir_all(&claim_dir);
    let _ = std::fs::remove_dir_all(&shared_dir);
}

/// Cache replay: a warm re-run performs zero simulations yet re-exports
/// every shard — byte-identical to the simulated export.
#[test]
fn warm_cache_replay_reexports_a_byte_identical_corpus() {
    let cache_dir = tmp_path("cache");
    let cache =
        || Some(Arc::new(DiskCache::create(&cache_dir).unwrap()) as Arc<dyn ExperimentCache>);

    let cold_dir = tmp_path("cold-shards");
    let cold = campaign()
        .run_supervised(
            4,
            &RunConfig {
                cache: cache(),
                ..export_config(&cold_dir, ExecutionMode::PrefixFork)
            },
            &NullObserver,
        )
        .unwrap();
    assert_eq!(cold.stats.cache_hits, 0);
    let reference_corpus = merged_corpus(&[cold_dir.clone()], "cold");

    let warm_dir = tmp_path("warm-shards");
    let warm = campaign()
        .run_supervised(
            4,
            &RunConfig {
                cache: cache(),
                ..export_config(&warm_dir, ExecutionMode::PrefixFork)
            },
            &NullObserver,
        )
        .unwrap();
    assert_eq!(
        warm.stats.forked_runs + warm.stats.scratch_runs + warm.stats.chain_forked_runs,
        0,
        "a fully warm cache performs zero simulations"
    );
    assert_eq!(
        merged_corpus(&[warm_dir.clone()], "warm"),
        reference_corpus,
        "cache-served corpus diverged from the simulated one"
    );
    for dir in [&cache_dir, &cold_dir, &warm_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Configuring an export sink without dataset capture is refused up
/// front: the sink would otherwise stream empty captures silently.
#[test]
fn export_without_capture_is_refused() {
    let setup = AttackCampaignSetup {
        attack_model: AttackModelKind::Delay,
        target_vehicles: vec![2],
        attack_values: vec![0.4],
        attack_starts_s: vec![17.0],
        attack_durations_s: vec![2.0],
    };
    let engine = Engine::new(quick_scenario(30), CommModel::paper_default(), 42).unwrap();
    let no_capture = Campaign::new(engine, setup)
        .unwrap()
        .with_obs(ObsConfig::metrics_only());
    let dir = tmp_path("refused-shards");
    let err = no_capture
        .run_supervised(
            1,
            &export_config(&dir, ExecutionMode::PrefixFork),
            &NullObserver,
        )
        .expect_err("export without capture must be refused");
    assert!(matches!(err, ComfaseError::InvalidConfig(_)), "{err:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
