//! Cross-crate determinism contract for the hot-path spatial indexes:
//! a campaign's `metrics.json` artifact must come out byte-identical
//! whether the engine runs on the grid fan-out + indexed leader lookup or
//! on the retained brute-force scans — at every worker-thread count and
//! in both execution modes.

use comfase::prelude::*;
use comfase_des::time::SimTime;

fn quick_scenario(secs: i64) -> TrafficScenario {
    let mut s = TrafficScenario::paper_default();
    s.total_sim_time = SimTime::from_secs(secs);
    s
}

fn metrics_campaign(indexing: IndexingMode) -> Campaign {
    let setup = AttackCampaignSetup {
        attack_model: AttackModelKind::Delay,
        target_vehicles: vec![2],
        attack_values: vec![0.4, 1.6],
        attack_starts_s: vec![17.0, 19.4],
        attack_durations_s: vec![2.0, 8.0],
    };
    let engine = Engine::new(quick_scenario(30), CommModel::paper_default(), 42).unwrap();
    Campaign::new(engine, setup)
        .unwrap()
        .with_obs(ObsConfig::metrics_only())
        .with_indexing(indexing)
}

fn metrics_bytes(indexing: IndexingMode, threads: usize, mode: ExecutionMode) -> Vec<u8> {
    metrics_campaign(indexing)
        .run_with_mode(threads, mode)
        .unwrap()
        .metrics
        .expect("telemetry was enabled")
        .to_json_bytes()
}

/// The full matrix: indexing substrate × execution mode × thread count.
/// One reference artifact, seventeen runs that must reproduce it exactly.
#[test]
fn metrics_identical_across_indexing_modes_threads_and_execution_modes() {
    let reference = metrics_bytes(IndexingMode::Indexed, 1, ExecutionMode::FromScratch);
    assert!(!reference.is_empty());
    for indexing in [IndexingMode::Indexed, IndexingMode::BruteForce] {
        for mode in [
            ExecutionMode::FromScratch,
            ExecutionMode::PrefixFork,
            ExecutionMode::SnapshotDag,
        ] {
            for threads in [1usize, 4, 8] {
                if indexing == IndexingMode::Indexed
                    && mode == ExecutionMode::FromScratch
                    && threads == 1
                {
                    continue;
                }
                let bytes = metrics_bytes(indexing, threads, mode);
                assert_eq!(
                    bytes, reference,
                    "metrics.json diverged under {indexing:?} / {mode:?} / {threads} thread(s)"
                );
            }
        }
    }
}

/// The golden run itself (not just campaign aggregates) is bit-identical
/// across indexing substrates when telemetry is off — the substrate may
/// only change *how* neighbors are found, never *which* are found.
#[test]
fn golden_run_log_identical_across_indexing_modes() {
    let engine = |indexing| {
        Engine::new(quick_scenario(25), CommModel::paper_default(), 42)
            .unwrap()
            .with_indexing(indexing)
    };
    let indexed = engine(IndexingMode::Indexed).golden_run().unwrap();
    let brute = engine(IndexingMode::BruteForce).golden_run().unwrap();
    assert_eq!(indexed, brute);
}
