//! Crash-tolerant work stealing: claim-driven campaign execution under
//! worker death, stalled leases, and injected host-I/O faults.
//!
//! The invariant under test everywhere: however many claim-driven
//! workers participate, and wherever one of them dies, the surviving
//! workers complete the campaign **without operator intervention** and
//! the merged `CampaignMetrics` artifact is byte-identical to a
//! single-process run.
//!
//! Worker death is emulated in-process: a "victim" campaign armed with
//! a deterministic chaos failure (`ChaosConfig::fail_on`) under the
//! abort policy journals its progress and then dies mid-claim exactly
//! like a `SIGKILL`ed process would — completed experiments journaled,
//! the failing one recorded as failed, its lease left behind with a
//! frozen heartbeat. (A real kill -9 across processes is exercised by
//! the CI chaos-steal smoke job.)

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use comfase::campaign::WorkSource;
use comfase::prelude::*;
use comfase_des::time::SimTime;
use comfase_dist::{merge_journals, ClaimLedger, ClaimSource, DiskCache};

fn quick_scenario(secs: i64) -> TrafficScenario {
    let mut s = TrafficScenario::paper_default();
    s.total_sim_time = SimTime::from_secs(secs);
    s
}

/// The 8-experiment delay campaign shape shared with the dist and
/// robustness suites, telemetry on.
fn campaign() -> Campaign {
    let setup = AttackCampaignSetup {
        attack_model: AttackModelKind::Delay,
        target_vehicles: vec![2],
        attack_values: vec![0.4, 1.6],
        attack_starts_s: vec![17.0, 19.4],
        attack_durations_s: vec![2.0, 8.0],
    };
    let engine = Engine::new(quick_scenario(30), CommModel::paper_default(), 42).unwrap();
    Campaign::new(engine, setup)
        .unwrap()
        .with_obs(ObsConfig::metrics_only())
}

/// A scratch path in the system temp dir, unique per test process, with
/// any stale copy removed.
fn tmp_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("comfase-steal-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&path);
    path
}

/// A claim source over `claim_dir` with test-speed scanning: 1 ms scan
/// rounds, stealing after 3 stalled observations.
fn claim_source(claim_dir: &std::path::Path, campaign: &Campaign, worker: &str) -> ClaimSource {
    ClaimSource::for_campaign(claim_dir, campaign, worker, Some(3), 3)
        .unwrap()
        .with_scan_interval(Duration::from_millis(1))
}

/// A claim-driven run config journaling to `journal`.
fn claim_config(source: ClaimSource, journal: PathBuf, mode: ExecutionMode) -> RunConfig {
    RunConfig {
        mode,
        journal: Some(journal),
        work: Some(Arc::new(source) as Arc<dyn WorkSource>),
        ..RunConfig::default()
    }
}

/// Acceptance: one worker dies at a deterministic point (before its
/// unit's first journal line, or mid-unit with part of the unit already
/// journaled), a clean survivor steals its stranded units, and the
/// merged artifact is byte-identical to the single-process reference.
/// The matrix covers every execution mode, both kill points, and
/// survivor thread counts 1/4/8.
#[test]
fn killed_worker_units_are_stolen_and_the_merge_is_byte_identical() {
    let reference_bytes = campaign()
        .run(4)
        .unwrap()
        .metrics
        .as_ref()
        .unwrap()
        .to_json_bytes();

    // (mode, survivor threads, kill index). Units are 3 experiments
    // wide ([0,3), [3,6), [6,8)): killing at index 0 dies before the
    // unit journals anything, killing at 1 dies mid-unit with index 0
    // already journaled.
    let matrix = [
        (ExecutionMode::FromScratch, 1usize, 0usize),
        (ExecutionMode::PrefixFork, 4, 0),
        (ExecutionMode::SnapshotDag, 8, 0),
        (ExecutionMode::FromScratch, 4, 1),
        (ExecutionMode::PrefixFork, 8, 1),
        (ExecutionMode::SnapshotDag, 1, 1),
    ];
    for (mode, survivor_threads, kill_index) in matrix {
        let label = format!("{mode:?}-t{survivor_threads}-k{kill_index}");
        let claim_dir = tmp_path(&format!("kill-{label}-claims"));
        let victim_journal = tmp_path(&format!("kill-{label}-victim.journal"));
        let survivor_journal = tmp_path(&format!("kill-{label}-survivor.journal"));

        // The victim dies on its chaos index; its claimed unit keeps a
        // frozen-heartbeat lease and never gets a done marker.
        let victim = campaign().with_chaos(ChaosConfig {
            fail_on: vec![kill_index],
            ..ChaosConfig::default()
        });
        let source = claim_source(&claim_dir, &victim, "victim");
        let err = victim
            .run_supervised(
                1,
                &claim_config(source, victim_journal.clone(), mode),
                &NullObserver,
            )
            .expect_err("the chaos kill must abort the victim");
        assert!(
            err.to_string().contains("injected failure"),
            "unexpected victim death under {label}: {err}"
        );

        // The survivor — clean campaign, own journal, shared ledger —
        // drains everything, stealing the victim's stranded unit.
        let survivor = campaign();
        let source = claim_source(&claim_dir, &survivor, "survivor");
        survivor
            .run_supervised(
                survivor_threads,
                &claim_config(source, survivor_journal.clone(), mode),
                &NullObserver,
            )
            .unwrap_or_else(|e| panic!("survivor failed under {label}: {e}"));

        // The victim journaled a *failure* for the kill index; the
        // survivor's completion of the same index resolves it globally.
        let merged = merge_journals(&[victim_journal.clone(), survivor_journal.clone()])
            .unwrap_or_else(|e| panic!("merge failed under {label}: {e}"));
        assert_eq!(
            merged.to_json_bytes(),
            reference_bytes,
            "merged artifact diverged under {label}"
        );

        for path in [&victim_journal, &survivor_journal] {
            let _ = std::fs::remove_file(path);
        }
        let _ = std::fs::remove_dir_all(&claim_dir);
    }
}

/// No stranded work, post-journal kill point: a worker that journaled a
/// unit completely but died before writing the done marker leaves a
/// ghost lease behind. A later worker steals and re-executes the unit;
/// the duplicate journal lines are bit-equal, so the merge accepts them
/// and the artifact is unchanged.
#[test]
fn ghost_lease_after_journaled_unit_is_stolen_and_duplicates_merge_clean() {
    let reference_bytes = campaign()
        .run(4)
        .unwrap()
        .metrics
        .as_ref()
        .unwrap()
        .to_json_bytes();

    let claim_dir = tmp_path("ghost-claims");
    let first_journal = tmp_path("ghost-first.journal");
    let second_journal = tmp_path("ghost-second.journal");

    // A full, healthy claim-driven run...
    let first = campaign();
    let source = claim_source(&claim_dir, &first, "first");
    first
        .run_supervised(
            2,
            &claim_config(source, first_journal.clone(), ExecutionMode::SnapshotDag),
            &NullObserver,
        )
        .unwrap();

    // ...then rewind unit 0 to "journaled but not marked done": drop
    // the done marker and plant a foreign lease with a heartbeat that
    // will never advance.
    std::fs::remove_file(claim_dir.join("unit-0.done")).expect("unit 0 had a done marker");
    let probe = campaign();
    let ghost = claim_source(&claim_dir, &probe, "ghost");
    let unit0 = ghost.ledger().units()[0];
    assert!(ghost.ledger().try_acquire(&unit0, "ghost").unwrap());

    // A second worker must steal the ghost's unit and finish the
    // campaign without any operator intervention.
    let second = campaign();
    let source = claim_source(&claim_dir, &second, "second");
    second
        .run_supervised(
            2,
            &claim_config(source, second_journal.clone(), ExecutionMode::PrefixFork),
            &NullObserver,
        )
        .unwrap();

    // Both journals now hold unit 0's experiments — bit-equal
    // duplicates, which the merger accepts.
    let merged = merge_journals(&[first_journal.clone(), second_journal.clone()]).unwrap();
    assert_eq!(merged.to_json_bytes(), reference_bytes);

    let _ = std::fs::remove_file(&first_journal);
    let _ = std::fs::remove_file(&second_journal);
    let _ = std::fs::remove_dir_all(&claim_dir);
}

/// Claim-driven execution with no failures at all is just another
/// execution shape: one worker, any thread count, any mode — the
/// resulting metrics (run result *and* journal) are byte-identical to
/// the plain run.
#[test]
fn solo_claim_driven_execution_is_byte_identical_across_modes_and_threads() {
    let reference_bytes = campaign()
        .run(4)
        .unwrap()
        .metrics
        .as_ref()
        .unwrap()
        .to_json_bytes();

    for (mode, threads) in [
        (ExecutionMode::FromScratch, 1usize),
        (ExecutionMode::PrefixFork, 4),
        (ExecutionMode::SnapshotDag, 8),
    ] {
        let label = format!("solo-{mode:?}-{threads}");
        let claim_dir = tmp_path(&format!("{label}-claims"));
        let journal = tmp_path(&format!("{label}.journal"));
        let solo = campaign();
        let source = claim_source(&claim_dir, &solo, "solo");
        let result = solo
            .run_supervised(
                threads,
                &claim_config(source, journal.clone(), mode),
                &NullObserver,
            )
            .unwrap();
        assert_eq!(
            result.metrics.as_ref().unwrap().to_json_bytes(),
            reference_bytes,
            "in-process result diverged under {label}"
        );
        let merged = merge_journals(&[journal.clone()]).unwrap();
        assert_eq!(
            merged.to_json_bytes(),
            reference_bytes,
            "journal artifact diverged under {label}"
        );
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_dir_all(&claim_dir);
    }
}

/// Injected heartbeat failure self-heals: the worker abandons the unit
/// on the failed renewal, then — being the only worker — observes its
/// own stalled lease, steals the unit back, and re-executes it. The
/// duplicate journal lines are bit-equal, so the artifact is unchanged.
#[test]
fn heartbeat_chaos_self_heals_by_stealing_the_unit_back() {
    let reference_bytes = campaign()
        .run(4)
        .unwrap()
        .metrics
        .as_ref()
        .unwrap()
        .to_json_bytes();

    let claim_dir = tmp_path("heartbeat-claims");
    let journal = tmp_path("heartbeat.journal");
    let chaotic = campaign().with_chaos(ChaosConfig {
        io: IoChaosConfig {
            fail_heartbeat: 1,
            ..IoChaosConfig::default()
        },
        ..ChaosConfig::default()
    });
    let source = claim_source(&claim_dir, &chaotic, "chaotic");
    chaotic
        .run_supervised(
            1,
            &claim_config(source, journal.clone(), ExecutionMode::PrefixFork),
            &NullObserver,
        )
        .unwrap();
    let merged = merge_journals(&[journal.clone()]).unwrap();
    assert_eq!(merged.to_json_bytes(), reference_bytes);
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_dir_all(&claim_dir);
}

/// Injected cache-store failure aborts the worker like any other host
/// I/O error; a surviving claim worker sharing the ledger steals the
/// unit and the merged artifact is unchanged. (The victim's journal
/// line for the failed store never got written, so recovery is pure
/// re-execution.)
#[test]
fn cache_store_chaos_is_recovered_by_a_surviving_worker() {
    let reference_bytes = campaign()
        .run(4)
        .unwrap()
        .metrics
        .as_ref()
        .unwrap()
        .to_json_bytes();

    let claim_dir = tmp_path("storechaos-claims");
    let cache_dir = tmp_path("storechaos-cache");
    let victim_journal = tmp_path("storechaos-victim.journal");
    let survivor_journal = tmp_path("storechaos-survivor.journal");
    let cache =
        || Some(Arc::new(DiskCache::create(&cache_dir).unwrap()) as Arc<dyn ExperimentCache>);

    // The victim's very first cache store (the golden run's) fails.
    let victim = campaign().with_chaos(ChaosConfig {
        io: IoChaosConfig {
            fail_cache_store: 1,
            ..IoChaosConfig::default()
        },
        ..ChaosConfig::default()
    });
    let source = claim_source(&claim_dir, &victim, "victim");
    let err = victim
        .run_supervised(
            1,
            &RunConfig {
                cache: cache(),
                ..claim_config(source, victim_journal.clone(), ExecutionMode::PrefixFork)
            },
            &NullObserver,
        )
        .expect_err("the injected store failure must abort the victim");
    assert!(err.to_string().contains("chaos"), "got: {err}");

    // A clean survivor drains the ledger through the same shared cache.
    let survivor = campaign();
    let source = claim_source(&claim_dir, &survivor, "survivor");
    survivor
        .run_supervised(
            2,
            &RunConfig {
                cache: cache(),
                ..claim_config(source, survivor_journal.clone(), ExecutionMode::PrefixFork)
            },
            &NullObserver,
        )
        .unwrap();

    let journals: Vec<PathBuf> = [&victim_journal, &survivor_journal]
        .iter()
        .filter(|p| p.exists())
        .map(|p| (*p).clone())
        .collect();
    let merged = merge_journals(&journals).unwrap();
    assert_eq!(merged.to_json_bytes(), reference_bytes);

    for path in [&victim_journal, &survivor_journal] {
        let _ = std::fs::remove_file(path);
    }
    let _ = std::fs::remove_dir_all(&claim_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// The claim branch itself — claiming, renewal, completion, and the
/// same-process dedup after a heartbeat-fault self-steal — exercised
/// without any JSON surface: the ledger is built directly (no campaign
/// fingerprint), no journal is configured, and results are compared
/// structurally. This is the one end-to-end claim test that runs even
/// where no functional serde runtime exists (local shim builds).
#[test]
fn claim_branch_matches_plain_execution_without_a_journal() {
    let reference = campaign().run(4).unwrap();

    for (mode, threads, fail_heartbeat) in [
        (ExecutionMode::FromScratch, 1usize, 0u32),
        (ExecutionMode::PrefixFork, 4, 0),
        (ExecutionMode::SnapshotDag, 8, 0),
        // A failed renewal makes the lone worker abandon its unit,
        // observe its own stalled lease, steal it back, and re-execute:
        // the sink-level dedup must keep the records exact.
        (ExecutionMode::PrefixFork, 1, 1),
    ] {
        let label = format!("nojson-{mode:?}-t{threads}-hb{fail_heartbeat}");
        let claim_dir = tmp_path(&format!("{label}-claims"));
        let c = campaign();
        let ledger = ClaimLedger::create(&claim_dir, 0xfeed, c.nr_experiments(), 3).unwrap();
        let source = ClaimSource::new(ledger, "nojson", 3)
            .with_scan_interval(Duration::from_millis(1))
            .with_chaos(IoChaosConfig {
                fail_heartbeat,
                ..IoChaosConfig::default()
            });
        let config = RunConfig {
            mode,
            work: Some(Arc::new(source) as Arc<dyn WorkSource>),
            ..RunConfig::default()
        };
        let result = c
            .run_supervised(threads, &config, &NullObserver)
            .unwrap_or_else(|e| panic!("claim-driven run failed under {label}: {e}"));
        assert_eq!(
            result.records, reference.records,
            "records diverged under {label}"
        );
        assert_eq!(
            result.metrics, reference.metrics,
            "metrics diverged under {label}"
        );
        let _ = std::fs::remove_dir_all(&claim_dir);
    }
}

/// Claim-driven execution refuses a mis-sized or foreign ledger: the
/// meta check makes workers of different campaigns (or disagreeing unit
/// geometries) fail fast instead of corrupting the claim protocol.
#[test]
fn ledger_meta_mismatch_fails_fast() {
    let claim_dir = tmp_path("meta-claims");
    let c = campaign();
    let _first = claim_source(&claim_dir, &c, "a");
    // Different unit size → geometry mismatch.
    let err = ClaimSource::for_campaign(&claim_dir, &c, "b", Some(4), 3).unwrap_err();
    assert!(matches!(err, ComfaseError::InvalidConfig(_)), "{err:?}");
    let _ = std::fs::remove_dir_all(&claim_dir);
}
