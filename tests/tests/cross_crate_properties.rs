//! Property-based tests across the whole stack: arbitrary (but bounded)
//! attack parameters must never crash the co-simulation, and key
//! invariants must hold for every run.

use comfase::prelude::*;
use comfase_des::time::SimTime;
use proptest::prelude::*;

fn quick_engine(seed: u64) -> Engine {
    let mut s = TrafficScenario::paper_default();
    s.total_sim_time = SimTime::from_secs(25);
    Engine::new(s, CommModel::paper_default(), seed).unwrap()
}

fn arb_model() -> impl Strategy<Value = AttackModelKind> {
    prop_oneof![
        Just(AttackModelKind::Delay),
        Just(AttackModelKind::Dos),
        Just(AttackModelKind::Drop),
        Just(AttackModelKind::Falsify(FalsifiedField::Position)),
        Just(AttackModelKind::Falsify(FalsifiedField::Speed)),
        Just(AttackModelKind::Falsify(FalsifiedField::Acceleration)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any bounded attack runs to completion and yields a consistent log.
    #[test]
    fn any_attack_yields_consistent_run(
        model in arb_model(),
        raw_value in 0.0f64..4.0,
        start_s in 5.0f64..20.0,
        duration_s in 0.5f64..15.0,
        target in 1u32..=4,
    ) {
        let value = match model {
            AttackModelKind::Drop => raw_value / 4.0, // probability
            _ => raw_value,
        };
        let e = quick_engine(9);
        let attack = AttackSpec {
            model,
            value,
            targets: vec![target].into(),
            start: SimTime::from_secs_f64(start_s),
            end: SimTime::from_secs_f64((start_s + duration_s).min(25.0)),
        };
        let run = e.run_experiment(&attack, 0).unwrap();
        prop_assert_eq!(run.final_time, SimTime::from_secs(25));
        // Physics invariants hold for every vehicle over the whole run.
        for (_, tr) in run.trace.iter() {
            for (_, v) in tr.speed.iter() {
                prop_assert!((0.0..=50.0).contains(&v), "speed {v}");
            }
            for (_, a) in tr.accel.iter() {
                prop_assert!((-9.0 - 1e-9..=2.5 + 1e-9).contains(&a), "accel {a}");
            }
        }
        // Channel accounting is self-consistent.
        let ch = run.channel;
        prop_assert!(ch.received + ch.lost_sensitivity + ch.lost_snir <= ch.links_planned);
    }

    /// Classification is deterministic: the same attack yields the same
    /// verdict every time.
    #[test]
    fn classification_is_deterministic(
        value in 0.2f64..3.0,
        start_s in 15.0f64..20.0,
    ) {
        let e = quick_engine(4);
        let golden = e.golden_run().unwrap();
        let attack = AttackSpec {
            model: AttackModelKind::Delay,
            value,
            targets: vec![2].into(),
            start: SimTime::from_secs_f64(start_s),
            end: SimTime::from_secs_f64(start_s + 3.0),
        };
        let v1 = e.classify_experiment(&golden, &e.run_experiment(&attack, 0).unwrap());
        let v2 = e.classify_experiment(&golden, &e.run_experiment(&attack, 0).unwrap());
        prop_assert_eq!(v1, v2);
    }

    /// A zero-length attack window never changes the outcome.
    #[test]
    fn empty_window_is_non_effective(model in arb_model(), start_s in 5.0f64..20.0) {
        let e = quick_engine(2);
        let golden = e.golden_run().unwrap();
        let attack = AttackSpec {
            model,
            value: 2.0,
            targets: vec![2].into(),
            start: SimTime::from_secs_f64(start_s),
            end: SimTime::from_secs_f64(start_s),
        };
        let run = e.run_experiment(&attack, 0).unwrap();
        let v = e.classify_experiment(&golden, &run);
        prop_assert_eq!(v.class, Classification::NonEffective, "{:?}", v);
    }

    /// Untargeted attacks (empty intersection with the platoon would be a
    /// config error, but delays of 0 s are weaker than physical reality
    /// only by microseconds): a delay equal to ~the physical propagation
    /// delay is effectively non-effective or negligible, never severe.
    #[test]
    fn near_physical_delay_is_harmless(start_s in 10.0f64..18.0) {
        let e = quick_engine(3);
        let golden = e.golden_run().unwrap();
        let attack = AttackSpec {
            model: AttackModelKind::Delay,
            value: 1e-7, // 100 ns, same order as 30 m of free space
            targets: vec![2].into(),
            start: SimTime::from_secs_f64(start_s),
            end: SimTime::from_secs_f64(start_s + 5.0),
        };
        let run = e.run_experiment(&attack, 0).unwrap();
        let v = e.classify_experiment(&golden, &run);
        prop_assert!(
            v.class <= Classification::Negligible,
            "a 100 ns delay must be harmless, got {:?}",
            v
        );
    }
}
