//! Property tests for the snapshot-DAG campaign planner
//! (`comfase::campaign::DagPlan`): planning is pure bookkeeping over the
//! expanded spec list, so it must be deterministic, cover every pending
//! experiment exactly once, group only what is provably chainable, and be
//! invariant under permutation of its inputs.

use comfase::prelude::*;
use comfase_des::time::SimTime;
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = AttackModelKind> {
    prop_oneof![
        Just(AttackModelKind::Delay),
        Just(AttackModelKind::Dos),
        Just(AttackModelKind::Drop),
        Just(AttackModelKind::Falsify(FalsifiedField::Position)),
        Just(AttackModelKind::Falsify(FalsifiedField::Speed)),
        Just(AttackModelKind::Falsify(FalsifiedField::Acceleration)),
    ]
}

/// Specs drawn from small coordinate pools, so groups with shared
/// `(start, model, value, targets)` actually form.
fn arb_spec() -> impl Strategy<Value = AttackSpec> {
    (
        arb_model(),
        prop_oneof![Just(0.5f64), Just(1.0), Just(2.0)],
        prop_oneof![Just(10i64), Just(15), Just(20)],
        1i64..=10,
        prop_oneof![Just(vec![2u32]), Just(vec![2u32, 3])],
    )
        .prop_map(|(model, value, start_s, dur_s, targets)| AttackSpec {
            model,
            value,
            targets: targets.into(),
            start: SimTime::from_secs(start_s),
            end: SimTime::from_secs(start_s + dur_s),
        })
}

fn covered_indices(plan: &DagPlan) -> Vec<usize> {
    let mut v: Vec<usize> = plan
        .units
        .iter()
        .flat_map(|u| u.indices().iter().copied())
        .collect();
    v.sort_unstable();
    v
}

/// Deterministic in-place pseudo-shuffle (tests must not use ambient RNG).
fn lcg_shuffle(v: &mut [usize], seed: u64) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for i in (1..v.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every pending experiment lands in exactly one unit.
    #[test]
    fn plan_covers_every_pending_index_exactly_once(
        specs in prop::collection::vec(arb_spec(), 1..40),
    ) {
        let pending: Vec<usize> = (0..specs.len()).collect();
        let plan = DagPlan::build(&specs, &pending);
        prop_assert_eq!(covered_indices(&plan), pending);
        prop_assert_eq!(plan.nr_leaves(), specs.len());
        prop_assert_eq!(
            plan.solo_leaves() + plan.chained_leaves(),
            specs.len()
        );
    }

    /// Planning is a pure function of the (specs, pending-set) pair: the
    /// order the pending list arrives in must not matter.
    #[test]
    fn plan_is_deterministic_and_pending_permutation_invariant(
        specs in prop::collection::vec(arb_spec(), 1..40),
        seed in 0u64..1024,
    ) {
        let pending: Vec<usize> = (0..specs.len()).collect();
        let plan = DagPlan::build(&specs, &pending);
        prop_assert_eq!(&DagPlan::build(&specs, &pending), &plan);
        let mut shuffled = pending;
        lcg_shuffle(&mut shuffled, seed);
        prop_assert_eq!(&DagPlan::build(&specs, &shuffled), &plan);
    }

    /// Chain structure invariants: chains have ≥ 2 leaves, only
    /// seed-invariant models, end-sorted leaves, and every leaf shares the
    /// head's attack coordinates (only the end time may differ).
    #[test]
    fn chains_share_coordinates_and_advance_monotonically(
        specs in prop::collection::vec(arb_spec(), 1..40),
    ) {
        let pending: Vec<usize> = (0..specs.len()).collect();
        let plan = DagPlan::build(&specs, &pending);
        for unit in &plan.units {
            if let DagUnit::Chain { leaves } = unit {
                prop_assert!(leaves.len() >= 2, "a chain needs siblings");
                let head = &specs[leaves[0]];
                prop_assert!(
                    head.model.seed_invariant(),
                    "seed-dependent models must never chain"
                );
                for pair in leaves.windows(2) {
                    prop_assert!(
                        specs[pair[0]].end <= specs[pair[1]].end,
                        "chain must advance monotonically"
                    );
                }
                for &i in leaves {
                    let s = &specs[i];
                    prop_assert_eq!(s.start, head.start);
                    prop_assert_eq!(s.model, head.model);
                    prop_assert_eq!(s.value.to_bits(), head.value.to_bits());
                    prop_assert_eq!(s.targets.as_ref(), head.targets.as_ref());
                }
            }
        }
    }

    /// Relabeling the spec list (any permutation of the expansion order)
    /// yields the same partition into units, up to the relabeling — the
    /// plan depends on attack coordinates, not on first-seen order.
    #[test]
    fn plan_is_invariant_under_spec_relabeling(
        specs in prop::collection::vec(arb_spec(), 1..30),
        seed in 0u64..1024,
    ) {
        let n = specs.len();
        let mut perm: Vec<usize> = (0..n).collect();
        lcg_shuffle(&mut perm, seed);
        let relabeled: Vec<AttackSpec> = perm.iter().map(|&i| specs[i].clone()).collect();
        let pending: Vec<usize> = (0..n).collect();

        let canon = |plan: &DagPlan, back: &dyn Fn(usize) -> usize| {
            let mut units: Vec<Vec<usize>> = plan
                .units
                .iter()
                .map(|u| {
                    let mut v: Vec<usize> = u.indices().iter().map(|&i| back(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            units.sort();
            units
        };
        let original = canon(&DagPlan::build(&specs, &pending), &|i| i);
        let permuted = canon(&DagPlan::build(&relabeled, &pending), &|i| perm[i]);
        prop_assert_eq!(original, permuted);
    }
}

/// The planner, applied to the engine's own campaign expansion, groups one
/// chain per `(start, value)` cell of the paper-style grid — the structure
/// the `SnapshotDag` execution mode schedules.
#[test]
fn plan_over_engine_expansion_matches_the_grid() {
    let mut scenario = TrafficScenario::paper_default();
    scenario.total_sim_time = SimTime::from_secs(40);
    let engine = Engine::new(scenario, CommModel::paper_default(), 7).unwrap();
    let setup = AttackCampaignSetup {
        attack_model: AttackModelKind::Delay,
        target_vehicles: vec![2],
        attack_values: vec![0.2, 0.4, 0.6],
        attack_starts_s: vec![17.0, 18.0],
        attack_durations_s: vec![1.0, 2.0, 3.0, 4.0],
    };
    let specs = engine.expand_campaign(&setup).unwrap();
    let pending: Vec<usize> = (0..specs.len()).collect();
    let plan = DagPlan::build(&specs, &pending);
    assert_eq!(plan.chains(), 6, "2 starts × 3 values");
    assert_eq!(plan.chained_leaves(), 24, "4 durations per chain");
    assert_eq!(plan.solo_leaves(), 0);
    assert_eq!(plan.depth(), 2);
}
