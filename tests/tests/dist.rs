//! Integration tests for `comfase-dist`: sharded campaign execution,
//! journal merging and the content-addressed result cache.
//!
//! The load-bearing invariant throughout: however a campaign is split,
//! resumed or cache-served, the final `CampaignMetrics` artifact is
//! **byte-identical** to the single-process, simulate-everything run.

use std::path::PathBuf;
use std::sync::Arc;

use comfase::prelude::*;
use comfase_des::time::SimTime;
use comfase_dist::{merge_journals, plan_shards, DiskCache};

fn quick_scenario(secs: i64) -> TrafficScenario {
    let mut s = TrafficScenario::paper_default();
    s.total_sim_time = SimTime::from_secs(secs);
    s
}

/// The 8-experiment delay campaign shape shared with the robustness and
/// observability suites, telemetry on.
fn campaign_with_seed(seed: u64) -> Campaign {
    let setup = AttackCampaignSetup {
        attack_model: AttackModelKind::Delay,
        target_vehicles: vec![2],
        attack_values: vec![0.4, 1.6],
        attack_starts_s: vec![17.0, 19.4],
        attack_durations_s: vec![2.0, 8.0],
    };
    let engine = Engine::new(quick_scenario(30), CommModel::paper_default(), seed).unwrap();
    Campaign::new(engine, setup)
        .unwrap()
        .with_obs(ObsConfig::metrics_only())
}

fn campaign() -> Campaign {
    campaign_with_seed(42)
}

/// A scratch path in the system temp dir, unique per test process, with
/// any stale copy removed.
fn tmp_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("comfase-dist-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn cache_config(dir: &std::path::Path) -> RunConfig {
    RunConfig {
        cache: Some(Arc::new(DiskCache::create(dir).unwrap()) as Arc<dyn ExperimentCache>),
        ..RunConfig::default()
    }
}

/// Acceptance: 1/2/4/8-way splits, merged, are byte-identical to the
/// single-process artifact — under all three execution modes.
#[test]
fn merged_shards_are_byte_identical_for_every_split_and_mode() {
    let campaign = campaign();
    let total = campaign.nr_experiments();
    let reference = campaign.run(4).unwrap();
    let reference_bytes = reference.metrics.as_ref().unwrap().to_json_bytes();

    for mode in [
        ExecutionMode::FromScratch,
        ExecutionMode::PrefixFork,
        ExecutionMode::SnapshotDag,
    ] {
        for n in [1usize, 2, 4, 8] {
            let shards = plan_shards(&campaign, n).unwrap();
            assert_eq!(shards.len(), n);
            let journals: Vec<PathBuf> = shards
                .iter()
                .map(|shard| {
                    assert_eq!(shard.campaign_fingerprint, campaign.fingerprint().unwrap());
                    let path = tmp_path(&format!("split-{mode:?}-{}-{}", shard.of, shard.index));
                    let config = RunConfig {
                        mode,
                        journal: Some(path.clone()),
                        shard: Some(shard.range()),
                        ..RunConfig::default()
                    };
                    let result = campaign
                        .run_supervised(2, &config, &NullObserver)
                        .unwrap_or_else(|e| panic!("shard {shard:?} under {mode:?} failed: {e}"));
                    assert_eq!(
                        result.records.len(),
                        shard.range().len(total),
                        "a shard holds exactly its slice of the records"
                    );
                    path
                })
                .collect();
            let merged = merge_journals(&journals).unwrap();
            assert_eq!(
                merged.to_json_bytes(),
                reference_bytes,
                "merged {n}-way split diverged under {mode:?}"
            );
            for path in journals {
                let _ = std::fs::remove_file(&path);
            }
        }
    }
}

/// Acceptance: a fully warm cache serves the whole campaign — golden run
/// included — with zero simulations and a byte-identical artifact. Mode
/// and thread count are excluded from the cache key, so entries written
/// under one configuration serve every other.
#[test]
fn warm_cache_performs_zero_simulations_and_reproduces_the_bytes() {
    let campaign = campaign();
    let total = campaign.nr_experiments();
    let reference_bytes = campaign
        .run(4)
        .unwrap()
        .metrics
        .as_ref()
        .unwrap()
        .to_json_bytes();

    let dir = tmp_path("warm-cache");
    let cold = campaign
        .run_supervised(4, &cache_config(&dir), &NullObserver)
        .unwrap();
    assert_eq!(cold.stats.cache_hits, 0);
    assert_eq!(cold.stats.cache_misses, total + 1, "experiments + golden");

    // Warm pass, deliberately under a *different* execution mode and
    // thread count than the cold pass.
    for (threads, mode) in [
        (1, ExecutionMode::SnapshotDag),
        (4, ExecutionMode::FromScratch),
    ] {
        let config = RunConfig {
            mode,
            ..cache_config(&dir)
        };
        let warm = campaign
            .run_supervised(threads, &config, &NullObserver)
            .unwrap();
        assert_eq!(
            warm.stats.cache_hits,
            total + 1,
            "every experiment plus the golden run must hit under {mode:?}"
        );
        assert_eq!(warm.stats.cache_misses, 0);
        assert_eq!(
            warm.stats.forked_runs + warm.stats.scratch_runs + warm.stats.chain_forked_runs,
            0,
            "a fully warm cache performs zero simulations under {mode:?}"
        );
        assert!((warm.stats.cache_hit_rate() - 1.0).abs() < f64::EPSILON);
        assert_eq!(
            warm.metrics.as_ref().unwrap().to_json_bytes(),
            reference_bytes,
            "warm-cache artifact diverged under {mode:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The cache key folds in the engine seed: a campaign over the same
/// setup but a different seed shares nothing with the warm cache.
#[test]
fn cache_entries_are_keyed_by_seed() {
    let dir = tmp_path("seed-cache");
    let campaign = campaign();
    let total = campaign.nr_experiments();
    campaign
        .run_supervised(2, &cache_config(&dir), &NullObserver)
        .unwrap();

    let other = campaign_with_seed(43);
    let result = other
        .run_supervised(2, &cache_config(&dir), &NullObserver)
        .unwrap();
    assert_eq!(
        result.stats.cache_hits, 0,
        "a different seed must not hit the other campaign's entries"
    );
    assert_eq!(result.stats.cache_misses, total + 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shard journals from campaigns whose configurations differ only in
/// ways the fingerprint (not the setup) sees refuse to merge.
#[test]
fn merge_rejects_shards_of_different_campaigns() {
    let a = campaign();
    let setup = a.setup().clone();
    let engine = Engine::new(quick_scenario(31), CommModel::paper_default(), 42).unwrap();
    let b = Campaign::new(engine, setup)
        .unwrap()
        .with_obs(ObsConfig::metrics_only());
    assert_ne!(a.fingerprint().unwrap(), b.fingerprint().unwrap());

    let path_a = tmp_path("foreign-a");
    let path_b = tmp_path("foreign-b");
    for (campaign, index, path) in [(&a, 0usize, &path_a), (&b, 1usize, &path_b)] {
        let config = RunConfig {
            journal: Some(path.clone()),
            shard: Some(ShardRange { index, of: 2 }),
            ..RunConfig::default()
        };
        campaign.run_supervised(2, &config, &NullObserver).unwrap();
    }
    let err = merge_journals(&[path_a.clone(), path_b.clone()]).unwrap_err();
    assert!(
        matches!(err, ComfaseError::InvalidConfig(_)),
        "foreign shards must be an InvalidConfig error, got {err:?}"
    );
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
}

/// Sharding composes with the cache: two shards sharing one cache
/// directory warm it for a subsequent unsharded run.
#[test]
fn shards_warm_the_shared_cache_for_the_whole_campaign() {
    let campaign = campaign();
    let total = campaign.nr_experiments();
    let dir = tmp_path("shared-cache");
    for index in 0..2usize {
        let journal = tmp_path(&format!("warm-shard-{index}"));
        let config = RunConfig {
            journal: Some(journal.clone()),
            shard: Some(ShardRange { index, of: 2 }),
            ..cache_config(&dir)
        };
        campaign.run_supervised(2, &config, &NullObserver).unwrap();
        let _ = std::fs::remove_file(&journal);
    }
    // Both shards ran the golden run: shard 0 stored it, shard 1 hit it.
    let result = campaign
        .run_supervised(4, &cache_config(&dir), &NullObserver)
        .unwrap();
    assert_eq!(
        result.stats.cache_hits,
        total + 1,
        "the union of the shard caches covers the whole campaign"
    );
    assert_eq!(
        result.stats.forked_runs + result.stats.scratch_runs + result.stats.chain_forked_runs,
        0
    );
    let _ = std::fs::remove_dir_all(&dir);
}
