//! Teleoperation scenario (paper §V future work): a remotely operated
//! vehicle approaches a stalled car; the operator's stop command travels
//! over the same attackable wireless channel as the platooning beacons.
//!
//! ```text
//! cargo run --release --example teleoperation
//! ```

use comfase::prelude::*;
use comfase::teleop::{TeleopScenario, TeleopWorld, OBSTACLE_VEHICLE, TELEOP_VEHICLE};
use comfase_des::time::SimTime;
use comfase_traffic::VehicleId;

fn run(scenario: &TeleopScenario, attack: Option<AttackSpec>) -> (f64, bool) {
    let mut world = TeleopWorld::new(scenario, 7).expect("valid scenario");
    if let Some(attack) = attack {
        world.run_until(attack.start);
        world.install_attack(attack.build_interceptor(0));
        world.run_until(attack.end);
        world.clear_attack();
    }
    world.run_to_end();
    let log = world.into_log();
    let tr = log
        .trace
        .vehicle(VehicleId(TELEOP_VEHICLE))
        .expect("traced");
    (tr.pos.last_value().unwrap(), log.trace.has_collision())
}

fn main() {
    let scenario = TeleopScenario::highway_default();
    let obstacle_rear = scenario.obstacle_pos_m - scenario.vehicle.length_m;
    println!(
        "remote driving toward a stalled car at {:.0} m (vehicle {} -> obstacle {})",
        scenario.obstacle_pos_m, TELEOP_VEHICLE, OBSTACLE_VEHICLE
    );

    let (pos, crashed) = run(&scenario, None);
    println!(
        "healthy link : stopped at {:.1} m ({:.1} m short of the obstacle), collision: {crashed}",
        pos,
        obstacle_rear - pos
    );

    for pd in [0.5, 1.0, 2.0] {
        let attack = AttackSpec {
            model: AttackModelKind::Delay,
            value: pd,
            targets: vec![TELEOP_VEHICLE].into(),
            start: SimTime::ZERO,
            end: SimTime::from_secs(60),
        };
        let (pos, crashed) = run(&scenario, Some(attack));
        println!(
            "{pd:.1} s delay : final position {:.1} m (margin {:+.1} m), collision: {crashed}",
            pos,
            obstacle_rear - pos
        );
    }

    let dos = AttackSpec {
        model: AttackModelKind::Dos,
        value: 60.0,
        targets: vec![TELEOP_VEHICLE].into(),
        start: SimTime::from_secs(20),
        end: SimTime::from_secs(60),
    };
    let (pos, crashed) = run(&scenario, Some(dos.clone()));
    println!("DoS at t=20 s: final position {pos:.1} m, collision: {crashed}");

    // The same loop over a 4G-like cellular bearer (the paper's planned
    // INET extension): 50 ms latency, 20 ms jitter, 1% loss.
    let cellular = TeleopScenario::highway_cellular();
    let (pos, crashed) = run(&cellular, None);
    println!(
        "\ncellular link : stopped at {:.1} m ({:.1} m short), collision: {crashed}",
        pos,
        obstacle_rear - pos
    );
    let (pos, crashed) = run(&cellular, Some(dos));
    println!("cellular + DoS: final position {pos:.1} m, collision: {crashed}");
}
