//! The paper's DoS campaign (§IV-C.2): 25 experiments blocking Vehicle 2's
//! communication from different start times, with collider attribution.
//!
//! ```text
//! cargo run --release --example dos_campaign
//! ```

use comfase::analysis;
use comfase::prelude::*;
use comfase::report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::paper_default(42)?;
    let campaign = Campaign::new(engine, AttackCampaignSetup::paper_dos_campaign())?;
    println!("running {} DoS experiments...", campaign.nr_experiments());

    let result = campaign.run_with_progress(
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        |done, total| {
            if done == total {
                eprintln!("  all {total} experiments done");
            }
        },
    )?;

    println!(
        "{}",
        report::render_summary(&analysis::summary(&result.records))
    );
    println!(
        "{}",
        report::render_collider_split(&analysis::collider_split(&result.records))
    );
    println!(
        "{}",
        report::render_dos_bands(&analysis::colliders_by_start(&result.records))
    );

    // The paper's observation: by attacking only Vehicle 2, the attacker
    // also makes Vehicles 3 and 4 crash, depending on where in the driving
    // cycle the attack begins.
    let split = analysis::collider_split(&result.records);
    let surrounding: usize = split
        .per_vehicle
        .iter()
        .filter(|(v, _)| **v != 2)
        .map(|(_, n)| n)
        .sum();
    println!(
        "surrounding traffic (vehicles 3 & 4) caused {surrounding} of {} collisions",
        split.total_collisions()
    );
    Ok(())
}
