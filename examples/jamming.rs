//! Roadside jammer — the "jamming attacks in the wireless channel" the
//! paper lists as future work (§V). A noise source next to the road blasts
//! junk frames that collide with the platoon's beacons at the SNIR
//! decider; unlike the delay/DoS models this attacks the *physical*
//! channel rather than the propagation-delay parameter.
//!
//! ```text
//! cargo run --release --example jamming
//! ```

use comfase::campaign::classify_against;
use comfase::prelude::*;
use comfase::world::JammerSpec;
use comfase_des::time::{SimDuration, SimTime};

fn run(jammer: Option<JammerSpec>) -> RunLog {
    let engine = Engine::paper_default(42).expect("valid presets");
    let mut world =
        World::new(engine.scenario(), engine.comm(), engine.seed()).expect("valid world");
    if let Some(spec) = jammer {
        world.add_jammer(spec);
    }
    world.run_to_end();
    world.into_log()
}

fn main() {
    let golden = run(None);
    println!(
        "clean channel : {} frames received, {} lost to interference",
        golden.channel.received, golden.channel.lost_snir
    );

    // The platoon cruises near x = 500 m at t = 17 s; park the jammer there.
    let jammed = run(Some(JammerSpec {
        pos_x_m: 980.0,
        pos_y_m: 12.0, // roadside
        period: SimDuration::from_micros(500),
        payload_bytes: 150,
        start: SimTime::from_secs(17),
        end: SimTime::from_secs(27),
    }));
    println!(
        "jammed channel: {} frames received, {} lost to interference",
        jammed.channel.received, jammed.channel.lost_snir
    );

    let verdict = classify_against(&golden, &jammed);
    println!(
        "classification vs. golden run: {} (max decel {:.2} m/s², {} collisions)",
        verdict.class, verdict.max_decel_mps2, verdict.nr_collisions
    );
}
