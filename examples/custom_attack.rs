//! Extending ComFASE with a custom attack model (paper §III: "The tool can
//! be extended with other types of faults and attacks").
//!
//! This example implements a *selective replay jammer* as a custom
//! [`ChannelInterceptor`]: it drops every n-th frame sent by the target
//! and delays the rest, then runs it through the same three-phase
//! execution flow as the built-in models.
//!
//! ```text
//! cargo run --release --example custom_attack
//! ```

use comfase::campaign::classify_against;
use comfase::prelude::*;
use comfase_des::time::{SimDuration, SimTime};
use comfase_wireless::channel::{ChannelInterceptor, LinkFate};
use comfase_wireless::frame::{NodeId, Wsm};

/// Drops every `drop_every`-th frame involving the target and delays the
/// remaining ones by `delay`.
#[derive(Debug)]
struct SelectiveReplayJammer {
    target: NodeId,
    delay: SimDuration,
    drop_every: u64,
    seen: u64,
}

impl ChannelInterceptor for SelectiveReplayJammer {
    fn intercept(
        &mut self,
        tx: NodeId,
        rx: NodeId,
        _now: SimTime,
        default_delay: SimDuration,
        _wsm: &Wsm,
    ) -> LinkFate {
        if tx != self.target && rx != self.target {
            return LinkFate::Deliver {
                delay: default_delay,
            };
        }
        self.seen += 1;
        if self.seen.is_multiple_of(self.drop_every) {
            LinkFate::Drop
        } else {
            LinkFate::Deliver { delay: self.delay }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::paper_default(42)?;
    let golden = engine.golden_run()?;

    // Drive the Algo-1 phases by hand with the custom interceptor.
    let mut world = World::new(engine.scenario(), engine.comm(), engine.seed())?;
    world.run_until(SimTime::from_secs(17));
    world.install_attack(Box::new(SelectiveReplayJammer {
        target: NodeId(2),
        delay: SimDuration::from_secs_f64(1.2),
        drop_every: 3,
        seen: 0,
    }));
    world.run_until(SimTime::from_secs(27));
    world.clear_attack();
    world.run_to_end();
    let run = world.into_log();

    let verdict = classify_against(&golden, &run);
    println!(
        "selective replay jammer: {} (max decel {:.2} m/s², {} collisions)",
        verdict.class, verdict.max_decel_mps2, verdict.nr_collisions
    );
    println!(
        "channel: {} links delayed, {} links dropped by the attack",
        run.channel.links_delay_modified, run.channel.links_dropped_by_interceptor
    );
    Ok(())
}
