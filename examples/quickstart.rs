//! Quickstart: run the paper's scenario, inject one delay attack, classify.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use comfase::prelude::*;
use comfase_des::time::SimTime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1 — test configuration: the paper's §IV-A presets (4-vehicle
    // CACC platoon, sinusoidal maneuver, free-space 802.11p channel).
    let engine = Engine::paper_default(42)?;
    println!(
        "scenario: {} vehicles, {:.0} s horizon, {} bits/beacon every {} ms",
        engine.scenario().nr_vehicles(),
        engine.scenario().total_sim_time.as_secs_f64(),
        engine.comm().packet_size_bits,
        engine.comm().beaconing_time.as_nanos() / 1_000_000,
    );

    // Step 2 — golden run (attack-free reference).
    let golden = engine.golden_run()?;
    println!(
        "golden run: max deceleration {:.3} m/s², {} collisions",
        golden.max_decel(),
        golden.trace.collisions.len()
    );

    // Step 3 — one attack injection experiment: messages to and from
    // Vehicle 2 are delayed by 1.5 s between t=17 s and t=25 s.
    let attack = AttackSpec {
        model: AttackModelKind::Delay,
        value: 1.5,
        targets: vec![2].into(),
        start: SimTime::from_secs(17),
        end: SimTime::from_secs(25),
    };
    let run = engine.run_experiment(&attack, 0)?;

    // Step 4 — classification against the golden run.
    let verdict = engine.classify_experiment(&golden, &run);
    println!(
        "attacked run: {} (max decel {:.2} m/s², {} collisions)",
        verdict.class, verdict.max_decel_mps2, verdict.nr_collisions
    );
    if let Some(c) = &verdict.first_collision {
        println!(
            "first collision at {}: {} hit {} at {:.0} m",
            c.time, c.collider, c.victim, c.pos_m
        );
    }
    Ok(())
}
