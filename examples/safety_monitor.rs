//! Sensor redundancy ablation — the paper's future-work direction
//! ("introduction of sensor models ... that monitors the distance between
//! vehicles", §IV-C.3): how much attack damage does an AEB-style radar
//! safety monitor absorb?
//!
//! Runs the same DoS attack sweep against the unprotected platoon (the
//! paper's configuration) and against a platoon whose followers carry a
//! time-to-collision monitor.
//!
//! ```text
//! cargo run --release --example safety_monitor
//! ```

use comfase::analysis;
use comfase::prelude::*;
use comfase_platoon::monitor::SafetyMonitorConfig;

fn run(protected: bool) -> CampaignResult {
    let mut scenario = TrafficScenario::paper_default();
    if protected {
        scenario.safety_monitor = Some(SafetyMonitorConfig::default());
    }
    let engine = Engine::new(scenario, CommModel::paper_default(), 42).expect("valid presets");
    let campaign =
        Campaign::new(engine, AttackCampaignSetup::paper_dos_campaign()).expect("valid campaign");
    campaign
        .run(std::thread::available_parallelism().map_or(1, |n| n.get()))
        .expect("campaign runs")
}

fn main() {
    println!("running 25 DoS experiments, unprotected vs. safety-monitored...\n");
    let unprotected = run(false);
    let protected = run(true);

    println!(
        "{:<14} | {:>7} | {:>7} | {:>11} | {:>11}",
        "configuration", "severe", "benign", "negligible", "collisions"
    );
    println!("{}", "-".repeat(62));
    for (name, result) in [("unprotected", &unprotected), ("monitored", &protected)] {
        let s = analysis::summary(&result.records);
        let collisions: usize = result.records.iter().map(|r| r.verdict.nr_collisions).sum();
        println!(
            "{:<14} | {:>7} | {:>7} | {:>11} | {:>11}",
            name, s.severe, s.benign, s.negligible, collisions
        );
    }
    let before: usize = unprotected
        .records
        .iter()
        .map(|r| r.verdict.nr_collisions)
        .sum();
    let after: usize = protected
        .records
        .iter()
        .map(|r| r.verdict.nr_collisions)
        .sum();
    println!(
        "\nthe monitor eliminates {} of {} collisions ({}%)",
        before - after,
        before,
        (100 * (before - after)).checked_div(before).unwrap_or(0)
    );
    println!("(severe-by-emergency-braking may remain: the monitor brakes hard on purpose)");
}
