//! Hazard-warning scenario from the paper's introduction: vehicles warn
//! each other of upcoming hazards. Here the platoon leader performs an
//! emergency stop; we compare the outcome with healthy communication
//! against the outcome under a DoS attack that starts just before the
//! braking.
//!
//! ```text
//! cargo run --release --example emergency_brake
//! ```

use comfase::prelude::*;
use comfase_des::time::SimTime;

fn scenario() -> TrafficScenario {
    let mut s = TrafficScenario::paper_default();
    // Cruise at 100 km/h, brake firmly at t = 20 s with 3 m/s² — hard
    // enough to be dangerous with stale data, survivable with fresh data.
    s.maneuver = ManeuverKind::Braking {
        brake_at_s: 20.0,
        decel_mps2: 3.0,
    };
    s.total_sim_time = SimTime::from_secs(40);
    s
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new(scenario(), CommModel::paper_default(), 7)?;

    // Healthy communication: the platoon hears the leader's deceleration
    // through the 10 Hz beacons and brakes in concert.
    let golden = engine.golden_run()?;
    println!(
        "healthy platoon: max decel {:.2} m/s², collisions: {}",
        golden.max_decel(),
        golden.trace.collisions.len()
    );

    // DoS on Vehicle 2 starting 1 s before the emergency braking: the
    // stale beacons still say "cruising at 27.8 m/s".
    let attack = AttackSpec {
        model: AttackModelKind::Dos,
        value: 40.0,
        targets: vec![2].into(),
        start: SimTime::from_secs(19),
        end: SimTime::from_secs(40),
    };
    let run = engine.run_experiment(&attack, 0)?;
    let verdict = engine.classify_experiment(&golden, &run);
    println!(
        "DoS during emergency stop: {} (max decel {:.2} m/s², {} collisions)",
        verdict.class, verdict.max_decel_mps2, verdict.nr_collisions
    );
    for c in &run.trace.collisions {
        println!("  {}: {} rear-ended {}", c.time, c.collider, c.victim);
    }
    Ok(())
}
