//! Controller resilience ablation, in the spirit of van der Heijden et al.
//! (paper §II-D): how do different longitudinal controllers cope with the
//! same delay attack?
//!
//! The radio-independent ACC baseline should shrug the attack off, while
//! the CACC variants that consume V2V data degrade.
//!
//! ```text
//! cargo run --release --example controller_resilience
//! ```

use comfase::prelude::*;
use comfase_des::time::SimTime;
use comfase_platoon::controller::ControllerKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let attack = AttackSpec {
        model: AttackModelKind::Delay,
        value: 2.0,
        targets: vec![2].into(),
        start: SimTime::from_secs(17),
        end: SimTime::from_secs(37),
    };

    println!(
        "{:<10} | {:>13} | {:>10} | {:>10}",
        "controller", "class", "max decel", "collisions"
    );
    println!("{}", "-".repeat(54));
    for kind in [
        ControllerKind::PathCacc,
        ControllerKind::MsCacc,
        ControllerKind::Ploeg,
        ControllerKind::Acc,
    ] {
        let scenario = TrafficScenario::paper_default().with_controller(kind);
        let engine = Engine::new(scenario, CommModel::paper_default(), 42)?;
        let golden = engine.golden_run()?;
        let run = engine.run_experiment(&attack, 0)?;
        let verdict = engine.classify_experiment(&golden, &run);
        println!(
            "{:<10} | {:>13} | {:>10.2} | {:>10}",
            format!("{kind:?}"),
            verdict.class.to_string(),
            verdict.max_decel_mps2,
            verdict.nr_collisions
        );
    }
    println!("\n(radar-only ACC ignores V2V data and is unaffected by the attack)");
    Ok(())
}
