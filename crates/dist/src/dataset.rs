// comfase-lint: host-region(reason = "dataset corpus assembly: durable file I/O over shards already rendered by the deterministic obs-side renderer; this module only validates, orders and concatenates bytes, so it can never alter what a simulation produced")

//! Reassembling exported dataset shards into one corpus.
//!
//! Campaign workers export one `exp-<index>.jsonl` shard per experiment
//! (see `comfase_obs::dataset`), whether they run as a single process,
//! static shards, or claim-driven workers sharing a directory. The merge
//! validates the shard set and concatenates it — in experiment-index
//! order — into `corpus.jsonl`, plus a `manifest.json` recording
//! per-shard and whole-corpus FNV-1a 64 hashes.
//!
//! **Why merge order cannot affect the bytes:** each shard is a pure
//! function of `(campaign identity, label, capture)` — the renderer is
//! deterministic and byte-stable — and the merge imposes index order, so
//! any set of workers that completed the same campaign produces the same
//! corpus byte for byte. The merge's only degrees of freedom are checks:
//!
//! - every shard's header must carry the same campaign identity
//!   (schema version, fingerprint, seed, total) — foreign shards refuse;
//! - the header's experiment index must match the shard's file name
//!   (a mismatch can only be corruption or tampering);
//! - every line of every shard must be well-formed length-delimited
//!   JSON — torn files refuse;
//! - coverage of `0..total` must be exact — missing experiments are
//!   reported as precise index ranges, never silently skipped;
//! - duplicate indices across input directories are admitted only when
//!   bit-equal (the same equal-or-reject rule the journal merger uses).

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use comfase::fingerprint::{fnv1a64, fnv1a64_extend, FNV_OFFSET};
use comfase::prelude::ComfaseError;
use comfase_obs::dataset::{parse_header, split_line, DatasetHeader, DATASET_SCHEMA_VERSION};

use crate::merge::{index_ranges, IndexRange};

/// Result of a successful corpus merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetMergeReport {
    /// The campaign identity every shard agreed on.
    pub header: DatasetHeader,
    /// Number of shard files folded in (equal to `header.total`).
    pub shards: usize,
    /// Total corpus size in bytes.
    pub corpus_bytes: u64,
    /// FNV-1a 64 over the whole corpus.
    pub corpus_fnv1a64: u64,
    /// Path of the written `corpus.jsonl`.
    pub corpus_path: PathBuf,
    /// Path of the written `manifest.json`.
    pub manifest_path: PathBuf,
}

fn io_err(path: &Path, e: &std::io::Error) -> ComfaseError {
    ComfaseError::Io(format!("{}: {e}", path.display()))
}

/// One validated shard staged for concatenation.
struct Shard {
    path: PathBuf,
    bytes: Vec<u8>,
}

/// Validates one shard file: well-formed lines throughout, a parseable
/// header, and the expected campaign identity.
fn load_shard(
    path: &Path,
    expect: Option<&DatasetHeader>,
) -> Result<(DatasetHeader, usize, Vec<u8>), ComfaseError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, &e))?;
    let (header, index) = parse_header(&bytes).ok_or_else(|| {
        ComfaseError::Io(format!(
            "{}: missing or malformed dataset header line",
            path.display()
        ))
    })?;
    if header.dataset_schema_version != DATASET_SCHEMA_VERSION {
        return Err(ComfaseError::InvalidConfig(format!(
            "{}: dataset schema v{} (this build reads v{})",
            path.display(),
            header.dataset_schema_version,
            DATASET_SCHEMA_VERSION
        )));
    }
    if let Some(expect) = expect {
        if header != *expect {
            return Err(ComfaseError::InvalidConfig(format!(
                "{}: shard belongs to a different campaign \
                 (fingerprint {:016x}, seed {}, total {}; expected \
                 fingerprint {:016x}, seed {}, total {})",
                path.display(),
                header.fingerprint,
                header.seed,
                header.total,
                expect.fingerprint,
                expect.seed,
                expect.total
            )));
        }
    }
    if index >= header.total {
        return Err(ComfaseError::InvalidConfig(format!(
            "{}: experiment index {index} outside the campaign's 0..{}",
            path.display(),
            header.total
        )));
    }
    // Every line must be well-formed — a torn shard refuses here instead
    // of corrupting the corpus.
    let mut rest = bytes.as_slice();
    while !rest.is_empty() {
        let (_, tail) = split_line(rest).ok_or_else(|| {
            ComfaseError::Io(format!(
                "{}: torn or malformed length-delimited line",
                path.display()
            ))
        })?;
        rest = tail;
    }
    Ok((header, index, bytes))
}

/// Scans `dirs` for `exp-*.jsonl` shards, validates them against each
/// other, and merges them in index order into `<out_dir>/corpus.jsonl`
/// with a `<out_dir>/manifest.json` alongside. See the module docs for
/// the validation rules.
///
/// # Errors
///
/// [`ComfaseError::Io`] for unreadable/torn shards and output failures;
/// [`ComfaseError::InvalidConfig`] for identity mismatches, index/file
/// disagreements, conflicting duplicates and coverage gaps.
pub fn merge_dataset_dirs(
    dirs: &[PathBuf],
    out_dir: &Path,
) -> Result<DatasetMergeReport, ComfaseError> {
    if dirs.is_empty() {
        return Err(ComfaseError::InvalidConfig(
            "dataset merge requires at least one shard directory".into(),
        ));
    }
    let mut header: Option<DatasetHeader> = None;
    let mut shards: BTreeMap<usize, Shard> = BTreeMap::new();
    for dir in dirs {
        let entries = fs::read_dir(dir).map_err(|e| io_err(dir, &e))?;
        // Deterministic scan order (readdir order is arbitrary).
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err(dir, &e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("exp-") && name.ends_with(".jsonl") {
                paths.push(entry.path());
            }
        }
        paths.sort();
        for path in paths {
            let (shard_header, index, bytes) = load_shard(&path, header.as_ref())?;
            header.get_or_insert(shard_header);
            let expected_name = comfase_obs::dataset::shard_file_name(index);
            if path.file_name().map(|n| n.to_string_lossy().into_owned())
                != Some(expected_name.clone())
            {
                return Err(ComfaseError::InvalidConfig(format!(
                    "{}: header says experiment {index} (file should be named {expected_name})",
                    path.display()
                )));
            }
            match shards.get(&index) {
                // Equal-or-reject: the same experiment exported by two
                // workers must have produced identical bytes.
                Some(existing) if existing.bytes != bytes => {
                    return Err(ComfaseError::InvalidConfig(format!(
                        "experiment {index} differs between {} and {} — \
                         shards of one campaign must be bit-identical",
                        existing.path.display(),
                        path.display()
                    )));
                }
                Some(_) => {}
                None => {
                    shards.insert(index, Shard { path, bytes });
                }
            }
        }
    }
    let Some(header) = header else {
        return Err(ComfaseError::InvalidConfig(format!(
            "no exp-*.jsonl shards found under {}",
            dirs.iter()
                .map(|d| d.display().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )));
    };
    // Exact coverage of 0..total.
    let missing: Vec<IndexRange> =
        index_ranges((0..header.total).filter(|i| !shards.contains_key(i)));
    if !missing.is_empty() {
        let runs: Vec<String> = missing.iter().map(|r| r.to_string()).collect();
        return Err(ComfaseError::InvalidConfig(format!(
            "dataset shards cover {}/{} experiments; missing indices {}",
            shards.len(),
            header.total,
            runs.join(", ")
        )));
    }

    fs::create_dir_all(out_dir).map_err(|e| io_err(out_dir, &e))?;
    let corpus_path = out_dir.join("corpus.jsonl");
    let manifest_path = out_dir.join("manifest.json");

    // Concatenate in index order, hashing incrementally; publish via the
    // same atomic temp+rename the shards themselves use.
    let tmp = out_dir.join(format!(".tmp-corpus-{}", std::process::id()));
    let mut corpus_hash = FNV_OFFSET;
    let mut corpus_bytes: u64 = 0;
    let mut manifest = String::with_capacity(128 + shards.len() * 64);
    manifest.push_str(&format!(
        "{{\"dataset_schema_version\":{},\"fingerprint\":\"{:016x}\",\"seed\":{},\"total\":{},\"shards\":[",
        header.dataset_schema_version, header.fingerprint, header.seed, header.total
    ));
    {
        let mut out = fs::File::create(&tmp).map_err(|e| io_err(&tmp, &e))?;
        let result = (|| -> Result<(), ComfaseError> {
            for (n, (index, shard)) in shards.iter().enumerate() {
                out.write_all(&shard.bytes).map_err(|e| io_err(&tmp, &e))?;
                corpus_hash = fnv1a64_extend(corpus_hash, &shard.bytes);
                corpus_bytes += shard.bytes.len() as u64;
                if n > 0 {
                    manifest.push(',');
                }
                manifest.push_str(&format!(
                    "{{\"index\":{index},\"bytes\":{},\"fnv1a64\":\"{:016x}\"}}",
                    shard.bytes.len(),
                    fnv1a64(&shard.bytes)
                ));
            }
            out.sync_data().map_err(|e| io_err(&tmp, &e))
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
            return Err(result.unwrap_err());
        }
    }
    fs::rename(&tmp, &corpus_path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        io_err(&corpus_path, &e)
    })?;
    manifest.push_str(&format!(
        "],\"corpus_bytes\":{corpus_bytes},\"corpus_fnv1a64\":\"{corpus_hash:016x}\"}}\n"
    ));
    let tmp = out_dir.join(format!(".tmp-manifest-{}", std::process::id()));
    fs::write(&tmp, manifest.as_bytes()).map_err(|e| io_err(&tmp, &e))?;
    fs::rename(&tmp, &manifest_path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        io_err(&manifest_path, &e)
    })?;

    Ok(DatasetMergeReport {
        header,
        shards: shards.len(),
        corpus_bytes,
        corpus_fnv1a64: corpus_hash,
        corpus_path,
        manifest_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use comfase_obs::dataset::{
        render_experiment, shard_file_name, DatasetCapture, ExperimentExport, ExperimentLabel,
    };

    fn tmp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "comfase-dataset-merge-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn export(index: usize, total: usize) -> ExperimentExport {
        ExperimentExport {
            header: DatasetHeader {
                dataset_schema_version: DATASET_SCHEMA_VERSION,
                fingerprint: 0xFEED,
                seed: 7,
                total,
            },
            label: ExperimentLabel {
                index,
                attack_model: Some("Delay".into()),
                attack_parameter: Some("Propagation delay (PD)".into()),
                attack_value: Some(0.4),
                attack_start_s: Some(17.0),
                attack_duration_s: Some(1.0),
                targets: vec![2],
                verdict: "Benign".into(),
                max_decel_mps2: 1.5,
                nr_collisions: 0,
            },
            capture: DatasetCapture::default(),
        }
    }

    fn plant(dir: &Path, index: usize, total: usize) {
        fs::write(
            dir.join(shard_file_name(index)),
            render_experiment(&export(index, total)),
        )
        .unwrap();
    }

    #[test]
    fn merge_concatenates_in_index_order_and_hashes() {
        let root = tmp_root("order");
        let shards = root.join("shards");
        fs::create_dir_all(&shards).unwrap();
        // Plant out of order; merge must impose index order.
        for i in [2usize, 0, 1] {
            plant(&shards, i, 3);
        }
        let out = root.join("merged");
        let report = merge_dataset_dirs(&[shards.clone()], &out).unwrap();
        assert_eq!(report.shards, 3);
        let corpus = fs::read(&report.corpus_path).unwrap();
        let mut expected = Vec::new();
        for i in 0..3 {
            expected.extend_from_slice(&render_experiment(&export(i, 3)));
        }
        assert_eq!(corpus, expected);
        assert_eq!(report.corpus_fnv1a64, fnv1a64(&expected));
        let manifest = fs::read_to_string(&report.manifest_path).unwrap();
        assert!(manifest.contains(&format!(
            "\"corpus_fnv1a64\":\"{:016x}\"",
            fnv1a64(&expected)
        )));
        assert!(manifest.contains("\"total\":3"));
        // Merging again (idempotent) produces identical bytes.
        let report2 = merge_dataset_dirs(&[shards], &out).unwrap();
        assert_eq!(fs::read(&report2.corpus_path).unwrap(), expected);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn merge_refuses_coverage_gaps_with_exact_ranges() {
        let root = tmp_root("gap");
        let shards = root.join("shards");
        fs::create_dir_all(&shards).unwrap();
        plant(&shards, 0, 5);
        plant(&shards, 3, 5);
        let err = merge_dataset_dirs(&[shards], &root.join("merged")).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("2/5"), "got: {msg}");
        assert!(msg.contains("1-2") && msg.contains('4'), "got: {msg}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn merge_refuses_foreign_and_conflicting_shards() {
        let root = tmp_root("foreign");
        let a = root.join("a");
        let b = root.join("b");
        fs::create_dir_all(&a).unwrap();
        fs::create_dir_all(&b).unwrap();
        plant(&a, 0, 2);
        // Foreign campaign: different seed in the header.
        let mut foreign = export(1, 2);
        foreign.header.seed = 999;
        fs::write(b.join(shard_file_name(1)), render_experiment(&foreign)).unwrap();
        let err = merge_dataset_dirs(&[a.clone(), b.clone()], &root.join("m1")).unwrap_err();
        assert!(err.to_string().contains("different campaign"));
        // Conflicting duplicate: same index, different bytes.
        let mut conflicting = export(0, 2);
        conflicting.label.verdict = "Severe".into();
        fs::write(b.join(shard_file_name(1)), render_experiment(&export(1, 2))).unwrap();
        fs::write(b.join(shard_file_name(0)), render_experiment(&conflicting)).unwrap();
        let err = merge_dataset_dirs(&[a, b], &root.join("m2")).unwrap_err();
        assert!(err.to_string().contains("bit-identical"), "got: {err}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn merge_refuses_torn_shards_and_index_mismatches() {
        let root = tmp_root("torn");
        let shards = root.join("shards");
        fs::create_dir_all(&shards).unwrap();
        let bytes = render_experiment(&export(0, 1));
        fs::write(shards.join(shard_file_name(0)), &bytes[..bytes.len() - 2]).unwrap();
        let err = merge_dataset_dirs(&[shards.clone()], &root.join("m")).unwrap_err();
        assert!(err.to_string().contains("torn"), "got: {err}");
        // Header claims index 1 but the file is named exp-000000.jsonl.
        fs::write(
            shards.join(shard_file_name(0)),
            render_experiment(&export(1, 2)),
        )
        .unwrap();
        let err = merge_dataset_dirs(&[shards], &root.join("m")).unwrap_err();
        assert!(err.to_string().contains("should be named"), "got: {err}");
        let _ = fs::remove_dir_all(&root);
    }
}
