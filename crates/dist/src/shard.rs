//! The shard ledger: deterministic partitioning of a campaign's
//! experiment index space.
//!
//! A campaign of `total` experiments split `n` ways assigns shard `i`
//! the half-open range `[i·total/n, (i+1)·total/n)` (integer division) —
//! the same arithmetic as [`ShardRange::bounds`], re-exported here as a
//! ledger so a launcher can print, persist and hand out the full plan.
//! The slices are **disjoint**, **cover** `0..total` exactly, and are
//! **balanced** to within one experiment; all three properties are
//! unit-tested below for adversarial totals (0, 1, primes, `n > total`).
//!
//! Every [`ShardSpec`] carries the campaign's canonical configuration
//! fingerprint. Two shards merge only when their fingerprints agree —
//! the merger re-checks this from the journal headers, so a stale spec
//! file cannot smuggle a foreign shard into a campaign.

use serde::{Deserialize, Serialize};

use comfase::prelude::{Campaign, ComfaseError, ShardRange};

/// One entry of a shard ledger: which slice of which campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Which shard this is (0-based).
    pub index: usize,
    /// Total number of shards.
    pub of: usize,
    /// Canonical fingerprint of the campaign configuration
    /// ([`Campaign::fingerprint`]). Shards with different fingerprints
    /// belong to different campaigns and refuse to merge.
    pub campaign_fingerprint: u64,
}

impl ShardSpec {
    /// The index range this shard covers, for use as
    /// [`comfase::prelude::RunConfig::shard`].
    pub fn range(&self) -> ShardRange {
        ShardRange {
            index: self.index,
            of: self.of,
        }
    }
}

/// Plans an `n`-way split of `campaign`: one [`ShardSpec`] per shard,
/// each stamped with the campaign's fingerprint.
///
/// # Errors
///
/// [`ComfaseError::InvalidConfig`] for `n == 0`; fingerprinting errors
/// if the configuration cannot be serialized.
pub fn plan_shards(campaign: &Campaign, n: usize) -> Result<Vec<ShardSpec>, ComfaseError> {
    if n == 0 {
        return Err(ComfaseError::InvalidConfig(
            "shard count must be at least 1".into(),
        ));
    }
    let campaign_fingerprint = campaign.fingerprint()?;
    Ok((0..n)
        .map(|index| ShardSpec {
            index,
            of: n,
            campaign_fingerprint,
        })
        .collect())
}

/// Parses a `i/n` shard argument (as accepted by `repro --shard`) into a
/// validated [`ShardRange`].
///
/// # Errors
///
/// [`ComfaseError::InvalidConfig`] on malformed syntax or a degenerate
/// range (`n == 0`, `i >= n`).
pub fn parse_shard(arg: &str) -> Result<ShardRange, ComfaseError> {
    let malformed =
        || ComfaseError::InvalidConfig(format!("--shard expects i/n (e.g. 0/4), got `{arg}`"));
    let (index, of) = arg.split_once('/').ok_or_else(malformed)?;
    let shard = ShardRange {
        index: index.trim().parse::<usize>().map_err(|_| malformed())?,
        of: of.trim().parse::<usize>().map_err(|_| malformed())?,
    };
    shard.validate()?;
    Ok(shard)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every split must be disjoint, covering and balanced ±1.
    fn assert_partition(total: usize, n: usize) {
        let mut covered = vec![0usize; total];
        let (mut min_len, mut max_len) = (usize::MAX, 0usize);
        for i in 0..n {
            let shard = ShardRange { index: i, of: n };
            let (lo, hi) = shard.bounds(total);
            assert!(lo <= hi, "inverted bounds for shard {i}/{n} of {total}");
            assert!(hi <= total, "shard {i}/{n} overruns total {total}");
            min_len = min_len.min(hi - lo);
            max_len = max_len.max(hi - lo);
            for slot in &mut covered[lo..hi] {
                *slot += 1;
            }
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "split {n} of {total} is not a disjoint cover: {covered:?}"
        );
        assert!(
            max_len - min_len <= 1,
            "split {n} of {total} is unbalanced: sizes {min_len}..={max_len}"
        );
    }

    #[test]
    fn splits_are_disjoint_covering_and_balanced() {
        for total in [0, 1, 2, 7, 8, 25, 97, 11_250] {
            for n in [1, 2, 3, 4, 5, 8, 16, 97] {
                assert_partition(total, n);
            }
        }
    }

    #[test]
    fn more_shards_than_experiments_leaves_some_empty() {
        let total = 3;
        let lens: Vec<usize> = (0..8)
            .map(|i| ShardRange { index: i, of: 8 }.len(total))
            .collect();
        assert_eq!(lens.iter().sum::<usize>(), total);
        assert!(lens.iter().any(|&l| l == 0));
    }

    #[test]
    fn parse_accepts_valid_and_rejects_degenerate() {
        assert_eq!(parse_shard("2/4").unwrap(), ShardRange { index: 2, of: 4 });
        assert_eq!(parse_shard("0/1").unwrap(), ShardRange { index: 0, of: 1 });
        for bad in ["", "3", "4/4", "1/0", "a/b", "-1/2", "1/2/3"] {
            assert!(
                matches!(parse_shard(bad), Err(ComfaseError::InvalidConfig(_))),
                "`{bad}` should be rejected"
            );
        }
    }
}
