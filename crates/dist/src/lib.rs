//! # comfase-dist — sharded campaign execution for ComFASE-RS
//!
//! The full Table II delay campaign is 11 250 experiments; one process
//! runs it fine, but a grid of machines runs it in a fraction of the
//! wall time *if and only if* the split cannot change the result. This
//! crate provides the three pieces that make sharding safe:
//!
//! 1. **Shard ledger** ([`shard`]) — a deterministic partition of the
//!    experiment index space into `n` disjoint, covering, balanced
//!    slices, each stamped with the campaign's canonical configuration
//!    fingerprint (see `comfase::fingerprint`) so shards of *different*
//!    campaigns refuse to merge.
//! 2. **Merger** ([`merge`]) — reassembles the per-shard checkpoint
//!    journals into one [`comfase_obs::CampaignMetrics`] artifact,
//!    byte-identical to the single-process run's. Identity is checked
//!    field by field (seed, setup, fingerprint, shard bounds, golden
//!    row agreement), and coverage must be exact: missing or
//!    conflicting experiments are hard errors, never silently dropped.
//! 3. **Result cache** ([`cache`]) — a content-addressed on-disk store
//!    implementing `comfase::cache::ExperimentCache`: experiments keyed
//!    by `(spec, seed, configuration)` return their journaled rows
//!    without simulating on a re-run.
//!
//! Everything here is host-side tooling; no simulation state lives in
//! this crate. The determinism burden is carried by the workspace
//! invariant (byte-identical artifacts across execution modes, thread
//! counts and indexing substrates), which is what makes "merge journals
//! from different machines" equivalent to "run it all here".

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod merge;
pub mod shard;

pub use cache::DiskCache;
pub use merge::{merge_journals, merge_states};
pub use shard::{parse_shard, plan_shards, ShardSpec};
