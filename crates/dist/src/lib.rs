//! # comfase-dist — sharded campaign execution for ComFASE-RS
//!
//! The full Table II delay campaign is 11 250 experiments; one process
//! runs it fine, but a grid of machines runs it in a fraction of the
//! wall time *if and only if* the split cannot change the result. This
//! crate provides the three pieces that make sharding safe:
//!
//! 1. **Shard ledger** ([`shard`]) — a deterministic partition of the
//!    experiment index space into `n` disjoint, covering, balanced
//!    slices, each stamped with the campaign's canonical configuration
//!    fingerprint (see `comfase::fingerprint`) so shards of *different*
//!    campaigns refuse to merge.
//! 2. **Merger** ([`merge`]) — reassembles the per-shard checkpoint
//!    journals into one [`comfase_obs::CampaignMetrics`] artifact,
//!    byte-identical to the single-process run's. Identity is checked
//!    field by field (seed, setup, fingerprint, shard bounds, golden
//!    row agreement), and coverage must be exact: missing or
//!    conflicting experiments are hard errors, never silently dropped.
//! 3. **Result cache** ([`cache`]) — a content-addressed on-disk store
//!    implementing `comfase::cache::ExperimentCache`: experiments keyed
//!    by `(spec, seed, configuration)` return their journaled rows
//!    without simulating on a re-run, with size-bounded garbage
//!    collection ([`DiskCache::gc`]) for long-lived shared caches.
//! 4. **Dataset merger** ([`dataset`]) — reassembles per-experiment
//!    `exp-*.jsonl` dataset shards (see `comfase_obs::dataset`) into one
//!    `corpus.jsonl` + `manifest.json`, byte-identical regardless of how
//!    many workers exported them, under the same identity/coverage/
//!    equal-or-reject rules as the journal merger.
//! 5. **Claim ledger** ([`claim`]) and **claim-driven worker**
//!    ([`worker`]) — the crash-tolerant alternative to static shards:
//!    the index space is chunked into small work units that workers
//!    claim through atomic lease files, renew via monotonic heartbeat
//!    counters, and steal from stalled owners, so a killed worker's
//!    units are re-executed by survivors instead of stranding the
//!    campaign. Double execution is safe because the merger admits
//!    duplicates only when bit-equal.
//!
//! Everything here is host-side tooling; no simulation state lives in
//! this crate. The determinism burden is carried by the workspace
//! invariant (byte-identical artifacts across execution modes, thread
//! counts and indexing substrates), which is what makes "merge journals
//! from different machines" equivalent to "run it all here".

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod claim;
pub mod dataset;
pub mod merge;
pub mod shard;
pub mod worker;

pub use cache::{DiskCache, GcStats};
pub use claim::{default_unit_size, ClaimLedger, Lease, LeaseView};
pub use dataset::{merge_dataset_dirs, DatasetMergeReport};
pub use merge::{
    index_ranges, merge_journals, merge_journals_detailed, merge_states, merge_states_detailed,
    CoverageGap, IndexRange, MergeFailure,
};
pub use shard::{parse_shard, plan_shards, ShardSpec};
pub use worker::ClaimSource;
