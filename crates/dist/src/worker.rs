// comfase-lint: host-region(reason = "claim-driven worker: scan/steal scheduling over the lease ledger is host-side work distribution; it decides which worker runs a unit, never what the unit computes, and uses sleeps (not clock reads) to pace scan rounds")

//! The claim-driven work source: a [`ClaimSource`] plugs a
//! [`ClaimLedger`] into the campaign runner's
//! [`WorkSource`](comfase::campaign::WorkSource) seam, turning a static
//! `--shard i/n` split into dynamic, crash-tolerant work stealing.
//!
//! # The scan loop
//!
//! Each `claim()` call scans the ledger in rounds:
//!
//! 1. **Acquire pass** — every unit without a done marker and without a
//!    valid lease is claimed via temp+rename with read-back confirm;
//!    the first win returns.
//! 2. **Stall pass** — for every validly leased unit, the observed
//!    `heartbeat_seq` is compared against the previous round's. An
//!    unchanged counter increments a per-unit stall count; a changed
//!    one resets it. Once a unit stalls for `steal_after` consecutive
//!    rounds it is presumed abandoned and stolen.
//! 3. If neither pass yielded a unit and undone units remain, the
//!    worker sleeps one `scan_interval` and rescans. `claim()` returns
//!    `None` only when **every** unit carries a done marker — so no
//!    unit is ever stranded behind a dead owner.
//!
//! Liveness detection is counter-vs-counter: no wall-clock value ever
//! enters a decision (the inter-round sleep paces scanning but its
//! duration is never read back), which keeps the determinism audit's
//! wall-clock rule satisfied via the file-scope host region.
//!
//! # Steal safety
//!
//! Stealing can race a live-but-slow owner: both end up executing the
//! same unit. This is safe — the deposed owner's next heartbeat
//! renewal observes the foreign lease and abandons the unit
//! ([`LeaseState::Lost`]), and even if both journal it, experiments are
//! deterministic and the merger admits duplicates only when bit-equal.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use comfase::campaign::WorkSource;
use comfase::prelude::{Campaign, ComfaseError, IoChaosConfig, LeaseState, WorkUnit};

use crate::claim::{ClaimLedger, LeaseView};

/// Default pause between ledger scan rounds.
pub const DEFAULT_SCAN_INTERVAL: Duration = Duration::from_millis(50);

/// Default number of consecutive unchanged-heartbeat scan rounds before
/// a lease is presumed abandoned and its unit stolen.
pub const DEFAULT_STEAL_AFTER: u32 = 20;

/// A [`WorkSource`] backed by a shared-filesystem [`ClaimLedger`].
///
/// One `ClaimSource` serves all threads of one worker process: threads
/// claim units concurrently, each renewing the lease of the unit it is
/// executing between experiments.
#[derive(Debug)]
pub struct ClaimSource {
    ledger: ClaimLedger,
    worker_id: String,
    steal_after: u32,
    scan_interval: Duration,
    /// Per-unit `(last observed heartbeat_seq, consecutive stall rounds)`,
    /// shared across this worker's claiming threads so stall evidence
    /// accumulates once per scan round, not once per thread.
    observed: Mutex<BTreeMap<usize, (u64, u32)>>,
    chaos: IoChaosConfig,
    chaos_acquire_used: AtomicU32,
    chaos_heartbeat_used: AtomicU32,
}

impl ClaimSource {
    /// Wraps `ledger` for worker `worker_id`, stealing after
    /// `steal_after` consecutive stalled scan rounds (`0` steals on
    /// first sight — maximally aggressive, still safe, rarely wise).
    pub fn new(ledger: ClaimLedger, worker_id: impl Into<String>, steal_after: u32) -> Self {
        ClaimSource {
            ledger,
            worker_id: worker_id.into(),
            steal_after,
            scan_interval: DEFAULT_SCAN_INTERVAL,
            observed: Mutex::new(BTreeMap::new()),
            chaos: IoChaosConfig::default(),
            chaos_acquire_used: AtomicU32::new(0),
            chaos_heartbeat_used: AtomicU32::new(0),
        }
    }

    /// Opens (or creates) the ledger at `claim_dir` for `campaign`,
    /// adopting the campaign's chaos configuration for lease-layer
    /// fault injection. `unit_size = None` uses
    /// [`crate::claim::default_unit_size`].
    ///
    /// # Errors
    ///
    /// Fingerprinting failures, ledger I/O, or a meta mismatch with an
    /// existing ledger.
    pub fn for_campaign(
        claim_dir: impl AsRef<std::path::Path>,
        campaign: &Campaign,
        worker_id: impl Into<String>,
        unit_size: Option<usize>,
        steal_after: u32,
    ) -> Result<Self, ComfaseError> {
        let total = campaign.nr_experiments();
        let unit_size = unit_size.unwrap_or_else(|| crate::claim::default_unit_size(total));
        let ledger = ClaimLedger::create(claim_dir, campaign.fingerprint()?, total, unit_size)?;
        Ok(
            ClaimSource::new(ledger, worker_id, steal_after)
                .with_chaos(campaign.chaos().io.clone()),
        )
    }

    /// Replaces the scan pacing interval (tests use a short one).
    pub fn with_scan_interval(mut self, interval: Duration) -> Self {
        self.scan_interval = interval;
        self
    }

    /// Arms lease-layer chaos: the first `fail_lease_acquire`
    /// acquire/steal publications and the first `fail_heartbeat`
    /// renewals fail with an injected I/O error.
    pub fn with_chaos(mut self, chaos: IoChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }

    /// The worker id leases are stamped with.
    pub fn worker_id(&self) -> &str {
        &self.worker_id
    }

    /// The underlying ledger.
    pub fn ledger(&self) -> &ClaimLedger {
        &self.ledger
    }

    fn chaos_acquire(&self) -> Result<(), ComfaseError> {
        if self.chaos.fail_lease_acquire > 0
            && self.chaos_acquire_used.fetch_add(1, Ordering::Relaxed)
                < self.chaos.fail_lease_acquire
        {
            return Err(ComfaseError::Io(
                "chaos: injected lease acquire failure".into(),
            ));
        }
        Ok(())
    }

    fn chaos_heartbeat(&self) -> Result<(), ComfaseError> {
        if self.chaos.fail_heartbeat > 0
            && self.chaos_heartbeat_used.fetch_add(1, Ordering::Relaxed) < self.chaos.fail_heartbeat
        {
            return Err(ComfaseError::Io(
                "chaos: injected heartbeat renewal failure".into(),
            ));
        }
        Ok(())
    }

    /// One acquire-then-stall scan over the ledger. `Ok(Some(_))` on a
    /// won unit, `Ok(None)` when this round yielded nothing (the caller
    /// decides between sleeping and returning based on `all_done`).
    fn scan_round(&self) -> Result<(Option<WorkUnit>, bool), ComfaseError> {
        let mut all_done = true;
        let mut deferred: Vec<(WorkUnit, Lease2)> = Vec::new();
        // Acquire pass: free (or corrupt-leased) units first — stealing
        // is the fallback, not the fast path.
        for unit in self.ledger.units() {
            if self.ledger.is_done(unit.id) {
                self.observed.lock().remove(&unit.id);
                continue;
            }
            all_done = false;
            match self.ledger.lease_view(unit.id)? {
                LeaseView::Free | LeaseView::Corrupt => {
                    self.chaos_acquire()?;
                    if self.ledger.try_acquire(unit, &self.worker_id)? {
                        self.observed.lock().remove(&unit.id);
                        return Ok((Some(*unit), false));
                    }
                }
                LeaseView::Held(lease) => {
                    deferred.push((
                        *unit,
                        Lease2 {
                            seq: lease.heartbeat_seq,
                        },
                    ));
                }
            }
        }
        if all_done {
            return Ok((None, true));
        }
        // Stall pass: compare each held lease's heartbeat against the
        // previous round's observation; steal once it has sat unchanged
        // for `steal_after` consecutive rounds.
        for (unit, lease) in deferred {
            let stalled = {
                let mut observed = self.observed.lock();
                let entry = observed.entry(unit.id).or_insert((lease.seq, 0));
                if entry.0 == lease.seq {
                    entry.1 = entry.1.saturating_add(1);
                } else {
                    *entry = (lease.seq, 0);
                }
                entry.1 >= self.steal_after
            };
            if stalled {
                self.chaos_acquire()?;
                // Whoever wins the steal race, this unit's stall
                // evidence is spent either way.
                self.observed.lock().remove(&unit.id);
                if self.ledger.steal(&unit, &self.worker_id)? {
                    return Ok((Some(unit), false));
                }
            }
        }
        Ok((None, false))
    }
}

/// Just the heartbeat a stall comparison needs.
#[derive(Debug, Clone, Copy)]
struct Lease2 {
    seq: u64,
}

impl WorkSource for ClaimSource {
    fn claim(&self) -> Result<Option<WorkUnit>, ComfaseError> {
        // Transient ledger I/O errors (including injected chaos) skip
        // the round; only a persistent streak — long enough for several
        // full steal cycles to have happened instead — escapes as an
        // error, so one flaky scan never aborts a worker.
        let max_error_rounds = self.steal_after.saturating_mul(4).max(40);
        let mut error_rounds: u32 = 0;
        loop {
            match self.scan_round() {
                Ok((Some(unit), _)) => return Ok(Some(unit)),
                Ok((None, true)) => return Ok(None),
                Ok((None, false)) => error_rounds = 0,
                Err(e) => {
                    error_rounds += 1;
                    if error_rounds > max_error_rounds {
                        return Err(e);
                    }
                }
            }
            std::thread::sleep(self.scan_interval);
        }
    }

    fn renew(&self, unit: &WorkUnit) -> Result<LeaseState, ComfaseError> {
        self.chaos_heartbeat()?;
        self.ledger.renew(unit, &self.worker_id)
    }

    fn complete(&self, unit: &WorkUnit) -> Result<(), ComfaseError> {
        self.ledger.mark_done(unit, &self.worker_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("comfase-worker-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    const FP: u64 = 0xfeed_0000_0000_0001;

    fn source(dir: &PathBuf, worker: &str, steal_after: u32) -> ClaimSource {
        let ledger = ClaimLedger::create(dir, FP, 8, 2).unwrap();
        ClaimSource::new(ledger, worker, steal_after).with_scan_interval(Duration::from_millis(1))
    }

    #[test]
    fn claims_drain_the_ledger_then_none() {
        let dir = tmp_dir("drain");
        let source = source(&dir, "solo", 5);
        let mut seen = Vec::new();
        while let Some(unit) = source.claim().unwrap() {
            assert_eq!(source.renew(&unit).unwrap(), LeaseState::Held);
            source.complete(&unit).unwrap();
            seen.push(unit.id);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert!(source.ledger().all_done());
        assert!(source.claim().unwrap().is_none(), "done ledger stays done");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stalled_lease_is_stolen_without_intervention() {
        let dir = tmp_dir("steal");
        let victim = source(&dir, "victim", 3);
        let thief = source(&dir, "thief", 3);
        // The victim claims a unit and then never heartbeats again.
        let held = victim.claim().unwrap().expect("a unit to claim");
        // The thief drains everything, including the stalled unit.
        let mut seen = Vec::new();
        while let Some(unit) = thief.claim().unwrap() {
            thief.complete(&unit).unwrap();
            seen.push(unit.id);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3], "the stalled unit was stolen");
        // The deposed victim notices on its next renewal.
        assert_eq!(victim.renew(&held).unwrap(), LeaseState::Lost);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_heartbeats_prevent_stealing() {
        let dir = tmp_dir("live");
        let owner = source(&dir, "owner", 2);
        let unit = owner.claim().unwrap().unwrap();
        // A would-be thief scans while the owner keeps renewing: every
        // renewal resets the stall count, so no steal happens.
        let thief = source(&dir, "thief", 2);
        for _ in 0..8 {
            assert_eq!(owner.renew(&unit).unwrap(), LeaseState::Held);
            let (claimed, all_done) = thief.scan_round().unwrap();
            if let Some(other) = claimed {
                assert_ne!(other.id, unit.id, "a renewing owner must not be deposed");
                thief.complete(&other).unwrap();
            }
            assert!(!all_done);
        }
        assert_eq!(owner.renew(&unit).unwrap(), LeaseState::Held);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_lease_failures_are_retried_within_claim() {
        let dir = tmp_dir("chaos-acquire");
        let ledger = ClaimLedger::create(&dir, FP, 8, 2).unwrap();
        let source = ClaimSource::new(ledger, "chaotic", 3)
            .with_scan_interval(Duration::from_millis(1))
            .with_chaos(IoChaosConfig {
                fail_lease_acquire: 2,
                ..IoChaosConfig::default()
            });
        // claim() absorbs the injected failures and still wins a unit.
        let unit = source.claim().unwrap().expect("a unit despite chaos");
        assert_eq!(source.renew(&unit).unwrap(), LeaseState::Held);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_heartbeat_failure_surfaces_to_the_caller() {
        let dir = tmp_dir("chaos-heartbeat");
        let ledger = ClaimLedger::create(&dir, FP, 8, 2).unwrap();
        let source = ClaimSource::new(ledger, "chaotic", 3)
            .with_scan_interval(Duration::from_millis(1))
            .with_chaos(IoChaosConfig {
                fail_heartbeat: 1,
                ..IoChaosConfig::default()
            });
        let unit = source.claim().unwrap().unwrap();
        // First renewal: injected failure (the runner treats it as a
        // lost lease and abandons the unit). Second: healthy again.
        assert!(source
            .renew(&unit)
            .unwrap_err()
            .to_string()
            .contains("chaos"));
        assert_eq!(source.renew(&unit).unwrap(), LeaseState::Held);
        let _ = fs::remove_dir_all(&dir);
    }
}
