// comfase-lint: host-region(reason = "claim ledger: shared-filesystem lease files coordinate *which worker* runs a unit, never *what* a unit computes; every write is an atomic temp+rename and double-execution is safe by the merger's equal-or-reject rule")

//! The claim ledger: dynamic, crash-tolerant assignment of work units.
//!
//! A campaign's experiment index space is divided into small fixed-size
//! [`WorkUnit`]s ([`comfase::campaign::plan_units`]); workers claim
//! units one at a time through a directory of lease files instead of
//! being assigned a static `--shard i/n` slice. The ledger directory
//! holds:
//!
//! - `meta.json` — [`LedgerMeta`]: the campaign fingerprint, experiment
//!   count and unit size. The first worker writes it; every later
//!   worker verifies it, so workers of different campaigns (or
//!   disagreeing unit geometries) refuse to share a ledger.
//! - `unit-<k>.lease` — a [`Lease`]: which worker currently owns unit
//!   `k`, at which monotonic `heartbeat_seq`.
//! - `unit-<k>.done` — a [`Done`] marker: every experiment of unit `k`
//!   is journaled; the unit is never claimed again.
//!
//! # Why no wall-clock
//!
//! Lease expiry is *not* a timeout. A worker renews its lease by
//! bumping `heartbeat_seq` between experiments; an observer decides a
//! lease is stale after watching the counter **not change** across a
//! configured number of its own scan rounds (see
//! `crate::worker::ClaimSource`). Liveness detection is therefore a
//! function of observed renewal stalls — counters compared to counters
//! — never of timestamps, which keeps the determinism audit's wall-clock
//! rule out of the decision path entirely.
//!
//! # Why races are safe
//!
//! `rename(2)` is atomic but *last-writer-wins*: two workers can race a
//! claim or a steal, and both can transiently believe they own a unit.
//! Every publication is therefore followed by a read-back confirm
//! (whoever the file names last wins), and the residual window — both
//! read back their own write before the other's rename lands — merely
//! double-executes the unit. That is safe by construction: experiments
//! are deterministic, journal lines are keyed by experiment index, and
//! the merger accepts duplicates only when they are bit-equal
//! ([`crate::merge_states`]).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use comfase::campaign::plan_units;
use comfase::prelude::{ComfaseError, LeaseState, WorkUnit};

/// The ledger's identity record (`meta.json`): which campaign, how many
/// experiments, and how the index space is chunked into units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerMeta {
    /// Canonical fingerprint of the campaign configuration
    /// ([`comfase::prelude::Campaign::fingerprint`]).
    pub campaign_fingerprint: u64,
    /// Total experiments of the whole campaign.
    pub total: usize,
    /// Experiment indices per work unit (the last unit may be shorter).
    pub unit_size: usize,
}

/// One lease file: which worker owns which unit, at which heartbeat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The claimed unit (id and index range — the range is redundant
    /// with the ledger geometry and serves as a consistency echo).
    pub unit: WorkUnit,
    /// The owning worker's id.
    pub worker_id: String,
    /// Campaign fingerprint echo; a mismatch marks the file corrupt.
    pub campaign_fingerprint: u64,
    /// Monotonic renewal counter. Bumped by the owner between
    /// experiments; observers steal the unit after watching it stall.
    pub heartbeat_seq: u64,
}

/// One done marker: unit `unit.id` is fully journaled by `worker_id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Done {
    /// The completed unit.
    pub unit: WorkUnit,
    /// The worker that completed it (informational — under a steal race
    /// several workers may have journaled the unit; any one marker
    /// suffices).
    pub worker_id: String,
}

// Ledger files use a hand-rolled canonical encoding — JSON syntax with
// a fixed field order, written and parsed only by this module. The
// ledger controls every writer, so the parser is deliberately strict:
// anything that is not the canonical encoding (a torn rename, a
// hand-edited file, a future format) reads as [`LeaseView::Corrupt`]
// and is claimable by overwrite, which is exactly the designed
// degradation. Keeping the codec dependency-free also keeps the claim
// protocol testable in environments where no serde runtime exists.

impl LedgerMeta {
    fn to_bytes(self) -> Vec<u8> {
        format!(
            "{{\"campaign_fingerprint\":{},\"total\":{},\"unit_size\":{}}}\n",
            self.campaign_fingerprint, self.total, self.unit_size
        )
        .into_bytes()
    }

    fn parse(bytes: &[u8]) -> Option<LedgerMeta> {
        let mut s = Scan::new(bytes);
        s.lit("{\"campaign_fingerprint\":")?;
        let campaign_fingerprint = s.num()?;
        s.lit(",\"total\":")?;
        let total = usize::try_from(s.num()?).ok()?;
        s.lit(",\"unit_size\":")?;
        let unit_size = usize::try_from(s.num()?).ok()?;
        s.lit("}")?;
        s.fin()?;
        Some(LedgerMeta {
            campaign_fingerprint,
            total,
            unit_size,
        })
    }
}

impl Lease {
    fn to_bytes(&self) -> Vec<u8> {
        format!(
            "{{\"unit\":{},\"worker_id\":\"{}\",\"campaign_fingerprint\":{},\"heartbeat_seq\":{}}}\n",
            unit_json(&self.unit),
            escape(&self.worker_id),
            self.campaign_fingerprint,
            self.heartbeat_seq
        )
        .into_bytes()
    }

    fn parse(bytes: &[u8]) -> Option<Lease> {
        let mut s = Scan::new(bytes);
        s.lit("{\"unit\":")?;
        let unit = parse_unit(&mut s)?;
        s.lit(",\"worker_id\":")?;
        let worker_id = s.string()?;
        s.lit(",\"campaign_fingerprint\":")?;
        let campaign_fingerprint = s.num()?;
        s.lit(",\"heartbeat_seq\":")?;
        let heartbeat_seq = s.num()?;
        s.lit("}")?;
        s.fin()?;
        Some(Lease {
            unit,
            worker_id,
            campaign_fingerprint,
            heartbeat_seq,
        })
    }
}

impl Done {
    fn to_bytes(&self) -> Vec<u8> {
        format!(
            "{{\"unit\":{},\"worker_id\":\"{}\"}}\n",
            unit_json(&self.unit),
            escape(&self.worker_id)
        )
        .into_bytes()
    }
}

fn unit_json(unit: &WorkUnit) -> String {
    format!(
        "{{\"id\":{},\"lo\":{},\"hi\":{}}}",
        unit.id, unit.lo, unit.hi
    )
}

fn parse_unit(s: &mut Scan<'_>) -> Option<WorkUnit> {
    s.lit("{\"id\":")?;
    let id = usize::try_from(s.num()?).ok()?;
    s.lit(",\"lo\":")?;
    let lo = usize::try_from(s.num()?).ok()?;
    s.lit(",\"hi\":")?;
    let hi = usize::try_from(s.num()?).ok()?;
    s.lit("}")?;
    Some(WorkUnit { id, lo, hi })
}

/// JSON-escapes a worker id for embedding in a lease or done marker.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Strict positional scanner over a canonical ledger file. Every
/// combinator returns `None` on the slightest deviation; callers treat
/// that as corruption, never as an error.
struct Scan<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scan<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Scan { bytes, pos: 0 }
    }

    /// Consumes the exact literal `lit`.
    fn lit(&mut self, lit: &str) -> Option<()> {
        let rest = self.bytes.get(self.pos..)?;
        rest.starts_with(lit.as_bytes()).then(|| {
            self.pos += lit.len();
        })
    }

    /// Consumes a non-negative decimal integer.
    fn num(&mut self) -> Option<u64> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    /// Consumes a double-quoted string with the [`escape`] escapes.
    fn string(&mut self) -> Option<String> {
        self.lit("\"")?;
        let mut out = String::new();
        loop {
            match self.next_char()? {
                '"' => return Some(out),
                '\\' => match self.next_char()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hex = self.bytes.get(self.pos..self.pos + 4)?;
                        self.pos += 4;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    }

    fn next_char(&mut self) -> Option<char> {
        let rest = std::str::from_utf8(self.bytes.get(self.pos..)?).ok()?;
        let c = rest.chars().next()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Accepts an optional trailing newline, then requires end-of-input.
    fn fin(&mut self) -> Option<()> {
        let _ = self.lit("\n");
        (self.pos == self.bytes.len()).then_some(())
    }
}

/// What a ledger scan sees for one unit's lease slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseView {
    /// No lease file: the unit is claimable.
    Free,
    /// A lease file exists but does not parse or echoes a foreign
    /// fingerprint/unit: claimable by overwrite (stealable on sight).
    Corrupt,
    /// A valid lease.
    Held(Lease),
}

/// A claim ledger rooted at a shared directory.
#[derive(Debug)]
pub struct ClaimLedger {
    dir: PathBuf,
    meta: LedgerMeta,
    units: Vec<WorkUnit>,
    /// Per-process temp-file sequence (combined with the pid) so
    /// concurrent publishers never collide on a temp name.
    tmp_seq: AtomicU64,
}

impl ClaimLedger {
    /// Opens (creating if needed) the ledger at `dir` for a campaign of
    /// `total` experiments with fingerprint `campaign_fingerprint`,
    /// chunked into units of `unit_size`.
    ///
    /// The first worker writes `meta.json`; every worker then verifies
    /// it against its own parameters, so a worker of a different
    /// campaign — or one computing a different unit table — fails fast
    /// instead of corrupting the claim protocol.
    ///
    /// # Errors
    ///
    /// [`ComfaseError::Io`] on filesystem failures;
    /// [`ComfaseError::InvalidConfig`] for `unit_size == 0` or a meta
    /// mismatch.
    pub fn create<P: AsRef<Path>>(
        dir: P,
        campaign_fingerprint: u64,
        total: usize,
        unit_size: usize,
    ) -> Result<Self, ComfaseError> {
        let dir = dir.as_ref().to_path_buf();
        let units = plan_units(total, unit_size)?;
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, &e))?;
        let meta = LedgerMeta {
            campaign_fingerprint,
            total,
            unit_size,
        };
        let ledger = ClaimLedger {
            dir,
            meta,
            units,
            tmp_seq: AtomicU64::new(0),
        };
        let meta_path = ledger.dir.join("meta.json");
        if !meta_path.exists() {
            // A concurrent first worker may rename its own meta between
            // our check and our rename — harmless, since equal
            // parameters produce equal bytes and unequal ones fail the
            // verify below.
            ledger.write_atomically(&meta_path, &meta.to_bytes())?;
        }
        let bytes = fs::read(&meta_path).map_err(|e| io_err(&meta_path, &e))?;
        let found = LedgerMeta::parse(&bytes).ok_or_else(|| {
            ComfaseError::Io(format!(
                "ledger meta at {} is unreadable",
                meta_path.display()
            ))
        })?;
        if found != meta {
            return Err(ComfaseError::InvalidConfig(format!(
                "claim ledger at {} belongs to a different campaign or geometry \
                 (ledger: fingerprint {:016x}, {} experiments, unit size {}; \
                 this worker: fingerprint {:016x}, {} experiments, unit size {})",
                ledger.dir.display(),
                found.campaign_fingerprint,
                found.total,
                found.unit_size,
                meta.campaign_fingerprint,
                meta.total,
                meta.unit_size,
            )));
        }
        Ok(ledger)
    }

    /// The ledger's identity record.
    pub fn meta(&self) -> &LedgerMeta {
        &self.meta
    }

    /// The ledger directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The unit table every worker of this ledger shares.
    pub fn units(&self) -> &[WorkUnit] {
        &self.units
    }

    fn lease_path(&self, id: usize) -> PathBuf {
        self.dir.join(format!("unit-{id}.lease"))
    }

    fn done_path(&self, id: usize) -> PathBuf {
        self.dir.join(format!("unit-{id}.done"))
    }

    /// `true` when unit `id` carries a done marker.
    pub fn is_done(&self, id: usize) -> bool {
        self.done_path(id).exists()
    }

    /// Number of units carrying done markers.
    pub fn done_count(&self) -> usize {
        self.units.iter().filter(|u| self.is_done(u.id)).count()
    }

    /// `true` when every unit carries a done marker.
    pub fn all_done(&self) -> bool {
        self.done_count() == self.units.len()
    }

    /// Reads unit `id`'s lease slot.
    ///
    /// # Errors
    ///
    /// [`ComfaseError::Io`] only for read failures other than
    /// not-found; an unparseable or foreign lease is [`LeaseView::Corrupt`],
    /// not an error — it is claimable by overwrite.
    pub fn lease_view(&self, id: usize) -> Result<LeaseView, ComfaseError> {
        let path = self.lease_path(id);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LeaseView::Free),
            Err(e) => return Err(io_err(&path, &e)),
        };
        match Lease::parse(&bytes) {
            Some(lease)
                if lease.campaign_fingerprint == self.meta.campaign_fingerprint
                    && lease.unit.id == id =>
            {
                Ok(LeaseView::Held(lease))
            }
            _ => Ok(LeaseView::Corrupt),
        }
    }

    /// Publishes a lease on `unit` for `worker_id` at `heartbeat_seq`
    /// via temp+rename, then reads it back: returns `true` when the
    /// read-back still names `worker_id` (the publication won any
    /// concurrent race), `false` when another worker's rename landed
    /// after ours.
    fn publish(
        &self,
        unit: &WorkUnit,
        worker_id: &str,
        heartbeat_seq: u64,
    ) -> Result<bool, ComfaseError> {
        let lease = Lease {
            unit: *unit,
            worker_id: worker_id.to_string(),
            campaign_fingerprint: self.meta.campaign_fingerprint,
            heartbeat_seq,
        };
        self.write_atomically(&self.lease_path(unit.id), &lease.to_bytes())?;
        match self.lease_view(unit.id)? {
            LeaseView::Held(found) => Ok(found.worker_id == worker_id),
            // Deleted or clobbered between our rename and the read-back.
            LeaseView::Free | LeaseView::Corrupt => Ok(false),
        }
    }

    /// Attempts to claim a free (or corrupt-leased) `unit` for
    /// `worker_id`. Returns `false` when the unit is already validly
    /// leased, already done, or when a concurrent claimant won the race.
    ///
    /// # Errors
    ///
    /// [`ComfaseError::Io`] on filesystem failures.
    pub fn try_acquire(&self, unit: &WorkUnit, worker_id: &str) -> Result<bool, ComfaseError> {
        if self.is_done(unit.id) {
            return Ok(false);
        }
        match self.lease_view(unit.id)? {
            LeaseView::Free | LeaseView::Corrupt => self.publish(unit, worker_id, 0),
            LeaseView::Held(_) => Ok(false),
        }
    }

    /// Steals `unit` for `worker_id`, overwriting whatever lease is
    /// there. The caller decided the lease is stale (stalled heartbeat);
    /// returns `false` when a concurrent steal won or the unit turned
    /// out done.
    ///
    /// # Errors
    ///
    /// [`ComfaseError::Io`] on filesystem failures.
    pub fn steal(&self, unit: &WorkUnit, worker_id: &str) -> Result<bool, ComfaseError> {
        if self.is_done(unit.id) {
            return Ok(false);
        }
        self.publish(unit, worker_id, 0)
    }

    /// Renews `worker_id`'s lease on `unit` by bumping the monotonic
    /// heartbeat counter. [`LeaseState::Lost`] when the lease is gone,
    /// corrupt, or names another worker — the caller abandons the unit.
    ///
    /// # Errors
    ///
    /// [`ComfaseError::Io`] on filesystem failures (the campaign runner
    /// treats an error like [`LeaseState::Lost`]).
    pub fn renew(&self, unit: &WorkUnit, worker_id: &str) -> Result<LeaseState, ComfaseError> {
        let seq = match self.lease_view(unit.id)? {
            LeaseView::Held(lease) if lease.worker_id == worker_id => lease.heartbeat_seq,
            _ => return Ok(LeaseState::Lost),
        };
        match self.publish(unit, worker_id, seq + 1)? {
            true => Ok(LeaseState::Held),
            false => Ok(LeaseState::Lost),
        }
    }

    /// Marks `unit` done for `worker_id` and removes the worker's own
    /// lease file (best-effort — the done marker alone retires the
    /// unit).
    ///
    /// # Errors
    ///
    /// [`ComfaseError::Io`] when the marker cannot be written.
    pub fn mark_done(&self, unit: &WorkUnit, worker_id: &str) -> Result<(), ComfaseError> {
        let done = Done {
            unit: *unit,
            worker_id: worker_id.to_string(),
        };
        self.write_atomically(&self.done_path(unit.id), &done.to_bytes())?;
        let _ = fs::remove_file(self.lease_path(unit.id));
        Ok(())
    }

    /// Writes `bytes` to a unique temp file in the ledger directory,
    /// fsyncs, and renames over `dest`.
    fn write_atomically(&self, dest: &Path, bytes: &[u8]) -> Result<(), ComfaseError> {
        use std::io::Write;
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            let mut file = fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&tmp)
                .map_err(|e| io_err(&tmp, &e))?;
            file.write_all(bytes).map_err(|e| io_err(&tmp, &e))?;
            file.sync_data().map_err(|e| io_err(&tmp, &e))?;
            drop(file);
            fs::rename(&tmp, dest).map_err(|e| io_err(dest, &e))
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }
}

/// Default unit size for a campaign of `total` experiments: about 32
/// units, each at least 1 and at most 512 indices. Small units bound
/// the work lost to a crash (one unit re-executed); the cap bounds
/// ledger-scan overhead on huge campaigns.
pub fn default_unit_size(total: usize) -> usize {
    total.div_ceil(32).clamp(1, 512)
}

fn io_err(path: &Path, e: &std::io::Error) -> ComfaseError {
    ComfaseError::Io(format!("claim ledger {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("comfase-claim-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    const FP: u64 = 0xc1a1_0000_0000_0042;

    #[test]
    fn meta_is_written_once_and_verified() {
        let dir = tmp_dir("meta");
        let a = ClaimLedger::create(&dir, FP, 8, 2).unwrap();
        assert_eq!(a.units().len(), 4);
        // Same parameters: opens fine.
        let b = ClaimLedger::create(&dir, FP, 8, 2).unwrap();
        assert_eq!(b.meta(), a.meta());
        // Foreign fingerprint or different geometry: refused.
        for (fp, total, unit) in [(FP ^ 1, 8, 2), (FP, 9, 2), (FP, 8, 3)] {
            let err = ClaimLedger::create(&dir, fp, total, unit).unwrap_err();
            assert!(matches!(err, ComfaseError::InvalidConfig(_)), "{err:?}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn acquire_renew_done_lifecycle() {
        let dir = tmp_dir("lifecycle");
        let ledger = ClaimLedger::create(&dir, FP, 8, 4).unwrap();
        let unit = ledger.units()[0];
        assert!(ledger.try_acquire(&unit, "alice").unwrap());
        // Already leased: a second claimant loses.
        assert!(!ledger.try_acquire(&unit, "bob").unwrap());
        // The owner renews; the heartbeat counter climbs monotonically.
        assert_eq!(ledger.renew(&unit, "alice").unwrap(), LeaseState::Held);
        assert_eq!(ledger.renew(&unit, "alice").unwrap(), LeaseState::Held);
        match ledger.lease_view(unit.id).unwrap() {
            LeaseView::Held(lease) => {
                assert_eq!(lease.worker_id, "alice");
                assert_eq!(lease.heartbeat_seq, 2);
            }
            other => panic!("expected a held lease, got {other:?}"),
        }
        // A non-owner cannot renew.
        assert_eq!(ledger.renew(&unit, "bob").unwrap(), LeaseState::Lost);
        // Done retires the unit and clears the lease file.
        ledger.mark_done(&unit, "alice").unwrap();
        assert!(ledger.is_done(unit.id));
        assert_eq!(ledger.lease_view(unit.id).unwrap(), LeaseView::Free);
        assert!(!ledger.try_acquire(&unit, "bob").unwrap());
        assert!(!ledger.steal(&unit, "bob").unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn steal_deposes_the_owner() {
        let dir = tmp_dir("steal");
        let ledger = ClaimLedger::create(&dir, FP, 8, 4).unwrap();
        let unit = ledger.units()[1];
        assert!(ledger.try_acquire(&unit, "victim").unwrap());
        assert!(ledger.steal(&unit, "thief").unwrap());
        // The deposed owner's next renewal observes the loss.
        assert_eq!(ledger.renew(&unit, "victim").unwrap(), LeaseState::Lost);
        assert_eq!(ledger.renew(&unit, "thief").unwrap(), LeaseState::Held);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_lease_is_claimable() {
        let dir = tmp_dir("corrupt");
        let ledger = ClaimLedger::create(&dir, FP, 8, 4).unwrap();
        let unit = ledger.units()[0];
        fs::write(ledger.lease_path(unit.id), b"{not json").unwrap();
        assert_eq!(ledger.lease_view(unit.id).unwrap(), LeaseView::Corrupt);
        assert!(ledger.try_acquire(&unit, "alice").unwrap());
        // A lease echoing a foreign fingerprint is corrupt, too.
        let foreign = Lease {
            unit,
            worker_id: "mallory".into(),
            campaign_fingerprint: FP ^ 1,
            heartbeat_seq: 0,
        };
        fs::write(ledger.lease_path(unit.id), foreign.to_bytes()).unwrap();
        assert_eq!(ledger.lease_view(unit.id).unwrap(), LeaseView::Corrupt);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lease_codec_round_trips_and_rejects_noncanonical_input() {
        let lease = Lease {
            unit: WorkUnit {
                id: 3,
                lo: 9,
                hi: 12,
            },
            worker_id: "w\"eird\\id\n\u{1}".into(),
            campaign_fingerprint: u64::MAX,
            heartbeat_seq: 7,
        };
        assert_eq!(Lease::parse(&lease.to_bytes()), Some(lease.clone()));
        let canonical = lease.to_bytes();
        // Any prefix truncation of the payload (a torn write) must fail
        // to parse; only the cosmetic trailing newline is optional.
        assert_eq!(canonical.last(), Some(&b'\n'));
        for cut in 0..canonical.len() - 1 {
            assert_eq!(Lease::parse(&canonical[..cut]), None, "cut at {cut}");
        }
        // Trailing garbage, reordered fields, whitespace: all corrupt.
        let mut padded = canonical.clone();
        padded.extend_from_slice(b" ");
        assert_eq!(Lease::parse(&padded), None);
        assert_eq!(Lease::parse(b"{\"worker_id\":\"a\",\"unit\":{\"id\":0,\"lo\":0,\"hi\":1},\"campaign_fingerprint\":1,\"heartbeat_seq\":0}"), None);
        let meta = LedgerMeta {
            campaign_fingerprint: 0,
            total: 11_250,
            unit_size: 352,
        };
        assert_eq!(LedgerMeta::parse(&meta.to_bytes()), Some(meta));
    }

    #[test]
    fn default_unit_size_is_bounded() {
        assert_eq!(default_unit_size(0), 1);
        assert_eq!(default_unit_size(1), 1);
        assert_eq!(default_unit_size(8), 1);
        assert_eq!(default_unit_size(150), 5);
        assert_eq!(default_unit_size(11_250), 352);
        assert_eq!(default_unit_size(1_000_000), 512);
    }
}
