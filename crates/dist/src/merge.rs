//! Reassembling shard journals into one campaign artifact.
//!
//! Each shard process checkpoints its slice of the campaign into a
//! standard journal (`comfase::journal`, schema v2): a header carrying
//! the campaign identity (seed, total, setup, canonical configuration
//! fingerprint, shard range), the golden metrics row, and one line per
//! finished experiment. The merger folds those journals back into the
//! [`CampaignMetrics`] a single-process run would have produced.
//!
//! **Why merge order cannot affect the bytes:** every journal line is
//! keyed by its experiment index, the golden row is identical in every
//! shard (same configuration, and the workspace's determinism invariant
//! makes the golden run reproducible), and
//! [`CampaignMetrics::build`] sorts rows by index before serializing.
//! The merger's only degrees of freedom are *checks* — identity,
//! coverage, agreement — not ordering, so any permutation of input
//! journals yields the same artifact or the same error.
//!
//! The checks are strict by design. Refused with a clear
//! [`ComfaseError`]: journals from different campaigns (any identity
//! field disagrees), a shard journal straying outside its declared
//! bounds, two journals disagreeing about one experiment, incomplete
//! coverage of `0..total`, unresolved failures, and journals written
//! without telemetry (there are no rows to merge).

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use serde::Serialize;

use comfase_obs::{CampaignMetrics, ExperimentMetrics};

use comfase::journal::{read_journal, JournalHeader, JournalState, JOURNAL_SCHEMA_VERSION};
use comfase::prelude::{ComfaseError, ExperimentRecord};

/// A half-open run `[lo, hi)` of experiment indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct IndexRange {
    /// First missing index of the run.
    pub lo: usize,
    /// One past the last missing index of the run.
    pub hi: usize,
}

impl fmt::Display for IndexRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hi == self.lo + 1 {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "{}-{}", self.lo, self.hi - 1)
        }
    }
}

/// The exact coverage shortfall of a refused merge: which contiguous
/// index runs no journal completed. Serializes directly for
/// `repro --merge --format json`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CoverageGap {
    /// Experiments the campaign declares.
    pub total: usize,
    /// Experiments the merged journals completed.
    pub covered: usize,
    /// Every missing run, ascending, exact — never truncated.
    pub missing: Vec<IndexRange>,
}

impl CoverageGap {
    /// Number of missing experiments across all runs.
    pub fn missing_count(&self) -> usize {
        self.missing.iter().map(|r| r.hi - r.lo).sum()
    }
}

impl fmt::Display for CoverageGap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let runs: Vec<String> = self.missing.iter().map(|r| r.to_string()).collect();
        write!(
            f,
            "merged journals cover {}/{} experiments; missing indices {}",
            self.covered,
            self.total,
            runs.join(", ")
        )
    }
}

/// Compresses a sorted, deduplicated index iterator into contiguous
/// half-open runs.
pub fn index_ranges(sorted: impl IntoIterator<Item = usize>) -> Vec<IndexRange> {
    let mut runs: Vec<IndexRange> = Vec::new();
    for index in sorted {
        match runs.last_mut() {
            Some(run) if run.hi == index => run.hi = index + 1,
            _ => runs.push(IndexRange {
                lo: index,
                hi: index + 1,
            }),
        }
    }
    runs
}

/// A refused merge: the error, plus the structured coverage shortfall
/// when the refusal was a coverage gap (machine-readable for
/// `--format json`; `None` for every other refusal kind).
#[derive(Debug, Clone, PartialEq)]
pub struct MergeFailure {
    /// The refusal, message included.
    pub error: ComfaseError,
    /// Exact missing ranges, for coverage-gap refusals only.
    pub gap: Option<CoverageGap>,
}

impl fmt::Display for MergeFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.error.fmt(f)
    }
}

impl std::error::Error for MergeFailure {}

impl From<ComfaseError> for MergeFailure {
    fn from(error: ComfaseError) -> Self {
        MergeFailure { error, gap: None }
    }
}

/// Reads and merges shard journals into the campaign's metrics artifact.
///
/// # Errors
///
/// [`ComfaseError::Io`] for unreadable or malformed journals;
/// [`ComfaseError::InvalidConfig`] when the journals are well-formed but
/// do not assemble into one complete campaign (see the module docs for
/// the full list of refusals).
pub fn merge_journals<P: AsRef<Path>>(paths: &[P]) -> Result<CampaignMetrics, ComfaseError> {
    merge_journals_detailed(paths).map_err(|f| f.error)
}

/// As [`merge_journals`], but a coverage-gap refusal carries the exact
/// missing ranges as data ([`MergeFailure::gap`]).
///
/// # Errors
///
/// As for [`merge_journals`].
pub fn merge_journals_detailed<P: AsRef<Path>>(
    paths: &[P],
) -> Result<CampaignMetrics, MergeFailure> {
    let states = paths
        .iter()
        .map(|p| read_journal(p.as_ref()))
        .collect::<Result<Vec<_>, _>>()?;
    merge_states_detailed(&states)
}

/// Merges already-parsed journal states. Separated from
/// [`merge_journals`] so the merge logic is testable without touching
/// the filesystem.
///
/// # Errors
///
/// As for [`merge_journals`].
pub fn merge_states(states: &[JournalState]) -> Result<CampaignMetrics, ComfaseError> {
    merge_states_detailed(states).map_err(|f| f.error)
}

/// As [`merge_states`], with the structured coverage gap on refusal.
///
/// # Errors
///
/// As for [`merge_journals`].
pub fn merge_states_detailed(states: &[JournalState]) -> Result<CampaignMetrics, MergeFailure> {
    if states.is_empty() {
        return Err(
            ComfaseError::InvalidConfig("merge requires at least one journal".into()).into(),
        );
    }

    // Identity: every journal must declare the same campaign.
    let headers: Vec<&JournalHeader> = states
        .iter()
        .enumerate()
        .map(|(n, s)| {
            s.header.as_ref().ok_or_else(|| {
                ComfaseError::Io(format!(
                    "journal #{n} has no header line; refusing to merge"
                ))
            })
        })
        .collect::<Result<_, _>>()?;
    let first = headers[0];
    for (n, header) in headers.iter().enumerate() {
        if header.schema_version != JOURNAL_SCHEMA_VERSION {
            return Err(ComfaseError::Io(format!(
                "journal #{n}: schema version {} != supported {JOURNAL_SCHEMA_VERSION}",
                header.schema_version
            ))
            .into());
        }
        if header.seed != first.seed
            || header.total != first.total
            || header.fingerprint != first.fingerprint
            || header.setup != first.setup
        {
            return Err(ComfaseError::InvalidConfig(format!(
                "journal #{n} belongs to a different campaign than journal #0 \
                 (seed {} vs {}, {} vs {} experiments, fingerprint {:016x} vs {:016x})",
                header.seed,
                first.seed,
                header.total,
                first.total,
                header.fingerprint,
                first.fingerprint
            ))
            .into());
        }
    }
    let total = first.total;

    // Fold completions, checking shard bounds and cross-journal
    // agreement; collect every journal's failures for the global
    // resolution check below.
    let mut merged: BTreeMap<usize, (ExperimentRecord, Option<ExperimentMetrics>)> =
        BTreeMap::new();
    let mut golden: Option<ExperimentMetrics> = None;
    let mut failures: BTreeMap<usize, (usize, &'static str)> = BTreeMap::new();
    for (n, (state, header)) in states.iter().zip(&headers).enumerate() {
        let bounds = header.shard.map(|s| s.bounds(total));
        for (&index, entry) in &state.completed {
            if index >= total {
                return Err(ComfaseError::InvalidConfig(format!(
                    "journal #{n}: experiment {index} out of range for {total} experiments"
                ))
                .into());
            }
            if let Some((lo, hi)) = bounds {
                if index < lo || index >= hi {
                    return Err(ComfaseError::InvalidConfig(format!(
                        "journal #{n}: experiment {index} outside its declared \
                         shard range [{lo}, {hi})"
                    ))
                    .into());
                }
            }
            match merged.get(&index) {
                Some(existing) if existing != entry => {
                    return Err(ComfaseError::InvalidConfig(format!(
                        "journal #{n}: experiment {index} disagrees with an \
                         earlier journal's record for the same index"
                    ))
                    .into());
                }
                Some(_) => {}
                None => {
                    merged.insert(index, entry.clone());
                }
            }
        }
        if let Some(row) = &state.golden {
            match &golden {
                Some(existing) if existing != row => {
                    return Err(ComfaseError::InvalidConfig(format!(
                        "journal #{n}: golden metrics row disagrees with an \
                         earlier journal's — the shards did not run the same \
                         configuration"
                    ))
                    .into());
                }
                _ => golden = Some(row.clone()),
            }
        }
        for (&index, failure) in &state.failures {
            failures.entry(index).or_insert((n, failure.kind.name()));
        }
    }

    // Failure resolution is **global**: a failure blocks the merge only
    // when *no* journal completed the index. Under work stealing a
    // killed worker legitimately journals a failure that the stealing
    // survivor resolves in *its own* journal, so a per-journal check
    // would refuse exactly the recoveries the claim protocol exists to
    // produce.
    if let Some((&index, &(n, kind))) = failures.iter().find(|(i, _)| !merged.contains_key(i)) {
        return Err(ComfaseError::InvalidConfig(format!(
            "experiment {index} failed ({kind}, journal #{n}) and no journal \
             re-ran it to completion; resume a worker before merging"
        ))
        .into());
    }

    // Coverage: the union of the journals must be the whole campaign.
    // A shortfall is reported as exact contiguous ranges — on an 11 250
    // experiment campaign "missing indices 3750-5624" names the dead
    // shard outright.
    if merged.len() != total {
        let gap = CoverageGap {
            total,
            covered: merged.len(),
            missing: index_ranges((0..total).filter(|i| !merged.contains_key(i))),
        };
        return Err(MergeFailure {
            error: ComfaseError::InvalidConfig(gap.to_string()),
            gap: Some(gap),
        });
    }

    let golden = golden.ok_or_else(|| {
        ComfaseError::InvalidConfig(
            "no journal carries a golden metrics row; the shards ran without \
             telemetry, so there is no metrics artifact to merge"
                .into(),
        )
    })?;
    let rows = merged
        .into_iter()
        .map(|(index, (_, row))| {
            row.ok_or_else(|| {
                ComfaseError::InvalidConfig(format!(
                    "experiment {index} has no metrics row; its shard ran \
                     without telemetry"
                ))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CampaignMetrics::build(rows, Some(golden)))
}

// The tests below build `JournalState` values directly (no files, no
// JSON): the merge logic is pure, and the end-to-end path through real
// shard journals is covered by `tests/tests/dist.rs`.
#[cfg(test)]
mod tests {
    use super::*;
    use comfase::prelude::{
        AttackCampaignSetup, AttackModelKind, AttackSpec, Classification, ShardRange, Verdict,
    };
    use comfase_des::time::SimTime;

    const FP: u64 = 0x5eed_f00d_0000_0001;

    fn setup() -> AttackCampaignSetup {
        AttackCampaignSetup {
            attack_model: AttackModelKind::Delay,
            target_vehicles: vec![2],
            attack_values: vec![1.0, 2.0],
            attack_starts_s: vec![17.0],
            attack_durations_s: vec![5.0, 10.0],
        }
    }

    fn record(index: usize) -> (ExperimentRecord, Option<ExperimentMetrics>) {
        let spec = AttackSpec {
            model: AttackModelKind::Delay,
            value: 1.0 + index as f64,
            targets: vec![2].into(),
            start: SimTime::from_secs(17),
            end: SimTime::from_secs(22),
        };
        let verdict = Verdict {
            class: Classification::Negligible,
            max_decel_mps2: 1.0 + index as f64 / 10.0,
            max_speed_deviation_mps: 0.1,
            first_collision: None,
            nr_collisions: 0,
        };
        let row = ExperimentMetrics {
            index,
            classification: "Negligible".to_string(),
            max_decel_mps2: 1.0 + index as f64 / 10.0,
            ..ExperimentMetrics::default()
        };
        (
            ExperimentRecord {
                index,
                spec,
                verdict,
            },
            Some(row),
        )
    }

    fn golden_row() -> ExperimentMetrics {
        ExperimentMetrics {
            index: 0,
            classification: "Golden".to_string(),
            max_decel_mps2: 0.9,
            ..ExperimentMetrics::default()
        }
    }

    /// A journal state covering `indices` of a `total`-experiment
    /// campaign, declared as `shard`.
    fn state(total: usize, shard: Option<ShardRange>, indices: &[usize]) -> JournalState {
        JournalState {
            header: Some(JournalHeader {
                schema_version: JOURNAL_SCHEMA_VERSION,
                seed: 42,
                total,
                fingerprint: FP,
                shard,
                setup: setup(),
            }),
            golden: Some(golden_row()),
            completed: indices.iter().map(|&i| (i, record(i))).collect(),
            failures: BTreeMap::new(),
        }
    }

    fn is_invalid(err: ComfaseError) -> bool {
        matches!(err, ComfaseError::InvalidConfig(_))
    }

    #[test]
    fn merging_shards_equals_the_unsharded_state() {
        let total = 5;
        let whole = state(total, None, &[0, 1, 2, 3, 4]);
        let reference = merge_states(std::slice::from_ref(&whole)).unwrap();
        let a = state(total, Some(ShardRange { index: 0, of: 2 }), &[0, 1]);
        let b = state(total, Some(ShardRange { index: 1, of: 2 }), &[2, 3, 4]);
        // Both input orders produce the identical artifact.
        let ab = merge_states(&[a.clone(), b.clone()]).unwrap();
        let ba = merge_states(&[b, a]).unwrap();
        assert_eq!(reference, ab);
        assert_eq!(ab, ba);
    }

    #[test]
    fn identity_mismatches_are_rejected() {
        let total = 2;
        let a = state(total, Some(ShardRange { index: 0, of: 2 }), &[0]);
        let mut b = state(total, Some(ShardRange { index: 1, of: 2 }), &[1]);
        b.header.as_mut().unwrap().fingerprint ^= 1;
        assert!(is_invalid(merge_states(&[a.clone(), b]).unwrap_err()));
        let mut c = state(total, Some(ShardRange { index: 1, of: 2 }), &[1]);
        c.header.as_mut().unwrap().seed ^= 1;
        assert!(is_invalid(merge_states(&[a, c]).unwrap_err()));
    }

    #[test]
    fn incomplete_coverage_is_rejected_with_the_exact_missing_ranges() {
        let total = 4;
        let a = state(total, Some(ShardRange { index: 0, of: 2 }), &[0, 1]);
        let err = merge_states(&[a.clone()]).unwrap_err();
        let msg = err.to_string();
        assert!(is_invalid(err));
        assert!(msg.contains("2-3"), "unexpected message: {msg}");
        // The detailed API carries the gap as data.
        let failure = merge_states_detailed(&[a]).unwrap_err();
        let gap = failure.gap.expect("a coverage gap carries structure");
        assert_eq!(gap.total, 4);
        assert_eq!(gap.covered, 2);
        assert_eq!(gap.missing, vec![IndexRange { lo: 2, hi: 4 }]);
        assert_eq!(gap.missing_count(), 2);
    }

    #[test]
    fn coverage_gap_reports_every_disjoint_run_exactly() {
        let total = 12;
        // Covered: 0, 2-3, 7, 11 → missing runs 1, 4-6, 8-10.
        let a = state(total, None, &[0, 2, 3, 7, 11]);
        let failure = merge_states_detailed(&[a]).unwrap_err();
        let gap = failure.gap.unwrap();
        assert_eq!(
            gap.missing,
            vec![
                IndexRange { lo: 1, hi: 2 },
                IndexRange { lo: 4, hi: 7 },
                IndexRange { lo: 8, hi: 11 },
            ]
        );
        assert_eq!(gap.missing_count(), 7);
        assert_eq!(
            gap.to_string(),
            "merged journals cover 5/12 experiments; missing indices 1, 4-6, 8-10"
        );
        // Non-gap refusals carry no structure.
        let plain = merge_states_detailed(&[]).unwrap_err();
        assert!(plain.gap.is_none());
    }

    #[test]
    fn coverage_gap_serializes_half_open_ranges() {
        // Machine-readable (`--format json`): the gap serializes with
        // half-open ranges. Split from the structural test above because
        // it needs a functional serde_json runtime.
        let a = state(12, None, &[0, 2, 3, 7, 11]);
        let gap = merge_states_detailed(&[a]).unwrap_err().gap.unwrap();
        let json = serde_json::to_string(&gap).unwrap();
        assert!(json.contains("\"missing\":[{\"lo\":1,\"hi\":2}"), "{json}");
    }

    #[test]
    fn index_ranges_compresses_runs() {
        assert!(index_ranges([]).is_empty());
        assert_eq!(
            index_ranges([5]),
            vec![IndexRange { lo: 5, hi: 6 }],
            "a singleton is a width-1 run"
        );
        assert_eq!(
            index_ranges([0, 1, 2, 9, 10, 12]),
            vec![
                IndexRange { lo: 0, hi: 3 },
                IndexRange { lo: 9, hi: 11 },
                IndexRange { lo: 12, hi: 13 },
            ]
        );
    }

    #[test]
    fn out_of_shard_completions_are_rejected() {
        let total = 4;
        // Shard 0/2 of 4 covers [0, 2); index 3 is foreign.
        let a = state(total, Some(ShardRange { index: 0, of: 2 }), &[0, 1, 3]);
        let b = state(total, Some(ShardRange { index: 1, of: 2 }), &[2, 3]);
        assert!(is_invalid(merge_states(&[a, b]).unwrap_err()));
    }

    #[test]
    fn conflicting_records_for_one_index_are_rejected() {
        let total = 2;
        let a = state(total, None, &[0, 1]);
        let mut b = state(total, None, &[0, 1]);
        if let Some((record, _)) = b.completed.get_mut(&1) {
            record.verdict.max_decel_mps2 += 1.0;
        }
        assert!(is_invalid(merge_states(&[a, b]).unwrap_err()));
    }

    #[test]
    fn unresolved_failures_block_the_merge() {
        use comfase::prelude::{ExperimentFailure, FailureKind};
        let total = 2;
        let mut a = state(total, None, &[0, 1]);
        a.failures.insert(
            1,
            ExperimentFailure {
                index: 1,
                kind: FailureKind::Panicked,
                payload: "boom".to_string(),
                seed: 42,
                spec: record(1).0.spec,
                attempts: 1,
            },
        );
        // A failure later re-run to completion (index present in
        // `completed`) does not block…
        a.completed.insert(1, record(1));
        assert!(merge_states(std::slice::from_ref(&a)).is_ok());
        // …but an unresolved one does.
        a.completed.remove(&1);
        let err = merge_states(std::slice::from_ref(&a)).unwrap_err();
        assert!(err.to_string().contains("resume"), "got: {err}");
        // Resolution is global: a *different* journal completing the
        // index resolves the failure — the work-stealing recovery shape,
        // where the victim journals the failure and the thief the
        // completion.
        let thief = state(total, None, &[1]);
        assert!(
            merge_states(&[a.clone(), thief.clone()]).is_ok(),
            "a survivor's completion must resolve the victim's failure"
        );
        assert!(merge_states(&[thief, a]).is_ok(), "in either input order");
    }

    #[test]
    fn missing_golden_or_rows_are_rejected() {
        let total = 1;
        let mut a = state(total, None, &[0]);
        a.golden = None;
        assert!(is_invalid(
            merge_states(std::slice::from_ref(&a)).unwrap_err()
        ));
        let mut b = state(total, None, &[0]);
        if let Some((_, row)) = b.completed.get_mut(&0) {
            *row = None;
        }
        assert!(is_invalid(
            merge_states(std::slice::from_ref(&b)).unwrap_err()
        ));
    }
}
