//! Reassembling shard journals into one campaign artifact.
//!
//! Each shard process checkpoints its slice of the campaign into a
//! standard journal (`comfase::journal`, schema v2): a header carrying
//! the campaign identity (seed, total, setup, canonical configuration
//! fingerprint, shard range), the golden metrics row, and one line per
//! finished experiment. The merger folds those journals back into the
//! [`CampaignMetrics`] a single-process run would have produced.
//!
//! **Why merge order cannot affect the bytes:** every journal line is
//! keyed by its experiment index, the golden row is identical in every
//! shard (same configuration, and the workspace's determinism invariant
//! makes the golden run reproducible), and
//! [`CampaignMetrics::build`] sorts rows by index before serializing.
//! The merger's only degrees of freedom are *checks* — identity,
//! coverage, agreement — not ordering, so any permutation of input
//! journals yields the same artifact or the same error.
//!
//! The checks are strict by design. Refused with a clear
//! [`ComfaseError`]: journals from different campaigns (any identity
//! field disagrees), a shard journal straying outside its declared
//! bounds, two journals disagreeing about one experiment, incomplete
//! coverage of `0..total`, unresolved failures, and journals written
//! without telemetry (there are no rows to merge).

use std::collections::BTreeMap;
use std::path::Path;

use comfase_obs::{CampaignMetrics, ExperimentMetrics};

use comfase::journal::{read_journal, JournalHeader, JournalState, JOURNAL_SCHEMA_VERSION};
use comfase::prelude::{ComfaseError, ExperimentRecord};

/// Reads and merges shard journals into the campaign's metrics artifact.
///
/// # Errors
///
/// [`ComfaseError::Io`] for unreadable or malformed journals;
/// [`ComfaseError::InvalidConfig`] when the journals are well-formed but
/// do not assemble into one complete campaign (see the module docs for
/// the full list of refusals).
pub fn merge_journals<P: AsRef<Path>>(paths: &[P]) -> Result<CampaignMetrics, ComfaseError> {
    let states = paths
        .iter()
        .map(|p| read_journal(p.as_ref()))
        .collect::<Result<Vec<_>, _>>()?;
    merge_states(&states)
}

/// Merges already-parsed journal states. Separated from
/// [`merge_journals`] so the merge logic is testable without touching
/// the filesystem.
///
/// # Errors
///
/// As for [`merge_journals`].
pub fn merge_states(states: &[JournalState]) -> Result<CampaignMetrics, ComfaseError> {
    if states.is_empty() {
        return Err(ComfaseError::InvalidConfig(
            "merge requires at least one journal".into(),
        ));
    }

    // Identity: every journal must declare the same campaign.
    let headers: Vec<&JournalHeader> = states
        .iter()
        .enumerate()
        .map(|(n, s)| {
            s.header.as_ref().ok_or_else(|| {
                ComfaseError::Io(format!(
                    "journal #{n} has no header line; refusing to merge"
                ))
            })
        })
        .collect::<Result<_, _>>()?;
    let first = headers[0];
    for (n, header) in headers.iter().enumerate() {
        if header.schema_version != JOURNAL_SCHEMA_VERSION {
            return Err(ComfaseError::Io(format!(
                "journal #{n}: schema version {} != supported {JOURNAL_SCHEMA_VERSION}",
                header.schema_version
            )));
        }
        if header.seed != first.seed
            || header.total != first.total
            || header.fingerprint != first.fingerprint
            || header.setup != first.setup
        {
            return Err(ComfaseError::InvalidConfig(format!(
                "journal #{n} belongs to a different campaign than journal #0 \
                 (seed {} vs {}, {} vs {} experiments, fingerprint {:016x} vs {:016x})",
                header.seed,
                first.seed,
                header.total,
                first.total,
                header.fingerprint,
                first.fingerprint
            )));
        }
    }
    let total = first.total;

    // Fold completions, checking shard bounds and cross-journal
    // agreement; record which indices still carry unresolved failures.
    let mut merged: BTreeMap<usize, (ExperimentRecord, Option<ExperimentMetrics>)> =
        BTreeMap::new();
    let mut golden: Option<ExperimentMetrics> = None;
    for (n, (state, header)) in states.iter().zip(&headers).enumerate() {
        let bounds = header.shard.map(|s| s.bounds(total));
        for (&index, entry) in &state.completed {
            if index >= total {
                return Err(ComfaseError::InvalidConfig(format!(
                    "journal #{n}: experiment {index} out of range for {total} experiments"
                )));
            }
            if let Some((lo, hi)) = bounds {
                if index < lo || index >= hi {
                    return Err(ComfaseError::InvalidConfig(format!(
                        "journal #{n}: experiment {index} outside its declared \
                         shard range [{lo}, {hi})"
                    )));
                }
            }
            match merged.get(&index) {
                Some(existing) if existing != entry => {
                    return Err(ComfaseError::InvalidConfig(format!(
                        "journal #{n}: experiment {index} disagrees with an \
                         earlier journal's record for the same index"
                    )));
                }
                Some(_) => {}
                None => {
                    merged.insert(index, entry.clone());
                }
            }
        }
        if let Some(row) = &state.golden {
            match &golden {
                Some(existing) if existing != row => {
                    return Err(ComfaseError::InvalidConfig(format!(
                        "journal #{n}: golden metrics row disagrees with an \
                         earlier journal's — the shards did not run the same \
                         configuration"
                    )));
                }
                _ => golden = Some(row.clone()),
            }
        }
        if let Some((&index, failure)) = state
            .failures
            .iter()
            .find(|(i, _)| !state.completed.contains_key(i))
        {
            return Err(ComfaseError::InvalidConfig(format!(
                "journal #{n}: experiment {index} failed ({}) and was never \
                 re-run to completion; resume that shard before merging",
                failure.kind.name()
            )));
        }
    }

    // Coverage: the union of the journals must be the whole campaign.
    let missing: Vec<usize> = (0..total).filter(|i| !merged.contains_key(i)).collect();
    if !missing.is_empty() {
        let shown: Vec<String> = missing.iter().take(8).map(|i| i.to_string()).collect();
        return Err(ComfaseError::InvalidConfig(format!(
            "merged journals cover {}/{total} experiments; missing {}{}",
            merged.len(),
            shown.join(", "),
            if missing.len() > shown.len() {
                format!(" and {} more", missing.len() - shown.len())
            } else {
                String::new()
            }
        )));
    }

    let golden = golden.ok_or_else(|| {
        ComfaseError::InvalidConfig(
            "no journal carries a golden metrics row; the shards ran without \
             telemetry, so there is no metrics artifact to merge"
                .into(),
        )
    })?;
    let rows = merged
        .into_iter()
        .map(|(index, (_, row))| {
            row.ok_or_else(|| {
                ComfaseError::InvalidConfig(format!(
                    "experiment {index} has no metrics row; its shard ran \
                     without telemetry"
                ))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CampaignMetrics::build(rows, Some(golden)))
}

// The tests below build `JournalState` values directly (no files, no
// JSON): the merge logic is pure, and the end-to-end path through real
// shard journals is covered by `tests/tests/dist.rs`.
#[cfg(test)]
mod tests {
    use super::*;
    use comfase::prelude::{
        AttackCampaignSetup, AttackModelKind, AttackSpec, Classification, ShardRange, Verdict,
    };
    use comfase_des::time::SimTime;

    const FP: u64 = 0x5eed_f00d_0000_0001;

    fn setup() -> AttackCampaignSetup {
        AttackCampaignSetup {
            attack_model: AttackModelKind::Delay,
            target_vehicles: vec![2],
            attack_values: vec![1.0, 2.0],
            attack_starts_s: vec![17.0],
            attack_durations_s: vec![5.0, 10.0],
        }
    }

    fn record(index: usize) -> (ExperimentRecord, Option<ExperimentMetrics>) {
        let spec = AttackSpec {
            model: AttackModelKind::Delay,
            value: 1.0 + index as f64,
            targets: vec![2].into(),
            start: SimTime::from_secs(17),
            end: SimTime::from_secs(22),
        };
        let verdict = Verdict {
            class: Classification::Negligible,
            max_decel_mps2: 1.0 + index as f64 / 10.0,
            max_speed_deviation_mps: 0.1,
            first_collision: None,
            nr_collisions: 0,
        };
        let row = ExperimentMetrics {
            index,
            classification: "Negligible".to_string(),
            max_decel_mps2: 1.0 + index as f64 / 10.0,
            ..ExperimentMetrics::default()
        };
        (
            ExperimentRecord {
                index,
                spec,
                verdict,
            },
            Some(row),
        )
    }

    fn golden_row() -> ExperimentMetrics {
        ExperimentMetrics {
            index: 0,
            classification: "Golden".to_string(),
            max_decel_mps2: 0.9,
            ..ExperimentMetrics::default()
        }
    }

    /// A journal state covering `indices` of a `total`-experiment
    /// campaign, declared as `shard`.
    fn state(total: usize, shard: Option<ShardRange>, indices: &[usize]) -> JournalState {
        JournalState {
            header: Some(JournalHeader {
                schema_version: JOURNAL_SCHEMA_VERSION,
                seed: 42,
                total,
                fingerprint: FP,
                shard,
                setup: setup(),
            }),
            golden: Some(golden_row()),
            completed: indices.iter().map(|&i| (i, record(i))).collect(),
            failures: BTreeMap::new(),
        }
    }

    fn is_invalid(err: ComfaseError) -> bool {
        matches!(err, ComfaseError::InvalidConfig(_))
    }

    #[test]
    fn merging_shards_equals_the_unsharded_state() {
        let total = 5;
        let whole = state(total, None, &[0, 1, 2, 3, 4]);
        let reference = merge_states(std::slice::from_ref(&whole)).unwrap();
        let a = state(total, Some(ShardRange { index: 0, of: 2 }), &[0, 1]);
        let b = state(total, Some(ShardRange { index: 1, of: 2 }), &[2, 3, 4]);
        // Both input orders produce the identical artifact.
        let ab = merge_states(&[a.clone(), b.clone()]).unwrap();
        let ba = merge_states(&[b, a]).unwrap();
        assert_eq!(reference, ab);
        assert_eq!(ab, ba);
    }

    #[test]
    fn identity_mismatches_are_rejected() {
        let total = 2;
        let a = state(total, Some(ShardRange { index: 0, of: 2 }), &[0]);
        let mut b = state(total, Some(ShardRange { index: 1, of: 2 }), &[1]);
        b.header.as_mut().unwrap().fingerprint ^= 1;
        assert!(is_invalid(merge_states(&[a.clone(), b]).unwrap_err()));
        let mut c = state(total, Some(ShardRange { index: 1, of: 2 }), &[1]);
        c.header.as_mut().unwrap().seed ^= 1;
        assert!(is_invalid(merge_states(&[a, c]).unwrap_err()));
    }

    #[test]
    fn incomplete_coverage_is_rejected_with_the_missing_indices() {
        let total = 4;
        let a = state(total, Some(ShardRange { index: 0, of: 2 }), &[0, 1]);
        let err = merge_states(&[a]).unwrap_err();
        let msg = err.to_string();
        assert!(is_invalid(err));
        assert!(msg.contains("2, 3"), "unexpected message: {msg}");
    }

    #[test]
    fn out_of_shard_completions_are_rejected() {
        let total = 4;
        // Shard 0/2 of 4 covers [0, 2); index 3 is foreign.
        let a = state(total, Some(ShardRange { index: 0, of: 2 }), &[0, 1, 3]);
        let b = state(total, Some(ShardRange { index: 1, of: 2 }), &[2, 3]);
        assert!(is_invalid(merge_states(&[a, b]).unwrap_err()));
    }

    #[test]
    fn conflicting_records_for_one_index_are_rejected() {
        let total = 2;
        let a = state(total, None, &[0, 1]);
        let mut b = state(total, None, &[0, 1]);
        if let Some((record, _)) = b.completed.get_mut(&1) {
            record.verdict.max_decel_mps2 += 1.0;
        }
        assert!(is_invalid(merge_states(&[a, b]).unwrap_err()));
    }

    #[test]
    fn unresolved_failures_block_the_merge() {
        use comfase::prelude::{ExperimentFailure, FailureKind};
        let total = 2;
        let mut a = state(total, None, &[0, 1]);
        a.failures.insert(
            1,
            ExperimentFailure {
                index: 1,
                kind: FailureKind::Panicked,
                payload: "boom".to_string(),
                seed: 42,
                spec: record(1).0.spec,
                attempts: 1,
            },
        );
        // A failure later re-run to completion (index present in
        // `completed`) does not block…
        a.completed.insert(1, record(1));
        assert!(merge_states(std::slice::from_ref(&a)).is_ok());
        // …but an unresolved one does.
        a.completed.remove(&1);
        let err = merge_states(std::slice::from_ref(&a)).unwrap_err();
        assert!(err.to_string().contains("resume"), "got: {err}");
    }

    #[test]
    fn missing_golden_or_rows_are_rejected() {
        let total = 1;
        let mut a = state(total, None, &[0]);
        a.golden = None;
        assert!(is_invalid(
            merge_states(std::slice::from_ref(&a)).unwrap_err()
        ));
        let mut b = state(total, None, &[0]);
        if let Some((_, row)) = b.completed.get_mut(&0) {
            *row = None;
        }
        assert!(is_invalid(
            merge_states(std::slice::from_ref(&b)).unwrap_err()
        ));
    }
}
