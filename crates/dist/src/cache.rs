// comfase-lint: host-region(reason = "content-addressed result cache: durable file I/O at the campaign boundary; entries are keyed by (spec, seed, config) content hashes and echo their key, so a hit can never alter what a simulation would have produced")
//! On-disk content-addressed store of experiment results.
//!
//! Layout: `<root>/<hh>/<spec>-<seed>-<config>.json`, where `<hh>` is
//! the first two hex digits of the spec hash (256-way fan-out keeps
//! directory listings short on big campaigns) and the file stem is
//! [`CacheKey::stem`]. Each file holds one JSON object `{key, entry}`;
//! the echoed key is verified on load, so a renamed or corrupted file
//! degrades to [`CacheLookup::Stale`] — never to a wrong result.
//!
//! Writes are atomic: the entry is serialized to a unique temp file in
//! the final directory, fsync'd, then renamed over the destination.
//! Concurrent writers (campaign worker threads, or whole shard
//! processes sharing one cache directory) therefore never expose a torn
//! entry; the last complete write wins, and equal keys imply equal
//! payloads by construction.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use comfase::cache::{CacheEntry, CacheKey, CacheLookup, ExperimentCache};
use comfase::prelude::ComfaseError;

/// One cache file: the entry plus an echo of its own key, verified on
/// load to catch renamed or cross-copied files.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheFile {
    key: CacheKey,
    entry: CacheEntry,
}

/// Just the key echo of a cache file — what a gc pass needs to verify an
/// entry lives at its own content address without deserializing the
/// payload.
#[derive(Debug, Clone, Copy, Deserialize)]
struct KeyEcho {
    key: CacheKey,
}

/// A content-addressed experiment result cache rooted at a directory.
#[derive(Debug)]
pub struct DiskCache {
    root: PathBuf,
    /// Per-process temp-file sequence; combined with the process id so
    /// concurrent writers (threads or shard processes) never collide on
    /// a temp name.
    seq: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`ComfaseError::Io`] when the root directory cannot be created.
    pub fn create<P: AsRef<Path>>(root: P) -> Result<Self, ComfaseError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root).map_err(|e| io_err(&root, &e))?;
        Ok(DiskCache {
            root,
            seq: AtomicU64::new(0),
        })
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Final path of `key`'s entry.
    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        let stem = key.stem();
        self.root.join(&stem[..2]).join(format!("{stem}.json"))
    }

    /// Garbage-collects the cache down to at most `max_bytes` of valid
    /// entries.
    ///
    /// Eviction order is the lexicographic tuple order of
    /// `(mtime, path, size)`, oldest first: modification time is the
    /// primary key, and the full entry *path* is the explicit tiebreak —
    /// on filesystems with coarse mtime granularity (FAT's 2 s, or any
    /// mount with `noatime`-style second resolution) whole batches of
    /// entries share one mtime, and without the path tiebreak the
    /// eviction order would be whatever the directory walk produced.
    /// Paths are unique, so `size` never actually decides; it rides in
    /// the tuple only so the eviction loop has it at hand. Two gc passes
    /// over the same tree therefore always evict the same entries.
    ///
    /// Orphaned temp files and stale entries — torn JSON, or a key echo
    /// that does not match the file's address — are swept unconditionally
    /// and do not count against the budget; their reclaimed bytes are
    /// reported under [`GcStats::temp_bytes_removed`] /
    /// [`GcStats::stale_bytes_removed`] so `gc_stats.json` accounts for
    /// every byte freed. Every removal is a single atomic `remove_file`;
    /// a concurrent *reader* of an evicted entry degrades to a miss and
    /// re-simulates.
    ///
    /// This is a maintenance operation: run it between campaigns, not
    /// while writers share the cache — an in-flight writer's temp file
    /// would be swept as an orphan.
    ///
    /// # Errors
    ///
    /// [`ComfaseError::Io`] when the cache cannot be listed or a removal
    /// fails (other than the file already being gone).
    pub fn gc(&self, max_bytes: u64) -> Result<GcStats, ComfaseError> {
        let mut stats = GcStats::default();
        // (mtime, path, size) of every valid entry, collected while
        // sweeping temps and stale files.
        let mut entries: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
        for shard_dir in read_dir_sorted(&self.root)? {
            if !shard_dir.is_dir() {
                continue;
            }
            for path in read_dir_sorted(&shard_dir)? {
                let name = path.file_name().unwrap_or_default().to_string_lossy();
                let meta = match fs::symlink_metadata(&path) {
                    Ok(meta) if meta.is_file() => meta,
                    _ => continue,
                };
                if name.starts_with(".tmp-") {
                    remove_entry(&path)?;
                    stats.temps_removed += 1;
                    stats.temp_bytes_removed += meta.len();
                    continue;
                }
                if !name.ends_with(".json") {
                    continue;
                }
                // Validity here is the address check only — the key echo
                // must parse and hash to the file's own path. Payload
                // validation stays `load`'s job; a gc pass must not cost
                // a full deserialize per entry.
                let valid = fs::read(&path)
                    .ok()
                    .and_then(|bytes| serde_json::from_slice::<KeyEcho>(&bytes).ok())
                    .is_some_and(|echo| self.entry_path(&echo.key) == path);
                if !valid {
                    remove_entry(&path)?;
                    stats.stale_removed += 1;
                    stats.stale_bytes_removed += meta.len();
                    continue;
                }
                let mtime = meta.modified().map_err(|e| io_err(&path, &e))?;
                stats.entries_before += 1;
                stats.bytes_before += meta.len();
                entries.push((mtime, path, meta.len()));
            }
        }
        // Deterministic eviction order: lexicographic (mtime, path, size),
        // oldest first, with the unique path breaking mtime ties (see the
        // method docs).
        entries.sort();
        let mut live_bytes = stats.bytes_before;
        for (_, path, size) in &entries {
            if live_bytes <= max_bytes {
                break;
            }
            remove_entry(path)?;
            stats.entries_evicted += 1;
            stats.bytes_evicted += size;
            live_bytes -= size;
        }
        stats.entries_after = stats.entries_before - stats.entries_evicted;
        stats.bytes_after = live_bytes;
        Ok(stats)
    }
}

/// Summary of one [`DiskCache::gc`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcStats {
    /// Valid entries found before eviction.
    pub entries_before: usize,
    /// Bytes of valid entries before eviction.
    pub bytes_before: u64,
    /// Valid entries evicted (oldest first) to meet the budget.
    pub entries_evicted: usize,
    /// Bytes reclaimed from evicted valid entries.
    pub bytes_evicted: u64,
    /// Stale entries swept: torn JSON or mismatched key echoes.
    pub stale_removed: usize,
    /// Bytes reclaimed from swept stale entries.
    #[serde(default)]
    pub stale_bytes_removed: u64,
    /// Orphaned temp files swept.
    pub temps_removed: usize,
    /// Bytes reclaimed from swept orphaned temp files.
    #[serde(default)]
    pub temp_bytes_removed: u64,
    /// Valid entries remaining.
    pub entries_after: usize,
    /// Bytes of valid entries remaining (≤ the budget).
    pub bytes_after: u64,
}

/// Directory listing, sorted by path for deterministic sweep order.
fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, ComfaseError> {
    let mut paths = Vec::new();
    for entry in fs::read_dir(dir).map_err(|e| io_err(dir, &e))? {
        paths.push(entry.map_err(|e| io_err(dir, &e))?.path());
    }
    paths.sort();
    Ok(paths)
}

/// Removes `path`, tolerating a concurrent removal.
fn remove_entry(path: &Path) -> Result<(), ComfaseError> {
    match fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(io_err(path, &e)),
    }
}

impl ExperimentCache for DiskCache {
    fn load(&self, key: &CacheKey) -> CacheLookup {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CacheLookup::Miss,
            // Unreadable entries (permissions, I/O errors) are stale, not
            // fatal: the campaign re-simulates and overwrites.
            Err(_) => return CacheLookup::Stale,
        };
        match serde_json::from_slice::<CacheFile>(&bytes) {
            Ok(file) if file.key == *key => CacheLookup::Hit(Box::new(file.entry)),
            // Corrupt JSON or a key echo that does not match the file's
            // address — torn write, rename, or hash collision.
            _ => CacheLookup::Stale,
        }
    }

    fn store(&self, key: &CacheKey, entry: &CacheEntry) -> Result<(), ComfaseError> {
        let path = self.entry_path(key);
        let dir = path.parent().expect("entry paths always have a parent");
        fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        let file = CacheFile {
            key: *key,
            entry: entry.clone(),
        };
        let bytes = serde_json::to_vec(&file)
            .map_err(|e| ComfaseError::Io(format!("cache encode {}: {e}", path.display())))?;
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let result = write_atomically(&tmp, &path, &bytes);
        if result.is_err() {
            // Best-effort cleanup; the original error is what matters.
            let _ = fs::remove_file(&tmp);
        }
        result
    }
}

/// Writes `bytes` to `tmp`, fsyncs, and renames over `dest`.
fn write_atomically(tmp: &Path, dest: &Path, bytes: &[u8]) -> Result<(), ComfaseError> {
    let mut file = OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(tmp)
        .map_err(|e| io_err(tmp, &e))?;
    file.write_all(bytes).map_err(|e| io_err(tmp, &e))?;
    file.sync_data().map_err(|e| io_err(tmp, &e))?;
    drop(file);
    fs::rename(tmp, dest).map_err(|e| io_err(dest, &e))
}

fn io_err(path: &Path, e: &std::io::Error) -> ComfaseError {
    ComfaseError::Io(format!("cache {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("comfase-dist-cache-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_key() -> CacheKey {
        CacheKey {
            spec_hash: 0x1234,
            seed: 42,
            config_hash: 7,
        }
    }

    #[test]
    fn missing_entry_is_a_miss() {
        let cache = DiskCache::create(tmp_root("miss")).unwrap();
        assert_eq!(cache.load(&sample_key()), CacheLookup::Miss);
    }

    #[test]
    fn torn_entry_is_stale_not_fatal() {
        let cache = DiskCache::create(tmp_root("torn")).unwrap();
        let key = sample_key();
        let path = cache.entry_path(&key);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, b"{\"key\":{\"spec_hash\":46").unwrap();
        assert_eq!(cache.load(&key), CacheLookup::Stale);
    }

    /// Plants a syntactically valid entry for `key` at its content
    /// address, padded to roughly `pad` bytes. Only the key echo needs
    /// to parse for gc purposes; the payload is filler.
    fn plant(cache: &DiskCache, key: &CacheKey, pad: usize) -> PathBuf {
        let path = cache.entry_path(key);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        let body = format!(
            "{{\"key\":{},\"pad\":\"{}\"}}",
            serde_json::to_string(key).unwrap(),
            "x".repeat(pad)
        );
        fs::write(&path, body).unwrap();
        path
    }

    #[test]
    fn gc_sweeps_temps_and_stale_entries() {
        let cache = DiskCache::create(tmp_root("gc-sweep")).unwrap();
        let shard = cache.root().join("00");
        fs::create_dir_all(&shard).unwrap();
        // An orphaned temp, a torn entry, and an entry renamed away from
        // its content address — all swept regardless of budget.
        fs::write(shard.join(".tmp-999-0"), b"partial").unwrap();
        fs::write(shard.join("torn.json"), b"{\"key\":{\"spec").unwrap();
        let misplaced = shard.join(format!("{}.json", sample_key().stem()));
        let foreign = CacheKey {
            spec_hash: 0xbeef,
            ..sample_key()
        };
        fs::write(
            &misplaced,
            format!("{{\"key\":{}}}", serde_json::to_string(&foreign).unwrap()),
        )
        .unwrap();
        let temp_bytes = fs::metadata(shard.join(".tmp-999-0")).unwrap().len();
        let stale_bytes = fs::metadata(shard.join("torn.json")).unwrap().len()
            + fs::metadata(&misplaced).unwrap().len();
        let stats = cache.gc(u64::MAX).unwrap();
        assert_eq!(stats.temps_removed, 1);
        assert_eq!(stats.temp_bytes_removed, temp_bytes);
        assert_eq!(stats.stale_removed, 2);
        assert_eq!(stats.stale_bytes_removed, stale_bytes);
        assert_eq!(stats.entries_before, 0);
        assert_eq!(stats.entries_evicted, 0);
        assert!(!misplaced.exists());
        assert!(!shard.join(".tmp-999-0").exists());
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn gc_evicts_oldest_entries_down_to_the_budget() {
        let cache = DiskCache::create(tmp_root("gc-evict")).unwrap();
        let keys: Vec<CacheKey> = (1u64..=3)
            .map(|i| CacheKey {
                spec_hash: i,
                seed: 42,
                config_hash: 7,
            })
            .collect();
        let paths: Vec<PathBuf> = keys
            .iter()
            .map(|key| {
                // Distinct mtimes order the eviction queue oldest-first.
                std::thread::sleep(std::time::Duration::from_millis(20));
                plant(&cache, key, 100)
            })
            .collect();
        let total: u64 = paths.iter().map(|p| fs::metadata(p).unwrap().len()).sum();
        let one = fs::metadata(&paths[0]).unwrap().len();
        // A budget of two entries' bytes: the single oldest must go.
        let stats = cache.gc(total - 1).unwrap();
        assert_eq!(stats.entries_before, 3);
        assert_eq!(stats.bytes_before, total);
        assert_eq!(stats.entries_evicted, 1);
        assert_eq!(stats.bytes_evicted, one);
        assert_eq!(stats.entries_after, 2);
        assert_eq!(stats.bytes_after, total - one);
        assert!(!paths[0].exists(), "the oldest entry is the one evicted");
        assert!(paths[1].exists() && paths[2].exists());
        // A second pass under the same budget is a no-op.
        let again = cache.gc(total - 1).unwrap();
        assert_eq!(again.entries_evicted, 0);
        assert_eq!(again.entries_after, 2);
        // Budget zero clears the cache entirely.
        let wipe = cache.gc(0).unwrap();
        assert_eq!(wipe.entries_evicted, 2);
        assert_eq!(wipe.bytes_after, 0);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn gc_eviction_is_deterministic_under_identical_mtimes() {
        // Coarse-mtime filesystems routinely stamp whole entry batches
        // with one modification time; the documented (mtime, path, size)
        // tuple order must then fall back to the unique path, so every gc
        // pass over the same tree picks the same victims.
        let cache = DiskCache::create(tmp_root("gc-ties")).unwrap();
        let keys: Vec<CacheKey> = (1u64..=4)
            .map(|i| CacheKey {
                spec_hash: i,
                seed: 42,
                config_hash: 7,
            })
            .collect();
        // Plant in a scrambled order, then force one shared mtime.
        let mut paths: Vec<PathBuf> = [2usize, 0, 3, 1]
            .iter()
            .map(|&i| plant(&cache, &keys[i], 50 + 10 * i))
            .collect();
        paths.sort();
        let stamp = fs::FileTimes::new()
            .set_modified(std::time::UNIX_EPOCH + std::time::Duration::from_secs(1_000_000));
        for p in &paths {
            OpenOptions::new()
                .append(true)
                .open(p)
                .unwrap()
                .set_times(stamp)
                .unwrap();
            assert_eq!(
                fs::metadata(p).unwrap().modified().unwrap(),
                std::time::UNIX_EPOCH + std::time::Duration::from_secs(1_000_000)
            );
        }
        let total: u64 = paths.iter().map(|p| fs::metadata(p).unwrap().len()).sum();
        let smallest_two: u64 = paths
            .iter()
            .take(2)
            .map(|p| fs::metadata(p).unwrap().len())
            .sum();
        // Budget forces exactly two evictions: with all mtimes equal, the
        // two lexicographically-smallest paths must be the victims.
        let stats = cache.gc(total - smallest_two).unwrap();
        assert_eq!(stats.entries_evicted, 2);
        assert_eq!(stats.bytes_evicted, smallest_two);
        assert!(!paths[0].exists() && !paths[1].exists());
        assert!(paths[2].exists() && paths[3].exists());
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn entry_paths_fan_out_by_spec_hash_prefix() {
        let cache = DiskCache::create(tmp_root("fanout")).unwrap();
        let path = cache.entry_path(&sample_key());
        let dir = path.parent().unwrap().file_name().unwrap();
        assert_eq!(dir, "00", "0x1234 zero-pads to 0000…1234, prefix 00");
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .ends_with(".json"));
    }
}
