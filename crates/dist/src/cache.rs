// comfase-lint: host-region(reason = "content-addressed result cache: durable file I/O at the campaign boundary; entries are keyed by (spec, seed, config) content hashes and echo their key, so a hit can never alter what a simulation would have produced")
//! On-disk content-addressed store of experiment results.
//!
//! Layout: `<root>/<hh>/<spec>-<seed>-<config>.json`, where `<hh>` is
//! the first two hex digits of the spec hash (256-way fan-out keeps
//! directory listings short on big campaigns) and the file stem is
//! [`CacheKey::stem`]. Each file holds one JSON object `{key, entry}`;
//! the echoed key is verified on load, so a renamed or corrupted file
//! degrades to [`CacheLookup::Stale`] — never to a wrong result.
//!
//! Writes are atomic: the entry is serialized to a unique temp file in
//! the final directory, fsync'd, then renamed over the destination.
//! Concurrent writers (campaign worker threads, or whole shard
//! processes sharing one cache directory) therefore never expose a torn
//! entry; the last complete write wins, and equal keys imply equal
//! payloads by construction.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use comfase::cache::{CacheEntry, CacheKey, CacheLookup, ExperimentCache};
use comfase::prelude::ComfaseError;

/// One cache file: the entry plus an echo of its own key, verified on
/// load to catch renamed or cross-copied files.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheFile {
    key: CacheKey,
    entry: CacheEntry,
}

/// A content-addressed experiment result cache rooted at a directory.
#[derive(Debug)]
pub struct DiskCache {
    root: PathBuf,
    /// Per-process temp-file sequence; combined with the process id so
    /// concurrent writers (threads or shard processes) never collide on
    /// a temp name.
    seq: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`ComfaseError::Io`] when the root directory cannot be created.
    pub fn create<P: AsRef<Path>>(root: P) -> Result<Self, ComfaseError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root).map_err(|e| io_err(&root, &e))?;
        Ok(DiskCache {
            root,
            seq: AtomicU64::new(0),
        })
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Final path of `key`'s entry.
    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        let stem = key.stem();
        self.root.join(&stem[..2]).join(format!("{stem}.json"))
    }
}

impl ExperimentCache for DiskCache {
    fn load(&self, key: &CacheKey) -> CacheLookup {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CacheLookup::Miss,
            // Unreadable entries (permissions, I/O errors) are stale, not
            // fatal: the campaign re-simulates and overwrites.
            Err(_) => return CacheLookup::Stale,
        };
        match serde_json::from_slice::<CacheFile>(&bytes) {
            Ok(file) if file.key == *key => CacheLookup::Hit(Box::new(file.entry)),
            // Corrupt JSON or a key echo that does not match the file's
            // address — torn write, rename, or hash collision.
            _ => CacheLookup::Stale,
        }
    }

    fn store(&self, key: &CacheKey, entry: &CacheEntry) -> Result<(), ComfaseError> {
        let path = self.entry_path(key);
        let dir = path.parent().expect("entry paths always have a parent");
        fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        let file = CacheFile {
            key: *key,
            entry: entry.clone(),
        };
        let bytes = serde_json::to_vec(&file)
            .map_err(|e| ComfaseError::Io(format!("cache encode {}: {e}", path.display())))?;
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let result = write_atomically(&tmp, &path, &bytes);
        if result.is_err() {
            // Best-effort cleanup; the original error is what matters.
            let _ = fs::remove_file(&tmp);
        }
        result
    }
}

/// Writes `bytes` to `tmp`, fsyncs, and renames over `dest`.
fn write_atomically(tmp: &Path, dest: &Path, bytes: &[u8]) -> Result<(), ComfaseError> {
    let mut file = OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(tmp)
        .map_err(|e| io_err(tmp, &e))?;
    file.write_all(bytes).map_err(|e| io_err(tmp, &e))?;
    file.sync_data().map_err(|e| io_err(tmp, &e))?;
    drop(file);
    fs::rename(tmp, dest).map_err(|e| io_err(dest, &e))
}

fn io_err(path: &Path, e: &std::io::Error) -> ComfaseError {
    ComfaseError::Io(format!("cache {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("comfase-dist-cache-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_key() -> CacheKey {
        CacheKey {
            spec_hash: 0x1234,
            seed: 42,
            config_hash: 7,
        }
    }

    #[test]
    fn missing_entry_is_a_miss() {
        let cache = DiskCache::create(tmp_root("miss")).unwrap();
        assert_eq!(cache.load(&sample_key()), CacheLookup::Miss);
    }

    #[test]
    fn torn_entry_is_stale_not_fatal() {
        let cache = DiskCache::create(tmp_root("torn")).unwrap();
        let key = sample_key();
        let path = cache.entry_path(&key);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, b"{\"key\":{\"spec_hash\":46").unwrap();
        assert_eq!(cache.load(&key), CacheLookup::Stale);
    }

    #[test]
    fn entry_paths_fan_out_by_spec_hash_prefix() {
        let cache = DiskCache::create(tmp_root("fanout")).unwrap();
        let path = cache.entry_path(&sample_key());
        let dir = path.parent().unwrap().file_name().unwrap();
        assert_eq!(dir, "00", "0x1234 zero-pads to 0000…1234, prefix 00");
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .ends_with(".json"));
    }
}
