//! Fork-cost microbenchmarks for copy-on-write world snapshots.
//!
//! A campaign in `PrefixFork`/`SnapshotDag` mode clones a [`World`] once
//! per experiment, so the clone *is* the fork cost. Since the trace
//! buffers moved to chunk-shared storage and the road network, path-loss
//! model and car-following parameters became `Arc`-shared, that clone no
//! longer deep-copies the bulk of the snapshot:
//!
//! - `cow_world_fork` — the real fork: `World::clone` on a mid-run prefix
//!   snapshot (directly comparable to the historical
//!   `experiments/prefix_snapshot_clone` bench, which measured the same
//!   operation when it was a deep copy);
//! - `cow_mid_attack_fork` — [`World::fork_post_attack`], the snapshot-DAG
//!   level-2 fork (detach interceptor, clone, reattach);
//! - `cow_trace_clone` — cloning just the traffic trace, the dominant
//!   shared payload;
//! - `deep_trace_copy` — the explicit deep-copy baseline: re-recording
//!   every sample of every per-vehicle series into fresh buffers, i.e.
//!   what the trace share of the fork cost was before copy-on-write.
//!
//! On startup the harness prints the sealed-chunk byte count a fork
//! shares instead of copying ([`TrafficTrace::shared_bytes`]) — the
//! allocation-avoided proxy to read alongside the wall times.

use criterion::{criterion_group, criterion_main, Criterion};

use comfase::prelude::*;
use comfase_bench::paper_engine;
use comfase_des::stats::TimeSeries;
use comfase_des::time::SimTime;
use comfase_traffic::trace::TrafficTrace;

fn deep_copy_series(series: &TimeSeries) -> TimeSeries {
    let mut out = TimeSeries::with_capacity(series.len());
    for (t, v) in series.iter() {
        out.record(t, v);
    }
    out
}

fn deep_copy_trace(trace: &TrafficTrace) -> Vec<(TimeSeries, TimeSeries, TimeSeries)> {
    trace
        .iter()
        .map(|(_, tr)| {
            (
                deep_copy_series(&tr.pos),
                deep_copy_series(&tr.speed),
                deep_copy_series(&tr.accel),
            )
        })
        .collect()
}

fn bench_fork_cost(c: &mut Criterion) {
    let engine = paper_engine();
    let start = SimTime::from_secs(17);
    let prefix = engine.prefix_snapshot(start).unwrap();
    let trace = prefix.traffic().trace();
    eprintln!(
        "fork_cost: a fork shares {} bytes of sealed trace chunks \
         (allocations a deep copy would have made)",
        trace.shared_bytes()
    );

    let mut group = c.benchmark_group("fork_cost");
    group.bench_function("cow_world_fork", |b| {
        b.iter(|| prefix.clone());
    });
    group.bench_function("cow_trace_clone", |b| {
        b.iter(|| prefix.traffic().trace().clone());
    });
    group.bench_function("deep_trace_copy", |b| {
        b.iter(|| deep_copy_trace(prefix.traffic().trace()));
    });

    // The level-2 fork: a world inside its attack window, forked per leaf.
    let attack = AttackSpec {
        model: AttackModelKind::Delay,
        value: 1.0,
        targets: vec![2].into(),
        start,
        end: SimTime::from_secs(27),
    };
    let mut attacked = prefix.clone();
    attacked.run_until(start);
    attacked.install_attack(attack.build_interceptor(0));
    attacked.run_until(SimTime::from_secs(22));
    group.bench_function("cow_mid_attack_fork", |b| {
        b.iter(|| attacked.fork_post_attack());
    });
    group.finish();
}

criterion_group!(fork_cost, bench_fork_cost);
criterion_main!(fork_cost);
