//! Per-artefact benchmarks: one bench per table/figure of the paper's
//! evaluation section, measuring the cost of regenerating its underlying
//! experiments (run `repro` for the artefacts themselves).
//!
//! - `fig4_golden_run` — the 60 s golden run behind Fig. 4;
//! - `fig5_duration_cell` — one delay experiment at a representative
//!   duration (Fig. 5 consists of 11 250 of these bucketed by duration);
//! - `fig6_pd_cell` — one delay experiment at a representative PD value;
//! - `fig7_start_cell` — one delay experiment at a representative start;
//! - `dos_experiment` — one §IV-C.2 DoS experiment;
//! - `table2_delay_campaign_reduced` — an end-to-end (reduced) campaign
//!   including golden run, scheduling and classification (prefix-fork
//!   mode); `..._scratch` runs the same campaign from t = 0 per
//!   experiment for comparison;
//! - `fig5_duration_cell_forked` / `prefix_snapshot_clone` — one
//!   experiment resumed from a shared prefix snapshot, and the cost of
//!   the snapshot clone itself;
//! - `classification` — Step 4 alone.

use criterion::{criterion_group, criterion_main, Criterion};

use comfase::classify::ClassificationParams;
use comfase::prelude::*;
use comfase_bench::{delay_campaign, paper_engine, REPRO_SEED};
use comfase_des::time::SimTime;

fn delay_attack(value: f64, start: f64, dur: f64) -> AttackSpec {
    AttackSpec {
        model: AttackModelKind::Delay,
        value,
        targets: vec![2].into(),
        start: SimTime::from_secs_f64(start),
        end: SimTime::from_secs_f64(start + dur),
    }
}

fn bench_fig4(c: &mut Criterion) {
    let engine = paper_engine();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(20);
    group.bench_function("fig4_golden_run", |b| {
        b.iter(|| engine.golden_run().unwrap());
    });
    group.finish();
}

fn bench_delay_cells(c: &mut Criterion) {
    let engine = paper_engine();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(20);
    group.bench_function("fig5_duration_cell", |b| {
        let attack = delay_attack(1.0, 17.0, 10.0);
        b.iter(|| engine.run_experiment(&attack, 0).unwrap());
    });
    group.bench_function("fig6_pd_cell", |b| {
        let attack = delay_attack(2.2, 17.0, 5.0);
        b.iter(|| engine.run_experiment(&attack, 0).unwrap());
    });
    group.bench_function("fig7_start_cell", |b| {
        let attack = delay_attack(1.0, 19.8, 5.0);
        b.iter(|| engine.run_experiment(&attack, 0).unwrap());
    });
    group.bench_function("dos_experiment", |b| {
        let attack = AttackSpec {
            model: AttackModelKind::Dos,
            value: 60.0,
            targets: vec![2].into(),
            start: SimTime::from_secs(17),
            end: SimTime::from_secs(60),
        };
        b.iter(|| engine.run_experiment(&attack, 0).unwrap());
    });
    group.finish();
}

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    // Stride 5: 3 values × 5 starts × 6 durations = 90 experiments.
    let campaign = delay_campaign(5);
    group.bench_function("table2_delay_campaign_reduced", |b| {
        b.iter(|| {
            campaign
                .run_with_mode(comfase_bench::default_threads(), ExecutionMode::PrefixFork)
                .unwrap()
        });
    });
    group.bench_function("table2_delay_campaign_reduced_scratch", |b| {
        b.iter(|| {
            campaign
                .run_with_mode(comfase_bench::default_threads(), ExecutionMode::FromScratch)
                .unwrap()
        });
    });
    group.finish();
}

fn bench_fork(c: &mut Criterion) {
    // One experiment resumed from a shared prefix snapshot vs simulated
    // from t = 0 (`fig5_duration_cell` above is the from-scratch baseline).
    let engine = paper_engine();
    let attack = delay_attack(1.0, 17.0, 10.0);
    let prefix = engine.prefix_snapshot(attack.start).unwrap();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(20);
    group.bench_function("fig5_duration_cell_forked", |b| {
        b.iter(|| engine.run_experiment_from(&prefix, &attack, 0));
    });
    group.bench_function("prefix_snapshot_clone", |b| {
        b.iter(|| prefix.clone());
    });
    group.finish();
}

fn bench_classification(c: &mut Criterion) {
    let engine = paper_engine();
    let golden = engine.golden_run().unwrap();
    let run = engine
        .run_experiment(&delay_attack(1.0, 17.0, 10.0), 0)
        .unwrap();
    let params = ClassificationParams::from_golden(&golden.trace);
    let mut group = c.benchmark_group("experiments");
    group.bench_function("classification", |b| {
        b.iter(|| comfase::classify::classify(&golden.trace, &run.trace, &params));
    });
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    // Controller ablation: PATH CACC vs radar-only ACC under attack.
    for kind in [
        comfase_platoon::ControllerKind::PathCacc,
        comfase_platoon::ControllerKind::Acc,
    ] {
        let scenario = TrafficScenario::paper_default().with_controller(kind);
        let engine = Engine::new(scenario, CommModel::paper_default(), REPRO_SEED).unwrap();
        group.bench_function(format!("controller_{kind:?}"), |b| {
            let attack = delay_attack(2.0, 17.0, 10.0);
            b.iter(|| engine.run_experiment(&attack, 0).unwrap());
        });
    }
    // Path-loss ablation: free space vs two-ray interference.
    for model in [
        WirelessModelKind::FreeSpace,
        WirelessModelKind::TwoRayInterference,
    ] {
        let mut comm = CommModel::paper_default();
        comm.wireless_model = model;
        let engine = Engine::new(TrafficScenario::paper_default(), comm, REPRO_SEED).unwrap();
        group.bench_function(format!("pathloss_{model:?}"), |b| {
            b.iter(|| engine.golden_run().unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig4,
    bench_delay_cells,
    bench_campaign,
    bench_fork,
    bench_classification,
    bench_ablations
);
criterion_main!(benches);
