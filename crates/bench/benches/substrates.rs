//! Microbenchmarks of the simulation substrates: the DES kernel, the
//! traffic step loop, the wireless channel and the EDCA MAC.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use comfase_des::queue::EventQueue;
use comfase_des::rng::RngStream;
use comfase_des::time::SimTime;
use comfase_traffic::network::{LaneIndex, Road};
use comfase_traffic::simulation::TrafficSim;
use comfase_traffic::vehicle::{Vehicle, VehicleId, VehicleSpec};
use comfase_wireless::channel::Medium;
use comfase_wireless::frame::{AccessCategory, NodeId, WaveChannel, Wsm};
use comfase_wireless::geom::Position;
use comfase_wireless::mac::{Mac, MacAction, MacConfig};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("des");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("queue_schedule_pop_10k", |b| {
        b.iter_batched(
            EventQueue::new,
            |mut q| {
                for i in 0..10_000i64 {
                    q.schedule(SimTime::from_nanos((i * 7919) % 1_000_000), i);
                }
                while q.pop().is_some() {}
                q
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_traffic_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("traffic");
    let build = || {
        let mut sim = TrafficSim::new(Road::paper_highway(), RngStream::new(1));
        for i in 0..20u32 {
            sim.add_vehicle(Vehicle::new(
                VehicleId(i + 1),
                VehicleSpec::default_car(),
                50.0 * f64::from(i) + 10.0,
                LaneIndex((i % 4) as u8),
                25.0,
            ))
            .unwrap();
        }
        sim
    };
    group.throughput(Throughput::Elements(100));
    group.bench_function("krauss_20_vehicles_100_steps", |b| {
        b.iter_batched(build, |mut sim| sim.run_steps(100), BatchSize::SmallInput);
    });
    group.finish();
}

fn bench_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("wireless");
    let wsm = Wsm {
        source: NodeId(0),
        sequence: 0,
        created: SimTime::ZERO,
        channel: WaveChannel::Cch,
        payload: Bytes::from_static(&[0u8; 36]),
    };
    let build = || {
        let mut m = Medium::new();
        for i in 0..10 {
            m.update_position(NodeId(i), Position::on_road(f64::from(i) * 15.0, 0.0));
        }
        m
    };
    group.throughput(Throughput::Elements(1));
    group.bench_function("transmit_fanout_10_nodes", |b| {
        let mut m = build();
        b.iter(|| m.transmit(NodeId(0), wsm.clone(), SimTime::ZERO));
    });
    group.bench_function("full_reception_cycle", |b| {
        let mut m = build();
        b.iter(|| {
            let out = m.transmit(NodeId(0), wsm.clone(), SimTime::ZERO);
            for r in &out.receptions {
                m.reception_started(r);
            }
            for r in &out.receptions {
                m.reception_finished(r);
            }
        });
    });
    group.finish();
}

fn bench_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("mac");
    let wsm = Wsm {
        source: NodeId(1),
        sequence: 0,
        created: SimTime::ZERO,
        channel: WaveChannel::Cch,
        payload: Bytes::from_static(&[0u8; 36]),
    };
    group.throughput(Throughput::Elements(1));
    group.bench_function("enqueue_contend_transmit", |b| {
        b.iter_batched(
            || Mac::new(MacConfig::default(), RngStream::new(1)),
            |mut mac| {
                let mut actions = mac.enqueue(wsm.clone(), AccessCategory::Vo, SimTime::ZERO);
                while let Some(a) = actions.pop() {
                    match a {
                        MacAction::SetTimer { at, token } => {
                            actions.extend(mac.handle_timer(token, at));
                        }
                        MacAction::StartTx(_) => break,
                        MacAction::Drop { .. } => {}
                    }
                }
                mac
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_traffic_step,
    bench_channel,
    bench_mac
);
criterion_main!(benches);
