// comfase-lint: host-region(reason = "reproduction harness binary: reads CLI args and writes result tables/figures to disk; every number it prints comes out of deterministic campaign runs")

//! Reproduction harness: regenerates every table and figure of the
//! paper's evaluation section (§IV).
//!
//! ```text
//! repro [--all] [--table1] [--table2] [--fig4] [--fig5] [--fig6] [--fig7]
//!       [--delay-summary] [--dos-summary]
//!       [--bench-campaign] time the delay campaign in both execution modes
//!                          and write BENCH_campaign.json (not part of --all)
//!       [--bench-scale] time the indexed vs brute-force hot paths at growing
//!                       fleet sizes, verify bit-identical results (including
//!                       campaign metrics across indexing substrates and
//!                       execution modes) and write BENCH_scale.json
//!                       (not part of --all)
//!       [--fleets A,B,..] fleet sizes for --bench-scale (default 50,200,1000)
//!       [--stride N]  subsample the delay campaign by N (default 1 = full 11250 runs)
//!       [--threads N] worker threads (default: all cores)
//!       [--csv DIR]   additionally write machine-readable CSVs into DIR
//!       [--metrics]   collect deterministic telemetry; write results/metrics.json
//!                     (+ metrics_dos.json) and the host-side results/profile.json
//!       [--progress]  live per-experiment progress line on stderr
//!       [--quiet]     suppress progress output
//!       [--chrome-trace FILE]  write a golden-run event trace loadable in
//!                              chrome://tracing or ui.perfetto.dev
//!       [--journal PATH]  checkpoint the delay campaign to an append-only
//!                         journal (one fsync'd line per finished experiment)
//!       [--resume]    skip experiments the journal already records as
//!                     completed (requires --journal); the merged metrics
//!                     artifact is byte-identical to an uninterrupted run
//!       [--shard I/N] run only shard I of an N-way split of the delay
//!                     campaign (requires --journal; merge the shard
//!                     journals afterwards with --merge)
//!       [--claim-dir DIR]  crash-tolerant work stealing: claim work
//!                     units dynamically through a shared claim ledger
//!                     instead of a static shard (requires --journal,
//!                     exclusive with --shard); killed workers' units
//!                     are stolen by survivors and the merged artifact
//!                     stays byte-identical to a single-process run
//!       [--worker-id ID]  this worker's lease identity (default:
//!                     worker-<pid>)
//!       [--steal-after N]  consecutive stalled ledger scans before a
//!                     lease is presumed dead and stolen (default 20)
//!       [--claim-units N]  experiment indices per work unit (default:
//!                     campaign-size dependent, about 32 units)
//!       [--merge J1 J2 ..]  merge shard/worker journals into the
//!                     campaign's metrics artifact
//!                     (results/metrics_merged.json), byte-identical to
//!                     a single-process run; exclusive with every other
//!                     artifact flag
//!       [--format text|json]  error reporting format for --merge: json
//!                     emits a machine-readable object on stdout, with
//!                     exact missing index ranges on coverage gaps
//!       [--dataset-dir DIR]  stream an attack-labeled dataset shard
//!                     (exp-<index>.jsonl, one length-delimited JSON line
//!                     per PHY frame and control step) into DIR while the
//!                     delay campaign runs; implies dataset capture, which
//!                     is part of the campaign identity. Workers sharing a
//!                     campaign may export into one directory — identical
//!                     re-exports are idempotent
//!       [--dataset-merge DIR..]  validate and merge dataset shard
//!                     directories into results/dataset/{corpus.jsonl,
//!                     manifest.json}, byte-identical regardless of worker
//!                     count, steal events or execution mode; exclusive
//!                     with every other artifact flag
//!       [--cache-dir DIR]  content-addressed result cache: experiments
//!                     whose (spec, seed, config) key is already stored
//!                     are returned without simulating; writes
//!                     results/cache_stats.json
//!       [--cache-gc MAX_BYTES]  size-bounded cache eviction
//!                     (oldest-entry-first) plus a stale/torn-entry
//!                     sweep, then exit (requires --cache-dir; run
//!                     between campaigns, not concurrently with
//!                     workers); writes results/gc_stats.json
//!       [--failure-policy abort|quarantine[:N]]  keep running past failed
//!                     experiments, aborting only after N failures
//!                     (default: abort on the first failure)
//!       [--max-events N]  deterministic per-experiment watchdog: fail any
//!                         experiment whose simulation delivers > N events
//!       [--wall-deadline SECS]  stop claiming new experiments after SECS
//!                               wall-clock seconds (host-side, graceful;
//!                               pairs with --journal/--resume)
//! ```

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

use comfase::analysis;
use comfase::campaign::{Campaign, CampaignObserver, CampaignPhase, CampaignResult};
use comfase::config::AttackCampaignSetup;
use comfase::prelude::{
    chrome_trace_json, CommModel, DatasetSink, DirSink, Engine, EventBudget, ExecutionMode,
    ExperimentCache, FailurePolicy, HostProfiler, IndexingMode, ObsConfig, RunConfig, ShardRange,
    TrafficScenario,
};
use comfase::report;
use comfase_bench::{delay_campaign, dos_campaign, paper_engine, REPRO_SEED};
use comfase_dist::{
    merge_dataset_dirs, merge_journals, merge_journals_detailed, parse_shard,
    worker::DEFAULT_STEAL_AFTER, ClaimSource, DiskCache,
};

struct Options {
    artefacts: Vec<String>,
    stride: usize,
    threads: usize,
    csv_dir: Option<std::path::PathBuf>,
    metrics: bool,
    progress: bool,
    quiet: bool,
    chrome_trace: Option<std::path::PathBuf>,
    journal: Option<std::path::PathBuf>,
    resume: bool,
    shard: Option<ShardRange>,
    claim_dir: Option<std::path::PathBuf>,
    worker_id: Option<String>,
    steal_after: u32,
    claim_units: Option<usize>,
    merge: Vec<std::path::PathBuf>,
    format_json: bool,
    dataset_dir: Option<std::path::PathBuf>,
    dataset_merge: Vec<std::path::PathBuf>,
    cache_dir: Option<std::path::PathBuf>,
    cache_gc: Option<u64>,
    failure_policy: FailurePolicy,
    max_events: Option<u64>,
    wall_deadline: Option<f64>,
    fleets: Vec<usize>,
}

/// Campaign hooks of the repro harness: a wall-clock phase profiler
/// (host-side only — nothing flows back into the simulations) plus the
/// stderr progress line.
struct ReproObserver {
    profiler: HostProfiler,
    progress: bool,
    quiet: bool,
}

impl ReproObserver {
    fn new(opts: &Options) -> Self {
        ReproObserver {
            profiler: HostProfiler::new(),
            progress: opts.progress,
            quiet: opts.quiet,
        }
    }
}

impl CampaignObserver for ReproObserver {
    fn phase_started(&self, phase: CampaignPhase) {
        self.profiler.begin(phase.name());
    }

    fn phase_finished(&self, phase: CampaignPhase) {
        self.profiler.end(phase.name());
    }

    fn experiment_done(&self, done: usize, total: usize) {
        if self.quiet {
            return;
        }
        if self.progress || done.is_multiple_of(500) || done == total {
            eprint!(
                "\r  {done}/{total} ({:.0}%)",
                100.0 * done as f64 / total as f64
            );
            let _ = std::io::stderr().flush();
        }
    }
}

fn parse_args() -> Options {
    let mut artefacts = Vec::new();
    let mut stride = 1usize;
    let mut threads = comfase_bench::default_threads();
    let mut csv_dir = None;
    let mut metrics = false;
    let mut progress = false;
    let mut quiet = false;
    let mut chrome_trace = None;
    let mut journal = None;
    let mut resume = false;
    let mut shard = None;
    let mut claim_dir = None;
    let mut worker_id = None;
    let mut steal_after = DEFAULT_STEAL_AFTER;
    let mut claim_units = None;
    let mut merge = Vec::new();
    let mut format_json = false;
    let mut dataset_dir = None;
    let mut dataset_merge = Vec::new();
    let mut cache_dir = None;
    let mut cache_gc = None;
    let mut failure_policy = FailurePolicy::Abort;
    let mut max_events = None;
    let mut wall_deadline = None;
    let mut fleets = vec![50usize, 200, 1000];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all" => artefacts.push("all".into()),
            "--metrics" => metrics = true,
            "--progress" => progress = true,
            "--quiet" => quiet = true,
            "--resume" => resume = true,
            "--journal" => {
                journal = Some(std::path::PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--journal needs a file path")),
                ));
            }
            "--shard" => {
                let spec = args
                    .next()
                    .unwrap_or_else(|| die("--shard needs i/n (e.g. 0/4)"));
                shard = Some(parse_shard(&spec).unwrap_or_else(|e| die(&e.to_string())));
            }
            "--claim-dir" => {
                claim_dir = Some(std::path::PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--claim-dir needs a directory")),
                ));
            }
            "--worker-id" => {
                worker_id = Some(
                    args.next()
                        .filter(|id| !id.is_empty())
                        .unwrap_or_else(|| die("--worker-id needs a non-empty identifier")),
                );
            }
            "--steal-after" => {
                steal_after = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--steal-after needs a non-negative integer"));
            }
            "--claim-units" => {
                claim_units = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|n| *n > 0)
                        .unwrap_or_else(|| die("--claim-units needs a positive integer")),
                );
            }
            "--merge" => {
                // Consumes every remaining argument as a journal path.
                merge.extend(args.by_ref().map(std::path::PathBuf::from));
                if merge.is_empty() {
                    die("--merge needs at least one journal path");
                }
            }
            "--dataset-dir" => {
                dataset_dir = Some(std::path::PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--dataset-dir needs a directory")),
                ));
            }
            "--dataset-merge" => {
                // Consumes every remaining argument as a shard directory.
                dataset_merge.extend(args.by_ref().map(std::path::PathBuf::from));
                if dataset_merge.is_empty() {
                    die("--dataset-merge needs at least one shard directory");
                }
            }
            "--format" => {
                match args.next().as_deref() {
                    Some("json") => format_json = true,
                    Some("text") => format_json = false,
                    _ => die("--format needs text or json"),
                };
            }
            "--cache-dir" => {
                cache_dir = Some(std::path::PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--cache-dir needs a directory")),
                ));
            }
            "--cache-gc" => {
                cache_gc = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--cache-gc needs a byte budget")),
                );
            }
            "--failure-policy" => {
                let spec = args
                    .next()
                    .unwrap_or_else(|| die("--failure-policy needs abort or quarantine[:N]"));
                failure_policy = parse_failure_policy(&spec);
            }
            "--max-events" => {
                max_events = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--max-events needs a positive integer")),
                );
            }
            "--wall-deadline" => {
                wall_deadline = Some(
                    args.next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|s| *s > 0.0)
                        .unwrap_or_else(|| {
                            die("--wall-deadline needs a positive number of seconds")
                        }),
                );
            }
            "--chrome-trace" => {
                chrome_trace = Some(std::path::PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--chrome-trace needs a file path")),
                ));
            }
            "--table1" | "--table2" | "--fig4" | "--fig5" | "--fig6" | "--fig7" | "--heatmap"
            | "--delay-summary" | "--dos-summary" | "--ablations" | "--bench-campaign"
            | "--bench-scale" => {
                artefacts.push(arg.trim_start_matches("--").into());
            }
            "--fleets" => {
                let spec = args
                    .next()
                    .unwrap_or_else(|| die("--fleets needs a comma-separated list of sizes"));
                fleets = spec
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|n| *n > 0)
                            .unwrap_or_else(|| die("--fleets needs positive integers"))
                    })
                    .collect();
            }
            "--stride" => {
                stride = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--stride needs a positive integer"));
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a positive integer"));
            }
            "--csv" => {
                csv_dir = Some(std::path::PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--csv needs a directory")),
                ));
            }
            "--help" | "-h" => {
                println!(
                    "repro: regenerate the ComFASE paper's tables and figures\n\
                     usage: repro [--all|--table1|--table2|--fig4|--fig5|--fig6|--fig7|\
                     --delay-summary|--dos-summary|--bench-campaign|--bench-scale] \
                     [--stride N] [--threads N] [--fleets A,B,..]\n\
                     \x20      [--metrics] [--progress|--quiet] [--chrome-trace FILE] [--csv DIR]\n\
                     \x20      [--journal PATH] [--resume] [--shard I/N] [--cache-dir DIR]\n\
                     \x20      [--claim-dir DIR] [--worker-id ID] [--steal-after N] [--claim-units N]\n\
                     \x20      [--failure-policy abort|quarantine[:N]]\n\
                     \x20      [--max-events N] [--wall-deadline SECS] [--format text|json]\n\
                     \x20      [--dataset-dir DIR] [--dataset-merge DIR..]\n\
                     \x20      [--merge JOURNAL..]  (merges shard/worker journals and exits)\n\
                     \x20      [--cache-gc MAX_BYTES]  (collects the cache and exits)"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    if artefacts.is_empty() {
        artefacts.push("all".into());
    }
    if progress && quiet {
        die("--progress and --quiet are mutually exclusive");
    }
    if resume && journal.is_none() {
        die("--resume requires --journal");
    }
    if shard.is_some() && journal.is_none() {
        die("--shard requires --journal (the shard journal is what --merge consumes)");
    }
    if claim_dir.is_some() && journal.is_none() {
        die("--claim-dir requires --journal (the worker journal is what --merge consumes)");
    }
    if claim_dir.is_some() && shard.is_some() {
        die("--claim-dir and --shard are mutually exclusive: work stealing claims units dynamically");
    }
    if claim_dir.is_none() && (worker_id.is_some() || claim_units.is_some()) {
        die("--worker-id and --claim-units only make sense with --claim-dir");
    }
    if cache_gc.is_some() && cache_dir.is_none() {
        die("--cache-gc requires --cache-dir (the cache to collect)");
    }
    Options {
        artefacts,
        stride,
        threads,
        csv_dir,
        metrics,
        progress,
        quiet,
        chrome_trace,
        journal,
        resume,
        shard,
        claim_dir,
        worker_id,
        steal_after,
        claim_units,
        merge,
        format_json,
        dataset_dir,
        dataset_merge,
        cache_dir,
        cache_gc,
        failure_policy,
        max_events,
        wall_deadline,
        fleets,
    }
}

/// Parses `abort`, `quarantine` (unbounded) or `quarantine:N` (circuit
/// breaker after N failures).
fn parse_failure_policy(spec: &str) -> FailurePolicy {
    match spec {
        "abort" => FailurePolicy::Abort,
        "quarantine" => FailurePolicy::quarantine(),
        other => match other.strip_prefix("quarantine:").map(str::parse) {
            Some(Ok(max_failures)) => FailurePolicy::Quarantine { max_failures },
            _ => die("--failure-policy needs abort or quarantine[:N]"),
        },
    }
}

/// Writes a campaign artifact into `results/`, creating the directory.
fn write_results_file(name: &str, contents: &[u8]) {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write results file");
    eprintln!("wrote {}", path.display());
}

fn write_csv(opts: &Options, name: &str, contents: &str) {
    let Some(dir) = &opts.csv_dir else { return };
    std::fs::create_dir_all(dir).expect("create csv dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write csv");
    eprintln!("wrote {}", path.display());
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn wants(opts: &Options, name: &str) -> bool {
    opts.artefacts.iter().any(|a| a == name || a == "all")
}

fn obs_config(opts: &Options) -> ObsConfig {
    if opts.metrics {
        ObsConfig::metrics_only()
    } else {
        ObsConfig::disabled()
    }
}

/// The supervision config shared by the campaign runs. The journal (and
/// with it the shard restriction) is bound to one campaign identity
/// (seed + setup + full-config fingerprint), so only the delay campaign
/// — the long one worth checkpointing and splitting — gets them. The
/// result cache keys every entry by its own campaign configuration, so
/// it is safe to share across campaigns.
fn run_config(opts: &Options, with_journal: bool) -> RunConfig {
    RunConfig {
        mode: ExecutionMode::PrefixFork,
        failure_policy: opts.failure_policy,
        journal: if with_journal {
            opts.journal.clone()
        } else {
            None
        },
        resume: with_journal && opts.resume,
        shard: if with_journal { opts.shard } else { None },
        cache: cache_store(opts),
        wall_deadline_s: opts.wall_deadline,
        ..RunConfig::default()
    }
}

/// Opens the content-addressed result cache at `--cache-dir`, if set.
fn cache_store(opts: &Options) -> Option<Arc<dyn ExperimentCache>> {
    opts.cache_dir.as_ref().map(|dir| {
        let cache =
            DiskCache::create(dir).unwrap_or_else(|e| die(&format!("cannot open cache dir: {e}")));
        Arc::new(cache) as Arc<dyn ExperimentCache>
    })
}

fn event_budget(opts: &Options) -> EventBudget {
    EventBudget {
        max_delivered: opts.max_events,
        ..EventBudget::UNLIMITED
    }
}

/// Prints the per-kind failure summary of a quarantined campaign, if any
/// experiments failed.
fn report_failures(result: &CampaignResult) {
    if result.failures.is_empty() {
        return;
    }
    eprintln!(
        "{} experiment(s) failed and were quarantined:",
        result.failures.len()
    );
    for (kind, count) in result.failure_summary() {
        eprintln!("  {kind}: {count}");
    }
    for failure in &result.failures {
        eprintln!(
            "  #{}: [{}] {}",
            failure.index,
            failure.kind.name(),
            failure.payload
        );
    }
}

fn run_delay(opts: &Options, observer: &ReproObserver) -> CampaignResult {
    // Dataset export needs per-frame/per-step capture, which is part of
    // the campaign identity — only the exporting run gets it.
    let mut obs = obs_config(opts);
    if opts.dataset_dir.is_some() {
        obs = obs.with_dataset();
    }
    let campaign = delay_campaign(opts.stride)
        .with_obs(obs)
        .with_budget(event_budget(opts));
    let total = campaign.nr_experiments();
    // Claim-driven execution: open (or join) the shared claim ledger and
    // claim work units dynamically instead of running a fixed slice.
    let work = opts.claim_dir.as_ref().map(|dir| {
        let worker_id = opts
            .worker_id
            .clone()
            .unwrap_or_else(|| format!("worker-{}", std::process::id()));
        let source = ClaimSource::for_campaign(
            dir,
            &campaign,
            &worker_id,
            opts.claim_units,
            opts.steal_after,
        )
        .unwrap_or_else(|e| die(&format!("cannot open claim ledger: {e}")));
        if !opts.quiet {
            eprintln!(
                "claim ledger {}: {} unit(s) of {} experiment(s) each, worker id {worker_id}",
                dir.display(),
                source.ledger().units().len(),
                source.ledger().meta().unit_size,
            );
        }
        Arc::new(source) as Arc<dyn comfase::campaign::WorkSource>
    });
    if !opts.quiet {
        let slice = match opts.shard {
            Some(s) => format!(
                " — shard {}/{} covers {} of them",
                s.index,
                s.of,
                s.len(total)
            ),
            None => String::new(),
        };
        eprintln!(
            "running delay campaign: {total} experiments (stride {}) on {} thread(s){slice}...",
            opts.stride, opts.threads
        );
    }
    // Streaming dataset exporter: one shard file per experiment, written
    // before the experiment's journal row so a resume never leaves holes.
    let dataset = opts.dataset_dir.as_ref().map(|dir| {
        let sink =
            DirSink::create(dir).unwrap_or_else(|e| die(&format!("cannot open dataset dir: {e}")));
        Arc::new(sink) as Arc<dyn DatasetSink>
    });
    let t0 = Instant::now();
    let config = RunConfig {
        work,
        dataset,
        ..run_config(opts, true)
    };
    let result = campaign
        .run_supervised(opts.threads, &config, observer)
        .unwrap_or_else(|e| die(&format!("delay campaign failed: {e}")));
    if !opts.quiet {
        eprintln!("\ndelay campaign finished in {:.1?}", t0.elapsed());
        if let Some(dir) = &opts.dataset_dir {
            eprintln!(
                "dataset shards in {} (merge with --dataset-merge {})",
                dir.display(),
                dir.display()
            );
        }
    }
    report_failures(&result);
    if opts.cache_dir.is_some() {
        write_cache_stats(&result);
    }
    result
}

/// Writes the result-cache counters of a campaign run
/// (`results/cache_stats.json`).
fn write_cache_stats(result: &CampaignResult) {
    let stats = &result.stats;
    let json = serde_json::json!({
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "cache_stale": stats.cache_stale,
        "hit_rate": stats.cache_hit_rate(),
        "simulated_runs": stats.forked_runs + stats.scratch_runs + stats.chain_forked_runs,
    });
    write_results_file(
        "cache_stats.json",
        serde_json::to_string_pretty(&json)
            .expect("serializable")
            .as_bytes(),
    );
    eprintln!(
        "cache: {} hit(s), {} miss(es), {} stale ({:.0}% hit rate)",
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_stale,
        100.0 * stats.cache_hit_rate()
    );
}

fn main() {
    let opts = parse_args();
    let observer = ReproObserver::new(&opts);

    // Cache-gc mode: collect the cache down to the byte budget and exit
    // — nothing is simulated. Maintenance-time only: concurrent writers
    // would lose in-flight temp files to the orphan sweep.
    if let Some(max_bytes) = opts.cache_gc {
        let dir = opts.cache_dir.as_ref().expect("validated in parse_args");
        let cache =
            DiskCache::create(dir).unwrap_or_else(|e| die(&format!("cannot open cache dir: {e}")));
        let stats = cache
            .gc(max_bytes)
            .unwrap_or_else(|e| die(&format!("cache gc failed: {e}")));
        let json = serde_json::to_string_pretty(&stats).expect("serializable");
        write_results_file("gc_stats.json", json.as_bytes());
        if opts.format_json {
            println!("{json}");
        } else {
            println!(
                "cache gc: kept {} entr(ies) / {} byte(s) (budget {max_bytes}); evicted {} \
                 ({} byte(s)), swept {} stale + {} temp file(s)",
                stats.entries_after,
                stats.bytes_after,
                stats.entries_evicted,
                stats.bytes_evicted,
                stats.stale_removed,
                stats.temps_removed,
            );
        }
        return;
    }

    // Dataset-merge mode: reassemble per-experiment dataset shards into
    // the corpus artifact and exit — nothing is simulated.
    if !opts.dataset_merge.is_empty() {
        eprintln!(
            "merging dataset shards from {} director(ies)...",
            opts.dataset_merge.len()
        );
        let out = std::path::Path::new("results").join("dataset");
        let report = match merge_dataset_dirs(&opts.dataset_merge, &out) {
            Ok(report) => report,
            Err(e) if opts.format_json => {
                let json = serde_json::json!({ "error": e.to_string() });
                println!(
                    "{}",
                    serde_json::to_string_pretty(&json).expect("serializable")
                );
                std::process::exit(2);
            }
            Err(e) => die(&format!("dataset merge failed: {e}")),
        };
        eprintln!("wrote {}", report.corpus_path.display());
        eprintln!("wrote {}", report.manifest_path.display());
        println!(
            "merged {} dataset shard(s): {} byte(s), fnv1a64 {:016x} \
             (byte-identical regardless of worker count)",
            report.shards, report.corpus_bytes, report.corpus_fnv1a64
        );
        return;
    }

    // Merge mode: reassemble shard/worker journals into the campaign
    // artifact and exit — nothing is simulated.
    if !opts.merge.is_empty() {
        eprintln!("merging {} shard journal(s)...", opts.merge.len());
        let metrics = match merge_journals_detailed(&opts.merge) {
            Ok(metrics) => metrics,
            Err(failure) if opts.format_json => {
                // Machine-readable refusal: the exact coverage shortfall
                // (when that is the refusal) rides along as data.
                let json = serde_json::json!({
                    "error": failure.error.to_string(),
                    "coverage_gap": failure.gap,
                });
                println!(
                    "{}",
                    serde_json::to_string_pretty(&json).expect("serializable")
                );
                std::process::exit(2);
            }
            Err(failure) => die(&format!("merge failed: {failure}")),
        };
        write_results_file("metrics_merged.json", &metrics.to_json_bytes());
        println!(
            "merged {} experiment rows (byte-identical to a single-process run)",
            metrics.experiments
        );
        return;
    }

    if let Some(path) = &opts.chrome_trace {
        write_chrome_trace(path);
    }

    if wants(&opts, "table1") {
        println!("{}", report::render_table1());
    }
    if wants(&opts, "table2") {
        println!(
            "{}",
            report::render_table2(
                &AttackCampaignSetup::paper_delay_campaign(),
                &AttackCampaignSetup::paper_dos_campaign(),
            )
        );
    }

    if wants(&opts, "fig4") {
        let engine = paper_engine();
        let golden = engine.golden_run().expect("golden run");
        println!("{}", report::render_fig4(&golden, 0.5));
        write_csv(&opts, "fig4.csv", &report::fig4_csv(&golden, 0.1));
        println!(
            "golden run: max deceleration {:.3} m/s² (paper: 1.53 m/s²), collisions: {}\n",
            golden.max_decel(),
            golden.trace.collisions.len()
        );
    }

    let needs_delay = ["fig5", "fig6", "fig7", "heatmap", "delay-summary"]
        .iter()
        .any(|a| wants(&opts, a));
    if needs_delay {
        let result = run_delay(&opts, &observer);
        if let Some(metrics) = &result.metrics {
            write_results_file("metrics.json", &metrics.to_json_bytes());
            write_csv(
                &opts,
                "loss_breakdown.csv",
                &report::loss_breakdown_csv(metrics),
            );
            if wants(&opts, "delay-summary") {
                println!("{}", report::render_loss_breakdown(metrics));
            }
        }
        if wants(&opts, "fig5") {
            let map = analysis::by_duration(&result.records);
            println!("{}", report::render_fig5(&map));
            println!("{}", report::render_saturation("duration", &map, 0.1));
            write_csv(
                &opts,
                "fig5.csv",
                &report::class_histogram_csv("duration_s", &map),
            );
        }
        if wants(&opts, "fig6") {
            let map = analysis::by_value(&result.records);
            println!("{}", report::render_fig6(&map));
            println!("{}", report::render_saturation("PD value", &map, 0.1));
            write_csv(
                &opts,
                "fig6.csv",
                &report::class_histogram_csv("pd_s", &map),
            );
        }
        if wants(&opts, "heatmap") {
            println!(
                "{}",
                report::render_heatmap(&analysis::by_start_and_value(&result.records))
            );
        }
        if wants(&opts, "fig7") {
            let map = analysis::by_start_time(&result.records);
            println!("{}", report::render_fig7(&map));
            write_csv(
                &opts,
                "fig7.csv",
                &report::class_histogram_csv("start_s", &map),
            );
        }
        write_csv(
            &opts,
            "delay_records.csv",
            &report::records_csv(&result.records),
        );
        if wants(&opts, "delay-summary") {
            println!("== Delay campaign summary (paper §IV-C.1) ==");
            println!(
                "{}",
                report::render_summary(&analysis::summary(&result.records))
            );
            println!(
                "{}",
                report::render_collider_split(&analysis::collider_split(&result.records))
            );
            println!(
                "golden-run max deceleration used as Negligible threshold: {:.3} m/s²\n",
                result.params.golden_max_decel_mps2
            );
        }
    }

    if wants(&opts, "dos-summary") {
        let campaign = dos_campaign()
            .with_obs(obs_config(&opts))
            .with_budget(event_budget(&opts));
        if !opts.quiet {
            eprintln!(
                "running DoS campaign: {} experiments...",
                campaign.nr_experiments()
            );
        }
        let result = campaign
            .run_supervised(opts.threads, &run_config(&opts, false), &observer)
            .unwrap_or_else(|e| die(&format!("DoS campaign failed: {e}")));
        report_failures(&result);
        if let Some(metrics) = &result.metrics {
            write_results_file("metrics_dos.json", &metrics.to_json_bytes());
            println!("{}", report::render_loss_breakdown(metrics));
        }
        println!("== DoS campaign summary (paper §IV-C.2) ==");
        println!(
            "{}",
            report::render_summary(&analysis::summary(&result.records))
        );
        println!(
            "{}",
            report::render_collider_split(&analysis::collider_split(&result.records))
        );
        let bands: BTreeMap<_, _> = analysis::colliders_by_start(&result.records);
        println!("{}", report::render_dos_bands(&bands));
        write_csv(
            &opts,
            "dos_records.csv",
            &report::records_csv(&result.records),
        );
    }

    if wants(&opts, "ablations") {
        run_ablations(&opts);
    }

    // Deliberately not part of --all: it runs the delay campaign three times.
    if opts.artefacts.iter().any(|a| a == "bench-campaign") {
        run_bench_campaign(&opts);
    }

    // Deliberately not part of --all: it runs every substrate twice per
    // fleet size plus a six-way campaign identity check.
    if opts.artefacts.iter().any(|a| a == "bench-scale") {
        run_bench_scale(&opts);
    }

    if opts.metrics {
        write_profile(&opts, &observer.profiler);
    }
}

/// Writes the host-side wall-clock profile (`results/profile.json`).
///
/// Wall-clock numbers live here and only here — `metrics.json` carries
/// exclusively sim-derived, deterministic values.
fn write_profile(opts: &Options, profiler: &HostProfiler) {
    let phases: BTreeMap<String, f64> = profiler.report().into_iter().collect();
    let json = serde_json::json!({
        "threads": opts.threads,
        "stride": opts.stride,
        "phase_wall_s": phases,
        "total_wall_s": profiler.total_seconds(),
    });
    write_results_file(
        "profile.json",
        serde_json::to_string_pretty(&json)
            .expect("serializable")
            .as_bytes(),
    );
}

/// Runs the attack-free golden run with full event tracing and writes a
/// chrome://tracing / Perfetto-loadable JSON trace.
fn write_chrome_trace(path: &std::path::Path) {
    eprintln!("tracing golden run for {}...", path.display());
    let engine = paper_engine().with_obs(ObsConfig::with_trace());
    let golden = engine.golden_run().expect("golden run");
    let trace = chrome_trace_json(&golden.obs.events);
    if golden.obs.dropped_events > 0 {
        eprintln!(
            "  note: {} events beyond the trace capacity were dropped",
            golden.obs.dropped_events
        );
    }
    std::fs::write(path, trace).expect("write chrome trace");
    eprintln!("wrote {}", path.display());
}

/// Times the delay campaign in all three execution modes, verifies they
/// agree bit for bit, and writes machine-readable per-mode results
/// (wall time, speedup over from-scratch, and snapshot/DAG reuse stats)
/// to `BENCH_campaign.json`.
fn run_bench_campaign(opts: &Options) {
    let campaign = delay_campaign(opts.stride);
    let total = campaign.nr_experiments();
    eprintln!(
        "benchmarking campaign throughput: {total} experiments (stride {}) on {} thread(s)...",
        opts.stride, opts.threads
    );

    let modes = [
        ("from_scratch", ExecutionMode::FromScratch),
        ("prefix_fork", ExecutionMode::PrefixFork),
        ("snapshot_dag", ExecutionMode::SnapshotDag),
    ];
    let mut walls = Vec::new();
    let mut reference: Option<&_> = None;
    let mut results = Vec::new();
    for &(name, mode) in &modes {
        let t = Instant::now();
        let result = campaign
            .run_with_mode(opts.threads, mode)
            .expect("campaign runs");
        let wall = t.elapsed();
        eprintln!("  {name:<13} {wall:.1?}");
        walls.push(wall);
        results.push((name, result));
    }
    for (name, result) in &results {
        match reference {
            None => reference = Some(&result.records),
            Some(r) => assert_eq!(
                &result.records, r,
                "execution mode {name} must agree bit for bit with from-scratch"
            ),
        }
    }

    let scratch_wall = walls[0];
    let per_mode: Vec<serde_json::Value> = results
        .iter()
        .zip(&walls)
        .map(|((name, result), wall)| {
            let hit_rates = result.stats.level_hit_rates();
            serde_json::json!({
                "mode": name,
                "wall_s": wall.as_secs_f64(),
                "speedup_vs_scratch": scratch_wall.as_secs_f64() / wall.as_secs_f64(),
                "experiments_per_sec": total as f64 / wall.as_secs_f64(),
                "prefix_snapshots": result.stats.prefix_snapshots,
                "forked_runs": result.stats.forked_runs,
                "scratch_runs": result.stats.scratch_runs,
                "attack_chains": result.stats.attack_chains,
                "chain_forked_runs": result.stats.chain_forked_runs,
                "dag_depth": result.stats.dag_depth,
                "snapshot_hit_rate": result.stats.snapshot_hit_rate(),
                "level_hit_rates": hit_rates,
            })
        })
        .collect();

    let fork_wall = walls[1];
    let dag_wall = walls[2];
    let speedup = scratch_wall.as_secs_f64() / fork_wall.as_secs_f64();
    let dag_speedup = scratch_wall.as_secs_f64() / dag_wall.as_secs_f64();
    let (sharding, cache) = bench_sharding_and_cache(opts, total);
    let dataset = bench_dataset(opts, total);
    let json = serde_json::json!({
        "experiments": total,
        "stride": opts.stride,
        "threads": opts.threads,
        "scratch_wall_s": scratch_wall.as_secs_f64(),
        "fork_wall_s": fork_wall.as_secs_f64(),
        "dag_wall_s": dag_wall.as_secs_f64(),
        "speedup": speedup,
        "dag_speedup": dag_speedup,
        "experiments_per_sec": total as f64 / dag_wall.as_secs_f64(),
        "modes": per_mode,
        "sharding": sharding,
        "cache": cache,
        "dataset": dataset,
    });
    let path = std::path::Path::new("BENCH_campaign.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&json).expect("serializable"),
    )
    .expect("write BENCH_campaign.json");
    println!(
        "campaign throughput: {speedup:.2}x prefix-fork, {dag_speedup:.2}x snapshot-dag \
         (vs from-scratch) on {} thread(s)",
        opts.threads
    );
    eprintln!("wrote {}", path.display());
}

/// Benchmarks the distribution features on the same delay campaign: a
/// 2-way sharded split whose merged journals must reproduce the
/// single-process metrics artifact byte for byte, and a cold/warm pass
/// over the content-addressed result cache (the warm pass must perform
/// zero simulations). Returns the `"sharding"` and `"cache"` sections of
/// `BENCH_campaign.json`.
fn bench_sharding_and_cache(
    opts: &Options,
    total: usize,
) -> (serde_json::Value, serde_json::Value) {
    use comfase::prelude::NullObserver;

    let campaign = delay_campaign(opts.stride).with_obs(ObsConfig::metrics_only());
    let scratch = std::env::temp_dir().join(format!("comfase-bench-dist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create bench scratch dir");

    // Single-process reference (with telemetry — the artifact under test).
    eprintln!("  single-process reference (telemetry on)...");
    let t = Instant::now();
    let reference = campaign.run(opts.threads).expect("reference runs");
    let single_wall = t.elapsed();
    let reference_bytes = reference
        .metrics
        .as_ref()
        .expect("metrics collection was enabled")
        .to_json_bytes();

    // 2-way sharded split, each shard journaled, then merged.
    let mut shard_walls = Vec::new();
    let mut journals = Vec::new();
    for index in 0..2 {
        let journal = scratch.join(format!("shard-{index}.journal"));
        let config = RunConfig {
            journal: Some(journal.clone()),
            shard: Some(ShardRange { index, of: 2 }),
            ..RunConfig::default()
        };
        let t = Instant::now();
        campaign
            .run_supervised(opts.threads, &config, &NullObserver)
            .expect("shard runs");
        let wall = t.elapsed();
        eprintln!("  shard {index}/2      {wall:.1?}");
        shard_walls.push(wall);
        journals.push(journal);
    }
    let t = Instant::now();
    let merged = merge_journals(&journals).expect("shard journals merge");
    let merge_wall = t.elapsed();
    assert_eq!(
        merged.to_json_bytes(),
        reference_bytes,
        "merged shard metrics must be byte-identical to the single-process artifact"
    );
    eprintln!("  merge         {merge_wall:.1?} (byte-identical)");

    // Cold then warm pass over the result cache.
    let cache_dir = scratch.join("cache");
    let cached_config = || RunConfig {
        cache: Some(
            Arc::new(DiskCache::create(&cache_dir).expect("cache dir opens"))
                as Arc<dyn ExperimentCache>,
        ),
        ..RunConfig::default()
    };
    let t = Instant::now();
    let cold = campaign
        .run_supervised(opts.threads, &cached_config(), &NullObserver)
        .expect("cold cache pass runs");
    let cold_wall = t.elapsed();
    let t = Instant::now();
    let warm = campaign
        .run_supervised(opts.threads, &cached_config(), &NullObserver)
        .expect("warm cache pass runs");
    let warm_wall = t.elapsed();
    assert_eq!(
        warm.stats.cache_hits,
        total + 1,
        "warm pass must hit for every experiment plus the golden run"
    );
    assert_eq!(
        warm.stats.forked_runs + warm.stats.scratch_runs + warm.stats.chain_forked_runs,
        0,
        "a fully warm cache performs zero simulations"
    );
    let warm_bytes = warm
        .metrics
        .as_ref()
        .expect("metrics collection was enabled")
        .to_json_bytes();
    assert_eq!(
        warm_bytes, reference_bytes,
        "warm-cache metrics must be byte-identical to the simulated artifact"
    );
    eprintln!(
        "  cache         cold {cold_wall:.1?}, warm {warm_wall:.1?} \
         ({:.0}% hit rate, zero simulations, byte-identical)",
        100.0 * warm.stats.cache_hit_rate()
    );
    let _ = std::fs::remove_dir_all(&scratch);

    (
        serde_json::json!({
            "shards": 2,
            "single_wall_s": single_wall.as_secs_f64(),
            "shard_wall_s": shard_walls.iter().map(|w| w.as_secs_f64()).collect::<Vec<_>>(),
            "merge_wall_s": merge_wall.as_secs_f64(),
            "merged_identical": true,
        }),
        serde_json::json!({
            "cold_wall_s": cold_wall.as_secs_f64(),
            "warm_wall_s": warm_wall.as_secs_f64(),
            "warm_speedup": cold_wall.as_secs_f64() / warm_wall.as_secs_f64(),
            "warm_hits": warm.stats.cache_hits,
            "warm_hit_rate": warm.stats.cache_hit_rate(),
            "warm_simulations": 0,
            "identical": true,
        }),
    )
}

/// Times the delay campaign with dataset export off vs on (telemetry on
/// in both), verifies the verdicts agree bit for bit and the exported
/// shard set merges into a complete corpus, and returns the `"dataset"`
/// section of `BENCH_campaign.json`. The export path must stay within
/// the 10% overhead budget (`overhead` in the section); with export off
/// the dataset hot paths are a single boolean test per frame/step.
fn bench_dataset(opts: &Options, total: usize) -> serde_json::Value {
    use comfase::prelude::NullObserver;

    let scratch =
        std::env::temp_dir().join(format!("comfase-bench-dataset-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create bench scratch dir");

    // Export off: the capture/export hot paths must cost nothing.
    let campaign = delay_campaign(opts.stride).with_obs(ObsConfig::metrics_only());
    let t = Instant::now();
    let off = campaign
        .run_supervised(opts.threads, &RunConfig::default(), &NullObserver)
        .expect("export-off pass runs");
    let off_wall = t.elapsed();

    // Export on: capture enabled, every experiment streamed to a shard.
    let shard_dir = scratch.join("shards");
    let campaign = delay_campaign(opts.stride).with_obs(ObsConfig::metrics_only().with_dataset());
    let config = RunConfig {
        dataset: Some(
            Arc::new(DirSink::create(&shard_dir).expect("dataset dir opens"))
                as Arc<dyn DatasetSink>,
        ),
        ..RunConfig::default()
    };
    let t = Instant::now();
    let on = campaign
        .run_supervised(opts.threads, &config, &NullObserver)
        .expect("export-on pass runs");
    let on_wall = t.elapsed();

    assert_eq!(
        on.records, off.records,
        "dataset export must not change a single verdict"
    );
    let report = merge_dataset_dirs(&[shard_dir], &scratch.join("merged"))
        .expect("exported shards merge into a complete corpus");
    assert_eq!(
        report.shards, total,
        "every experiment exports exactly one shard"
    );
    let overhead = on_wall.as_secs_f64() / off_wall.as_secs_f64() - 1.0;
    eprintln!(
        "  dataset       off {off_wall:.1?}, on {on_wall:.1?} \
         ({:+.1}% overhead, {} corpus byte(s), fnv1a64 {:016x})",
        100.0 * overhead,
        report.corpus_bytes,
        report.corpus_fnv1a64
    );
    let _ = std::fs::remove_dir_all(&scratch);

    serde_json::json!({
        "off_wall_s": off_wall.as_secs_f64(),
        "on_wall_s": on_wall.as_secs_f64(),
        "overhead": overhead,
        "overhead_budget": 0.10,
        "shards": report.shards,
        "corpus_bytes": report.corpus_bytes,
        "corpus_fnv1a64": format!("{:016x}", report.corpus_fnv1a64),
        "records_identical": true,
    })
}

/// Times the indexed vs brute-force hot paths at growing fleet sizes,
/// verifies bit-identical outcomes (substrate state, channel counters, and
/// campaign `metrics.json` bytes across indexing substrates × execution
/// modes) and writes machine-readable results to `BENCH_scale.json`.
fn run_bench_scale(opts: &Options) {
    use comfase_bench::scale;

    const ROUNDS: usize = 50;
    eprintln!(
        "benchmarking hot-path indexes: fleets {:?}, {ROUNDS} rounds each, both substrates...",
        opts.fleets
    );
    let mut points = Vec::new();
    for &fleet in &opts.fleets {
        let p = scale::run_scale_point(fleet, ROUNDS);
        eprintln!(
            "  fleet {:>5}: indexed {:>9.1?}  brute {:>9.1?}  speedup {:.2}x  \
             ({} links pruned, {} rebuilds, cell {:.1} m)",
            p.fleet,
            p.indexed_wall,
            p.brute_wall,
            p.speedup,
            p.links_pruned_by_grid,
            p.lane_rebuilds,
            p.grid_cell_m,
        );
        points.push(p);
    }

    // A small slice of the paper's delay campaign, run under all six
    // (indexing substrate × execution mode) combinations: the metrics
    // artifact must come out byte-identical every time.
    const IDENTITY_STRIDE: usize = 12;
    eprintln!(
        "verifying campaign metrics identity (stride {IDENTITY_STRIDE}, 6 configurations)..."
    );
    let mut reference: Option<Vec<u8>> = None;
    let mut experiments = 0;
    for mode in [
        ExecutionMode::SnapshotDag,
        ExecutionMode::PrefixFork,
        ExecutionMode::FromScratch,
    ] {
        for indexing in [IndexingMode::Indexed, IndexingMode::BruteForce] {
            let campaign = delay_campaign(IDENTITY_STRIDE)
                .with_obs(ObsConfig::metrics_only())
                .with_indexing(indexing);
            experiments = campaign.nr_experiments();
            let result = campaign
                .run_with_mode(opts.threads, mode)
                .unwrap_or_else(|e| die(&format!("identity-check campaign failed: {e}")));
            let bytes = result
                .metrics
                .as_ref()
                .expect("metrics collection was enabled")
                .to_json_bytes();
            match &reference {
                None => reference = Some(bytes),
                Some(r) => assert_eq!(
                    *r, bytes,
                    "metrics.json must be byte-identical across indexing \
                     substrates ({indexing:?}) and execution modes ({mode:?})"
                ),
            }
        }
    }
    let metrics_bytes = reference.map_or(0, |r| r.len());

    let json = serde_json::json!({
        "rounds": ROUNDS,
        "sender_stride": scale::SENDER_STRIDE,
        "pathloss_alpha": scale::SCALE_ALPHA,
        "fleets": points.iter().map(|p| serde_json::json!({
            "fleet": p.fleet,
            "indexed_wall_s": p.indexed_wall.as_secs_f64(),
            "brute_wall_s": p.brute_wall.as_secs_f64(),
            "speedup": p.speedup,
            "links_planned": p.links_planned,
            "links_pruned_by_grid": p.links_pruned_by_grid,
            "lane_rebuilds": p.lane_rebuilds,
            "grid_cell_m": p.grid_cell_m,
        })).collect::<Vec<_>>(),
        "campaign_identity": {
            "stride": IDENTITY_STRIDE,
            "experiments": experiments,
            "threads": opts.threads,
            "configurations": 6,
            "metrics_bytes": metrics_bytes,
            "identical": true,
        },
    });
    let path = std::path::Path::new("BENCH_scale.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&json).expect("serializable"),
    )
    .expect("write BENCH_scale.json");
    for p in &points {
        println!(
            "scale fleet {}: {:.2}x speedup (indexed vs brute force)",
            p.fleet, p.speedup
        );
    }
    eprintln!("wrote {}", path.display());
}

/// Runs the DoS campaign under four protection configurations and prints a
/// comparison table (paper §IV-C.3 discussion: redundancy mechanisms).
fn run_ablations(opts: &Options) {
    eprintln!("running protection ablations (4 × 25 DoS experiments)...");
    let build = |name: &'static str, f: &dyn Fn(&mut TrafficScenario)| {
        let mut scenario = TrafficScenario::paper_default();
        f(&mut scenario);
        let engine = Engine::new(scenario, CommModel::paper_default(), REPRO_SEED)
            .expect("paper presets are valid");
        let campaign = Campaign::new(engine, AttackCampaignSetup::paper_dos_campaign())
            .expect("valid campaign");
        (name, campaign.run(opts.threads).expect("campaign runs"))
    };
    let configs: Vec<(&'static str, CampaignResult)> = vec![
        build("unprotected (paper)", &|_| {}),
        build("radar safety monitor", &|s| {
            s.safety_monitor = Some(comfase_platoon::monitor::SafetyMonitorConfig::default());
        }),
        build("staleness failsafe 0.5s", &|s| {
            s.platoon.staleness_timeout_s = Some(0.5);
        }),
        build("monitor + failsafe", &|s| {
            s.safety_monitor = Some(comfase_platoon::monitor::SafetyMonitorConfig::default());
            s.platoon.staleness_timeout_s = Some(0.5);
        }),
    ];
    println!("== Protection ablations over the Table II DoS campaign ==");
    println!(
        "{:<24} | {:>7} | {:>7} | {:>11} | {:>14} | {:>11}",
        "configuration", "severe", "benign", "negligible", "non-effective", "collisions"
    );
    println!("{}", "-".repeat(90));
    for (name, result) in &configs {
        let s = analysis::summary(&result.records);
        let collisions: usize = result.records.iter().map(|r| r.verdict.nr_collisions).sum();
        println!(
            "{:<24} | {:>7} | {:>7} | {:>11} | {:>14} | {:>11}",
            name, s.severe, s.benign, s.negligible, s.non_effective, collisions
        );
    }
}
