// comfase-lint: host-region(reason = "scaling benchmark harness: wall-clock timing of the indexed vs brute-force hot paths; the identity checks it performs compare deterministic sim outputs")

//! Fleet-size scaling benchmark for the hot-path spatial indexes.
//!
//! Drives the two indexed substrates directly — the wireless fan-out
//! ([`Medium`] with its uniform neighbor grid) and the traffic leader
//! lookup ([`TrafficSim`] with its per-lane sorted orderings) — at growing
//! fleet sizes, once with the indexes enabled and once with the retained
//! brute-force scans, and checks bit-identical outcomes along the way.
//!
//! The wireless model is free space with α = 3.0: at the paper's α = 2.0
//! the 20 mW transmit power reaches past the 9.4 km highway, so every node
//! hears every transmission and there is nothing a spatial index could
//! prune. α = 3.0 yields a ~110 m usable radius — the regime the grid is
//! built for — while exercising exactly the same code paths.
//!
//! Wall-clock numbers live only in the returned report (and in
//! `BENCH_scale.json`); nothing here flows back into any simulation.

use std::time::{Duration, Instant};

use bytes::Bytes;
use comfase_des::rng::RngStream;
use comfase_des::time::SimTime;
use comfase_traffic::network::{LaneIndex, Road};
use comfase_traffic::simulation::{LeaderLookup, TrafficSim};
use comfase_traffic::vehicle::{Vehicle, VehicleId, VehicleSpec};
use comfase_wireless::channel::{ChannelStats, FanoutStrategy, Medium};
use comfase_wireless::frame::{NodeId, WaveChannel, Wsm};
use comfase_wireless::pathloss::FreeSpace;
use comfase_wireless::phy::PhyConfig;
use comfase_wireless::units::CCH_FREQ_HZ;

/// Path-loss exponent used by the scale bench (see module docs).
pub const SCALE_ALPHA: f64 = 3.0;

/// Every `SENDER_STRIDE`-th vehicle transmits a beacon each round.
pub const SENDER_STRIDE: u32 = 5;

/// Lane count / lane width of the bench road (the paper's highway).
const NR_LANES: u32 = 4;
const LANE_WIDTH_M: f64 = 3.2;

/// One (fleet size, substrate) measurement.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Number of vehicles (== wireless nodes).
    pub fleet: usize,
    /// Simulation rounds driven (one traffic step + one beacon volley each).
    pub rounds: usize,
    /// Wall-clock with grid fan-out + indexed leader lookup.
    pub indexed_wall: Duration,
    /// Wall-clock with brute-force fan-out + linear leader lookup.
    pub brute_wall: Duration,
    /// `brute_wall / indexed_wall`.
    pub speedup: f64,
    /// Links planned per substrate run (identical in both).
    pub links_planned: u64,
    /// Links the grid pruned without evaluating the path-loss model.
    pub links_pruned_by_grid: u64,
    /// Lane-index rebuilds in the indexed run.
    pub lane_rebuilds: u64,
    /// Grid cell size derived from the path-loss inversion.
    pub grid_cell_m: f64,
}

struct SubstrateRun {
    wall: Duration,
    stats: ChannelStats,
    lane_rebuilds: u64,
    grid_cell_m: Option<f64>,
    /// Bit-exact (pos, speed) per vehicle, for cross-substrate comparison.
    fingerprint: Vec<(u64, u64)>,
    /// Total receptions decided, as a second cross-substrate invariant.
    decisions: u64,
}

fn beacon(src: u32, sequence: u64, now: SimTime) -> Wsm {
    Wsm {
        source: NodeId(src),
        sequence: sequence as u32,
        created: now,
        channel: WaveChannel::Cch,
        payload: Bytes::from_static(b"x"),
    }
}

fn run_substrates(fleet: usize, rounds: usize, indexed: bool) -> SubstrateRun {
    let mut sim = TrafficSim::new(Road::paper_highway(), RngStream::new(7));
    let mut medium = Medium::with_models(
        Box::new(FreeSpace { alpha: SCALE_ALPHA }),
        CCH_FREQ_HZ,
        PhyConfig::default(),
    );
    if !indexed {
        sim.set_leader_lookup(LeaderLookup::Linear);
        medium.set_fanout_strategy(FanoutStrategy::BruteForce);
    }
    for i in 0..fleet as u32 {
        let lane = i % NR_LANES;
        let pos = 5.0 + f64::from(i / NR_LANES) * 30.0;
        sim.add_vehicle(Vehicle::new(
            VehicleId(i + 1),
            VehicleSpec::paper_platooning_car(),
            pos,
            LaneIndex(lane as u8),
            20.0,
        ))
        .expect("bench fleet fits on the paper highway");
        medium.update_position(NodeId(i + 1), node_position(pos, lane as u8));
    }

    let t0 = Instant::now();
    let mut decisions = 0u64;
    for round in 0..rounds {
        sim.step();
        for v in sim.vehicles() {
            medium.update_position(NodeId(v.id.0), node_position(v.state.pos_m, v.state.lane.0));
        }
        let now = SimTime::from_millis(10 * (round as i64 + 1));
        let mut planned = Vec::new();
        for v in sim.vehicles() {
            if v.id.0 % SENDER_STRIDE != 0 {
                continue;
            }
            let out = medium.transmit(NodeId(v.id.0), beacon(v.id.0, round as u64, now), now);
            for r in &out.receptions {
                medium.reception_started(r);
            }
            planned.extend(out.receptions);
        }
        for r in &planned {
            medium.reception_finished(r);
            decisions += 1;
        }
    }
    let wall = t0.elapsed();

    SubstrateRun {
        wall,
        stats: medium.stats(),
        lane_rebuilds: sim.index_rebuilds(),
        grid_cell_m: medium.grid_cell_size_m(),
        fingerprint: sim
            .vehicles()
            .iter()
            .map(|v| (v.state.pos_m.to_bits(), v.state.speed_mps.to_bits()))
            .collect(),
        decisions,
    }
}

fn node_position(pos_m: f64, lane: u8) -> comfase_wireless::geom::Position {
    comfase_wireless::geom::Position::on_road(pos_m, f64::from(lane) * LANE_WIDTH_M)
}

/// Measures one fleet size with both substrates and asserts they produced
/// bit-identical simulation outcomes.
///
/// # Panics
///
/// Panics if the indexed and brute-force runs disagree on any vehicle
/// state bit or on any channel counter other than the grid's own pruning
/// diagnostic — that would be an index correctness bug, and a speedup
/// number over diverging simulations would be meaningless.
pub fn run_scale_point(fleet: usize, rounds: usize) -> ScalePoint {
    let indexed = run_substrates(fleet, rounds, true);
    let brute = run_substrates(fleet, rounds, false);

    assert_eq!(
        indexed.fingerprint, brute.fingerprint,
        "indexed and brute-force substrates must move vehicles identically"
    );
    assert_eq!(indexed.decisions, brute.decisions);
    let mut normalized = indexed.stats;
    normalized.links_pruned_by_grid = 0;
    assert_eq!(
        normalized, brute.stats,
        "indexed and brute-force substrates must agree on every channel counter"
    );

    ScalePoint {
        fleet,
        rounds,
        indexed_wall: indexed.wall,
        brute_wall: brute.wall,
        speedup: brute.wall.as_secs_f64() / indexed.wall.as_secs_f64(),
        links_planned: indexed.stats.links_planned,
        links_pruned_by_grid: indexed.stats.links_pruned_by_grid,
        lane_rebuilds: indexed.lane_rebuilds,
        grid_cell_m: indexed.grid_cell_m.expect("grid active in indexed run"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline number behind `repro --bench-scale`: at a
    /// 1000-vehicle fleet the indexed hot paths must beat the brute-force
    /// scans by at least 5x end to end. Ignored by default (it is a
    /// wall-clock measurement, meaningless in debug builds and on
    /// oversubscribed machines); run with
    /// `cargo test --release -p comfase-bench -- --ignored`.
    #[test]
    #[ignore = "wall-clock measurement; run explicitly in release"]
    fn thousand_vehicle_fleet_speedup_is_at_least_5x() {
        let mut at_1000 = 0.0;
        for fleet in [50, 200, 1000] {
            let p = run_scale_point(fleet, 50);
            eprintln!(
                "fleet {:>4}: indexed {:?}, brute {:?}, speedup {:.2}x",
                p.fleet, p.indexed_wall, p.brute_wall, p.speedup
            );
            if fleet == 1000 {
                at_1000 = p.speedup;
            }
        }
        assert!(
            at_1000 >= 5.0,
            "expected >= 5x at 1000 vehicles, measured {at_1000:.2}x"
        );
    }

    #[test]
    fn substrates_agree_and_the_grid_prunes() {
        let p = run_scale_point(60, 5);
        assert_eq!(p.fleet, 60);
        assert!(p.links_planned > 0, "some links must be in range");
        assert!(
            p.links_pruned_by_grid > 0,
            "at alpha = 3.0 a 60-vehicle fleet spans ~300 m per lane, well \
             beyond the ~110 m radius, so the grid must prune something"
        );
        assert!(p.lane_rebuilds >= 1);
        assert!(p.grid_cell_m > 1.0 && p.grid_cell_m < 1000.0);
    }
}
