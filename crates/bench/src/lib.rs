//! Shared helpers for the ComFASE-RS reproduction harness and benches.
//!
//! The `repro` binary (`cargo run --release -p comfase-bench --bin repro`)
//! regenerates every table and figure of the paper's evaluation section;
//! the Criterion benches measure the performance of the substrates and of
//! whole experiments.

#![warn(missing_docs)]

use comfase::prelude::*;

pub mod scale;

/// Default campaign seed used across the reproduction (fixed for
/// determinism; any seed reproduces the same shapes).
pub const REPRO_SEED: u64 = 42;

/// Builds the paper's engine (§IV-A scenario and communication model).
pub fn paper_engine() -> Engine {
    Engine::paper_default(REPRO_SEED).expect("paper presets are valid")
}

/// The Table II delay campaign (11 250 experiments), optionally reduced
/// for quick runs: `stride` subsamples every vector (stride 1 = full).
pub fn delay_campaign(stride: usize) -> Campaign {
    let mut setup = AttackCampaignSetup::paper_delay_campaign();
    if stride > 1 {
        setup.attack_values = stride_vec(&setup.attack_values, stride);
        setup.attack_starts_s = stride_vec(&setup.attack_starts_s, stride);
        setup.attack_durations_s = stride_vec(&setup.attack_durations_s, stride);
    }
    Campaign::new(paper_engine(), setup).expect("paper campaign is valid")
}

/// The Table II DoS campaign (25 experiments).
pub fn dos_campaign() -> Campaign {
    Campaign::new(paper_engine(), AttackCampaignSetup::paper_dos_campaign())
        .expect("paper campaign is valid")
}

fn stride_vec(v: &[f64], stride: usize) -> Vec<f64> {
    v.iter().step_by(stride).copied().collect()
}

/// Number of worker threads to use: all available cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_delay_campaign_counts() {
        assert_eq!(delay_campaign(1).nr_experiments(), 11_250);
        assert_eq!(dos_campaign().nr_experiments(), 25);
    }

    #[test]
    fn strided_campaign_shrinks() {
        let c = delay_campaign(3);
        // ceil(15/3) * ceil(25/3) * ceil(30/3) = 5 * 9 * 10
        assert_eq!(c.nr_experiments(), 450);
    }

    #[test]
    fn threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
