//! Calibration probes against the paper's reported behaviour.
//!
//! These tests assert the *shape* requirements that the reproduction must
//! satisfy (paper §IV-C); the `-- --ignored --nocapture` run prints the
//! measured values used in EXPERIMENTS.md.

use comfase::attack::{AttackModelKind, AttackSpec};
use comfase::classify::Classification;
use comfase::engine::Engine;
use comfase_des::time::SimTime;

fn engine() -> Engine {
    Engine::paper_default(42).unwrap()
}

#[test]
fn golden_max_decel_is_near_paper_value() {
    let golden = engine().golden_run().unwrap();
    let d = golden.max_decel();
    assert!(
        (1.2..=1.9).contains(&d),
        "golden max decel {d} should be near the paper's 1.53 m/s²"
    );
    assert!(!golden.has_collision());
}

#[test]
fn dos_attacks_are_always_severe_with_collisions() {
    // Paper §IV-C.2: all 25 DoS experiments are severe, all collisions.
    let e = engine();
    let golden = e.golden_run().unwrap();
    for start in [17.0, 18.2, 19.4, 20.6, 21.8] {
        let attack = AttackSpec {
            model: AttackModelKind::Dos,
            value: 60.0,
            targets: vec![2].into(),
            start: SimTime::from_secs_f64(start),
            end: SimTime::from_secs(60),
        };
        let run = e.run_experiment(&attack, 0).unwrap();
        let v = e.classify_experiment(&golden, &run);
        assert_eq!(
            v.class,
            Classification::Severe,
            "DoS at {start}s must be severe, got {v:?}"
        );
        assert!(v.first_collision.is_some(), "DoS at {start}s must collide");
    }
}

#[test]
fn long_high_delay_attack_is_severe() {
    // Paper Fig. 6: high PD values overwhelmingly produce severe cases.
    let e = engine();
    let golden = e.golden_run().unwrap();
    let attack = AttackSpec {
        model: AttackModelKind::Delay,
        value: 3.0,
        targets: vec![2].into(),
        start: SimTime::from_secs(17),
        end: SimTime::from_secs(47),
    };
    let run = e.run_experiment(&attack, 0).unwrap();
    let v = e.classify_experiment(&golden, &run);
    assert_eq!(v.class, Classification::Severe, "{v:?}");
}

#[test]
#[ignore = "exploration probe; run with --ignored --nocapture"]
fn probe_shapes() {
    let e = engine();
    let t0 = std::time::Instant::now();
    let golden = e.golden_run().unwrap();
    println!("golden run wall time: {:?}", t0.elapsed());
    println!("golden max decel: {:.3}", golden.max_decel());
    for v in [1u32, 2, 3, 4] {
        let tr = golden.trace.vehicle(comfase_traffic::VehicleId(v)).unwrap();
        println!(
            "veh {v}: max decel {:.3}, max accel {:.3}, speed [{:.2},{:.2}]",
            tr.max_decel(),
            tr.max_accel(),
            tr.speed.min_value().unwrap(),
            tr.speed.max_value().unwrap()
        );
    }
    // Delay attack grid probe.
    for pd in [0.2, 0.6, 1.0, 2.2, 3.0] {
        for dur in [1.0, 3.0, 5.0, 10.0] {
            let attack = AttackSpec {
                model: AttackModelKind::Delay,
                value: pd,
                targets: vec![2].into(),
                start: SimTime::from_secs(17),
                end: SimTime::from_secs_f64(17.0 + dur),
            };
            let t = std::time::Instant::now();
            let run = e.run_experiment(&attack, 0).unwrap();
            let v = e.classify_experiment(&golden, &run);
            println!(
                "pd={pd:3.1} dur={dur:4.1} -> {:13} decel {:5.2} collider {:?} ({:?})",
                v.class.to_string(),
                v.max_decel_mps2,
                v.collider(),
                t.elapsed()
            );
        }
    }
    // Start-time sweep at fixed pd/duration.
    for start in [17.0, 17.6, 18.2, 18.8, 19.4, 20.0, 20.6, 21.2, 21.8] {
        let attack = AttackSpec {
            model: AttackModelKind::Delay,
            value: 1.0,
            targets: vec![2].into(),
            start: SimTime::from_secs_f64(start),
            end: SimTime::from_secs_f64(start + 5.0),
        };
        let run = e.run_experiment(&attack, 0).unwrap();
        let v = e.classify_experiment(&golden, &run);
        println!(
            "start={start:4.1} -> {:13} decel {:5.2} collider {:?}",
            v.class.to_string(),
            v.max_decel_mps2,
            v.collider()
        );
    }
}
