//! Attack and fault models (paper §III-B, Table I).
//!
//! ComFASE models communication attacks by editing parameters of the
//! simulated communication models. The paper demonstrates two models, both
//! implemented by overriding Veins' **propagation delay** parameter in the
//! wireless channel between the sender & receiver modules:
//!
//! - **Delay** — messages to/from the target vehicle are blocked and
//!   retransmitted later (reactive jamming + replay): propagation delay is
//!   set to the attack value for the duration of the attack;
//! - **DoS** — the target's communication is disabled entirely: propagation
//!   delay is set to `totalSimTime`, so no blocked message arrives before
//!   the simulation ends.
//!
//! The tool is explicitly designed to be extensible with further models
//! ("fault and attack models are implemented in separate scripts"); in the
//! same spirit this module also ships the related-work models: probabilistic
//! frame **drop** (jamming, Heijden et al.) and **falsification** of
//! position/speed/acceleration in transit (Iorio et al., Boeira et al.).
//!
//! Every model materialises as a [`ChannelInterceptor`] installed on the
//! medium by the engine for the attack window — ComFASE's
//! `CommModelEditor` step.

use std::collections::BTreeSet;
use std::sync::Arc;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use comfase_des::rng::RngStream;
use comfase_des::time::{SimDuration, SimTime};
use comfase_platoon::beacon::PlatoonBeacon;
use comfase_wireless::channel::{ChannelInterceptor, LinkFate};
use comfase_wireless::frame::{NodeId, Wsm};

/// Which beacon field a falsification attack rewrites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FalsifiedField {
    /// Vehicle position.
    Position,
    /// Vehicle speed.
    Speed,
    /// Vehicle acceleration.
    Acceleration,
}

/// The attack model selector — the paper's `attackModel` input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackModelKind {
    /// Delay attack: propagation delay := attack value (seconds).
    Delay,
    /// Denial-of-service: propagation delay := `totalSimTime`.
    Dos,
    /// Probabilistic frame drop (jamming); attack value = loss probability.
    Drop,
    /// Falsification of a beacon field in transit; attack value = additive
    /// offset applied to the field.
    Falsify(FalsifiedField),
}

impl AttackModelKind {
    /// Name as used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            AttackModelKind::Delay => "Delay",
            AttackModelKind::Dos => "DoS",
            AttackModelKind::Drop => "Drop",
            AttackModelKind::Falsify(FalsifiedField::Position) => "Falsify-Position",
            AttackModelKind::Falsify(FalsifiedField::Speed) => "Falsify-Speed",
            AttackModelKind::Falsify(FalsifiedField::Acceleration) => "Falsify-Acceleration",
        }
    }

    /// The simulation parameter the model edits (Table I, "Target
    /// parameter").
    pub fn target_parameter(&self) -> &'static str {
        match self {
            AttackModelKind::Delay | AttackModelKind::Dos => "Propagation delay (PD)",
            AttackModelKind::Drop => "Frame delivery",
            AttackModelKind::Falsify(_) => "Beacon payload",
        }
    }

    /// Real-world attack description (Table I, "Examples").
    pub fn real_world_example(&self) -> &'static str {
        match self {
            AttackModelKind::Delay => {
                "Catching the messages between vehicles, which are blocked from \
                 reaching the receiver (e.g., using reactive jamming), and \
                 re-transmitting them at a later time."
            }
            AttackModelKind::Dos => {
                "Disabling the ability of a vehicle to communicate with other \
                 vehicles in a traffic by jamming the communication."
            }
            AttackModelKind::Drop => {
                "Degrading the wireless link with broadband noise jamming so \
                 that a fraction of the frames is lost."
            }
            AttackModelKind::Falsify(_) => {
                "Injecting forged kinematic data into the V2V messages of a \
                 vehicle (message falsification / injection attack)."
            }
        }
    }

    /// `true` when [`AttackSpec::build_interceptor`] yields the same
    /// interceptor regardless of the per-experiment seed.
    ///
    /// Seed-invariant models (delay, DoS, falsification) install stateless
    /// interceptors, so experiments that differ only in attack *duration*
    /// produce identical event streams while the attack is active — the
    /// snapshot-DAG campaign mode exploits this to simulate the shared
    /// attack segment once and fork each duration's leaf mid-attack.
    /// Probabilistic drop seeds a per-experiment RNG and must never be
    /// chained that way.
    pub fn seed_invariant(&self) -> bool {
        !matches!(self, AttackModelKind::Drop)
    }
}

/// One concrete attack to inject in one experiment: model + value + targets
/// + time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackSpec {
    /// The attack model.
    pub model: AttackModelKind,
    /// Model parameter: PD seconds (delay/DoS), loss probability (drop),
    /// or field offset (falsification).
    pub value: f64,
    /// Vehicles under attack (`targetVehicles`).
    ///
    /// Shared (`Arc`) because a campaign clones the spec into every
    /// experiment and every record; serialized as a plain sequence.
    #[serde(with = "serde_targets")]
    pub targets: Arc<[u32]>,
    /// Attack initiation time.
    pub start: SimTime,
    /// Attack end time (exclusive).
    pub end: SimTime,
}

impl AttackSpec {
    /// Attack duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Builds the channel interceptor implementing this attack.
    ///
    /// `seed` feeds the deterministic RNG of probabilistic models.
    pub fn build_interceptor(&self, seed: u64) -> Box<dyn ChannelInterceptor> {
        // BTreeSet keeps interceptor state order-deterministic for
        // snapshot/fork runs (membership-only today, but cheap insurance).
        let targets: BTreeSet<NodeId> = self.targets.iter().map(|&v| NodeId(v)).collect();
        match self.model {
            AttackModelKind::Delay | AttackModelKind::Dos => Box::new(DelayInterceptor {
                delay: SimDuration::from_secs_f64(self.value),
                targets,
            }),
            AttackModelKind::Drop => Box::new(DropInterceptor {
                probability: self.value,
                targets,
                rng: RngStream::new(seed ^ 0xD509_AF53_7C29_11ED),
            }),
            AttackModelKind::Falsify(field) => Box::new(FalsifyInterceptor {
                field,
                offset: self.value,
                targets,
            }),
        }
    }
}

/// Serde adapter for `Arc<[u32]>` (the workspace `serde` has no `rc`
/// feature): serialized exactly like a `Vec<u32>`.
mod serde_targets {
    use std::sync::Arc;

    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(targets: &Arc<[u32]>, s: S) -> Result<S::Ok, S::Error> {
        targets.as_ref().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Arc<[u32]>, D::Error> {
        Ok(Vec::<u32>::deserialize(d)?.into())
    }
}

fn link_targeted(targets: &BTreeSet<NodeId>, tx: NodeId, rx: NodeId) -> bool {
    // The attacks are injected in the sender & receiver modules of the
    // target vehicle (§IV-A.3): both its outgoing and incoming messages
    // are affected.
    targets.contains(&tx) || targets.contains(&rx)
}

/// Delay / DoS attack: overrides the propagation delay on targeted links.
#[derive(Debug)]
struct DelayInterceptor {
    delay: SimDuration,
    targets: BTreeSet<NodeId>,
}

impl ChannelInterceptor for DelayInterceptor {
    fn intercept(
        &mut self,
        tx: NodeId,
        rx: NodeId,
        _now: SimTime,
        default_delay: SimDuration,
        _wsm: &Wsm,
    ) -> LinkFate {
        if link_targeted(&self.targets, tx, rx) {
            LinkFate::Deliver { delay: self.delay }
        } else {
            LinkFate::Deliver {
                delay: default_delay,
            }
        }
    }
}

/// Probabilistic frame drop on targeted links (jamming).
#[derive(Debug)]
struct DropInterceptor {
    probability: f64,
    targets: BTreeSet<NodeId>,
    rng: RngStream,
}

impl ChannelInterceptor for DropInterceptor {
    fn intercept(
        &mut self,
        tx: NodeId,
        rx: NodeId,
        _now: SimTime,
        default_delay: SimDuration,
        _wsm: &Wsm,
    ) -> LinkFate {
        if link_targeted(&self.targets, tx, rx)
            && self.rng.bernoulli(self.probability.clamp(0.0, 1.0))
        {
            LinkFate::Drop
        } else {
            LinkFate::Deliver {
                delay: default_delay,
            }
        }
    }
}

/// Falsification attack: rewrites one field of the platooning beacon on
/// frames **sent by** a target vehicle.
#[derive(Debug)]
struct FalsifyInterceptor {
    field: FalsifiedField,
    offset: f64,
    targets: BTreeSet<NodeId>,
}

impl ChannelInterceptor for FalsifyInterceptor {
    fn intercept(
        &mut self,
        tx: NodeId,
        _rx: NodeId,
        _now: SimTime,
        default_delay: SimDuration,
        wsm: &Wsm,
    ) -> LinkFate {
        if !self.targets.contains(&tx) {
            return LinkFate::Deliver {
                delay: default_delay,
            };
        }
        match PlatoonBeacon::decode(Bytes::clone(&wsm.payload)) {
            Ok(mut beacon) => {
                match self.field {
                    FalsifiedField::Position => beacon.pos_m += self.offset,
                    FalsifiedField::Speed => beacon.speed_mps += self.offset,
                    FalsifiedField::Acceleration => beacon.accel_mps2 += self.offset,
                }
                let mut modified = wsm.clone();
                modified.payload = beacon.encode();
                LinkFate::DeliverModified {
                    delay: default_delay,
                    wsm: modified,
                }
            }
            // Not a platooning beacon: leave it alone.
            Err(_) => LinkFate::Deliver {
                delay: default_delay,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comfase_wireless::frame::WaveChannel;

    fn wsm_from(v: u32) -> Wsm {
        let beacon = PlatoonBeacon {
            vehicle: v,
            pos_m: 100.0,
            speed_mps: 27.0,
            accel_mps2: 1.0,
            sampled: SimTime::from_secs(17),
        };
        Wsm {
            source: NodeId(v),
            sequence: 1,
            created: SimTime::from_secs(17),
            channel: WaveChannel::Cch,
            payload: beacon.encode(),
        }
    }

    fn spec(model: AttackModelKind, value: f64) -> AttackSpec {
        AttackSpec {
            model,
            value,
            targets: vec![2].into(),
            start: SimTime::from_secs(17),
            end: SimTime::from_secs(20),
        }
    }

    #[test]
    fn duration_is_end_minus_start() {
        assert_eq!(
            spec(AttackModelKind::Delay, 1.0).duration(),
            SimDuration::from_secs(3)
        );
    }

    #[test]
    fn delay_interceptor_targets_sender_and_receiver() {
        let mut i = spec(AttackModelKind::Delay, 3.0).build_interceptor(1);
        let dflt = SimDuration::from_nanos(100);
        // Message sent by the target.
        let fate = i.intercept(NodeId(2), NodeId(1), SimTime::ZERO, dflt, &wsm_from(2));
        assert_eq!(
            fate,
            LinkFate::Deliver {
                delay: SimDuration::from_secs(3)
            }
        );
        // Message received by the target.
        let fate = i.intercept(NodeId(1), NodeId(2), SimTime::ZERO, dflt, &wsm_from(1));
        assert_eq!(
            fate,
            LinkFate::Deliver {
                delay: SimDuration::from_secs(3)
            }
        );
        // Unrelated link untouched.
        let fate = i.intercept(NodeId(3), NodeId(4), SimTime::ZERO, dflt, &wsm_from(3));
        assert_eq!(fate, LinkFate::Deliver { delay: dflt });
    }

    #[test]
    fn dos_is_delay_with_total_sim_time() {
        let mut i = spec(AttackModelKind::Dos, 60.0).build_interceptor(1);
        let fate = i.intercept(
            NodeId(2),
            NodeId(3),
            SimTime::ZERO,
            SimDuration::from_nanos(50),
            &wsm_from(2),
        );
        assert_eq!(
            fate,
            LinkFate::Deliver {
                delay: SimDuration::from_secs(60)
            }
        );
    }

    #[test]
    fn drop_interceptor_is_probabilistic_and_deterministic() {
        let run = |seed| {
            let mut i = spec(AttackModelKind::Drop, 0.5).build_interceptor(seed);
            (0..100)
                .map(|_| {
                    matches!(
                        i.intercept(
                            NodeId(2),
                            NodeId(1),
                            SimTime::ZERO,
                            SimDuration::from_nanos(50),
                            &wsm_from(2)
                        ),
                        LinkFate::Drop
                    )
                })
                .collect::<Vec<_>>()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same drops");
        let dropped = a.iter().filter(|&&d| d).count();
        assert!(
            (20..=80).contains(&dropped),
            "~50% drop rate, got {dropped}"
        );
    }

    #[test]
    fn drop_never_affects_untargeted_links() {
        let mut i = spec(AttackModelKind::Drop, 1.0).build_interceptor(3);
        for _ in 0..20 {
            let fate = i.intercept(
                NodeId(3),
                NodeId(4),
                SimTime::ZERO,
                SimDuration::from_nanos(50),
                &wsm_from(3),
            );
            assert!(matches!(fate, LinkFate::Deliver { .. }));
        }
    }

    #[test]
    fn falsify_speed_adds_offset_on_sent_frames() {
        let mut i =
            spec(AttackModelKind::Falsify(FalsifiedField::Speed), 10.0).build_interceptor(1);
        let fate = i.intercept(
            NodeId(2),
            NodeId(3),
            SimTime::ZERO,
            SimDuration::from_nanos(50),
            &wsm_from(2),
        );
        match fate {
            LinkFate::DeliverModified { wsm, .. } => {
                let b = PlatoonBeacon::decode(wsm.payload).unwrap();
                assert_eq!(b.speed_mps, 37.0);
                assert_eq!(b.pos_m, 100.0, "other fields untouched");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn falsify_only_affects_frames_sent_by_target() {
        let mut i =
            spec(AttackModelKind::Falsify(FalsifiedField::Acceleration), 5.0).build_interceptor(1);
        // Frame *to* the target keeps its payload.
        let fate = i.intercept(
            NodeId(1),
            NodeId(2),
            SimTime::ZERO,
            SimDuration::from_nanos(50),
            &wsm_from(1),
        );
        assert!(matches!(fate, LinkFate::Deliver { .. }));
    }

    #[test]
    fn falsify_position_and_accel_fields() {
        for (field, check) in [
            (FalsifiedField::Position, 103.0),
            (FalsifiedField::Acceleration, 4.0),
        ] {
            let mut i = spec(AttackModelKind::Falsify(field), 3.0).build_interceptor(1);
            match i.intercept(
                NodeId(2),
                NodeId(3),
                SimTime::ZERO,
                SimDuration::ZERO,
                &wsm_from(2),
            ) {
                LinkFate::DeliverModified { wsm, .. } => {
                    let b = PlatoonBeacon::decode(wsm.payload).unwrap();
                    let got = match field {
                        FalsifiedField::Position => b.pos_m,
                        FalsifiedField::Acceleration => b.accel_mps2,
                        FalsifiedField::Speed => unreachable!(),
                    };
                    assert_eq!(got, check);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn falsify_leaves_non_beacon_payloads_alone() {
        let mut i =
            spec(AttackModelKind::Falsify(FalsifiedField::Speed), 10.0).build_interceptor(1);
        let mut wsm = wsm_from(2);
        wsm.payload = Bytes::from_static(b"not a beacon");
        let fate = i.intercept(NodeId(2), NodeId(3), SimTime::ZERO, SimDuration::ZERO, &wsm);
        assert!(matches!(fate, LinkFate::Deliver { .. }));
    }

    #[test]
    fn table_i_registry() {
        assert_eq!(AttackModelKind::Delay.name(), "Delay");
        assert_eq!(
            AttackModelKind::Dos.target_parameter(),
            "Propagation delay (PD)"
        );
        assert!(AttackModelKind::Delay
            .real_world_example()
            .contains("reactive jamming"));
        assert!(AttackModelKind::Dos
            .real_world_example()
            .contains("jamming"));
        assert_eq!(
            AttackModelKind::Falsify(FalsifiedField::Speed).name(),
            "Falsify-Speed"
        );
    }
}
