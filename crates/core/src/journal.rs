// comfase-lint: host-region(reason = "journal writer: durable append-only file I/O at the campaign boundary; entries are keyed by experiment index so replay order cannot affect merged metrics")

//! Append-only campaign journal for checkpoint/resume.
//!
//! A campaign run with a journal path writes one JSON line per *finished*
//! experiment — completed or failed — to an append-only file, fsync'd after
//! every line. If the process is killed (OOM, SIGKILL, power loss), a later
//! [`Campaign::resume`](crate::campaign::Campaign::resume) replays the
//! journal, skips the experiments already completed, re-runs the failed and
//! missing ones, and produces a [`CampaignResult`](crate::campaign::CampaignResult)
//! whose metrics are **byte-identical** to an uninterrupted run:
//!
//! - every journal line is a self-contained [`JournalEntry`] — no state is
//!   spread across lines, so replay order does not matter (the campaign
//!   sorts by experiment index when merging);
//! - [`ExperimentMetrics`] survive a JSON round-trip exactly (serde_json
//!   prints `f64` with Ryu shortest-representation and parses it back to
//!   the same bits), so journaled rows merge bit-for-bit with fresh ones;
//! - the header pins the campaign identity (engine seed, experiment count,
//!   attack campaign setup) and resume refuses a journal written by a
//!   different campaign.
//!
//! # Torn writes
//!
//! A kill can land mid-`write`, leaving a truncated final line. The reader
//! tolerates an unparseable **final** line (the experiment it described is
//! simply re-run); an unparseable line *followed by* more entries means the
//! file was corrupted some other way and is reported as an error.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use comfase_obs::ExperimentMetrics;

use crate::campaign::{ExperimentFailure, ExperimentRecord, ShardRange};
use crate::config::AttackCampaignSetup;
use crate::error::ComfaseError;

/// Version stamp written in the journal header; bumped on breaking layout
/// changes so a resume against an old journal fails loudly.
///
/// v2: the header carries the canonical campaign fingerprint (full-config
/// identity — see [`crate::fingerprint`]) and an optional shard range, and
/// a `golden` entry with the golden-run metrics row follows the header so
/// shard journals merge into a complete `metrics.json` without
/// re-simulating anything.
pub const JOURNAL_SCHEMA_VERSION: u32 = 2;

/// One line of the campaign journal.
///
/// Entries are transient — built, serialized, and dropped one at a time —
/// so the size imbalance between the fat `Completed` variant and the thin
/// `Failed` one costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "entry", rename_all = "snake_case")]
pub enum JournalEntry {
    /// First line of every journal: identifies the campaign the journal
    /// belongs to. Resume checks it against the resuming campaign.
    Header {
        /// Journal layout version ([`JOURNAL_SCHEMA_VERSION`]).
        schema_version: u32,
        /// Engine seed of the writing campaign.
        seed: u64,
        /// Total number of experiments in the expanded campaign — the
        /// *whole* campaign, not the shard's slice.
        total: usize,
        /// Canonical fingerprint of the full campaign configuration
        /// (seed, scenario, comm model, setup, budget, telemetry — see
        /// [`crate::fingerprint::campaign_fingerprint`]). Resume and merge
        /// refuse journals whose fingerprint differs: the `setup` field
        /// alone cannot see a changed scenario or communication model.
        #[serde(default)]
        fingerprint: u64,
        /// The shard of the experiment index space this journal covers;
        /// `None` for an unsharded campaign.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        shard: Option<ShardRange>,
        /// The attack campaign setup (expansion input).
        setup: AttackCampaignSetup,
    },
    /// Second line of every journal: the golden (attack-free) reference
    /// run's metrics row, present when the campaign collects telemetry.
    /// Recorded so shard journals carry everything `metrics.json` needs —
    /// a merge never re-simulates.
    Golden {
        /// Golden-run metrics row ([`ExperimentMetrics`]), when collected.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        metrics: Option<ExperimentMetrics>,
    },
    /// An experiment finished successfully.
    Completed {
        /// Experiment index within the expanded campaign.
        index: usize,
        /// The classified record (spec + verdict).
        record: ExperimentRecord,
        /// Per-experiment metrics row, present when the campaign collects
        /// metrics. Required for a resumed run to reproduce `metrics.json`
        /// byte-identically.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        metrics: Option<ExperimentMetrics>,
    },
    /// An experiment failed terminally (after any retries).
    Failed {
        /// The structured failure description.
        failure: ExperimentFailure,
    },
}

/// Serialised writer appending fsync'd JSON lines to a journal file.
///
/// All campaign workers share one writer behind a mutex: a journal line is
/// written and flushed to disk *before* the experiment is counted done, so
/// a kill at any instant loses at most the experiment currently in flight.
#[derive(Debug)]
pub struct JournalWriter {
    file: Mutex<File>,
    path: PathBuf,
}

impl JournalWriter {
    /// Creates (truncating) a journal at `path` and writes the header line.
    pub fn create(path: &Path, header: &JournalEntry) -> Result<Self, ComfaseError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| io_err(path, &e))?;
            }
        }
        let file = File::create(path).map_err(|e| io_err(path, &e))?;
        let writer = JournalWriter {
            file: Mutex::new(file),
            path: path.to_path_buf(),
        };
        writer.append(header)?;
        Ok(writer)
    }

    /// Opens an existing journal at `path` for appending (resume).
    pub fn append_to(path: &Path) -> Result<Self, ComfaseError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        Ok(JournalWriter {
            file: Mutex::new(file),
            path: path.to_path_buf(),
        })
    }

    /// Appends one entry as a single JSON line and fsyncs the file data.
    pub fn append(&self, entry: &JournalEntry) -> Result<(), ComfaseError> {
        let mut line = serde_json::to_vec(entry)
            .map_err(|e| ComfaseError::Io(format!("journal encode: {e}")))?;
        line.push(b'\n');
        let mut file = self.file.lock();
        file.write_all(&line).map_err(|e| io_err(&self.path, &e))?;
        file.sync_data().map_err(|e| io_err(&self.path, &e))?;
        Ok(())
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> ComfaseError {
    ComfaseError::Io(format!("journal {}: {e}", path.display()))
}

/// Header fields of a parsed journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalHeader {
    /// Journal layout version.
    pub schema_version: u32,
    /// Engine seed of the writing campaign.
    pub seed: u64,
    /// Total experiments of the whole campaign.
    pub total: usize,
    /// Canonical full-config fingerprint.
    pub fingerprint: u64,
    /// Shard covered by this journal, `None` when unsharded.
    pub shard: Option<ShardRange>,
    /// The attack campaign setup.
    pub setup: AttackCampaignSetup,
}

/// Parsed journal contents, deduplicated by experiment index (last wins).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalState {
    /// Header fields, if a header line was present.
    pub header: Option<JournalHeader>,
    /// Golden-run metrics row, if a golden entry carried one.
    pub golden: Option<ExperimentMetrics>,
    /// Completed experiments by index: record plus optional metrics row.
    pub completed: BTreeMap<usize, (ExperimentRecord, Option<ExperimentMetrics>)>,
    /// Terminal failures by index. An index later journaled as completed
    /// (a successful re-run after resume) is removed from this map.
    pub failures: BTreeMap<usize, ExperimentFailure>,
}

impl JournalState {
    /// Verifies the journal was written by a campaign with the same
    /// identity — seed, experiment count, setup, canonical full-config
    /// fingerprint, shard — and a supported schema version.
    ///
    /// A malformed journal (no header, unsupported schema) is
    /// [`ComfaseError::Io`]; a well-formed journal that belongs to a
    /// *different* campaign is [`ComfaseError::InvalidConfig`] — the
    /// caller's configuration, not the file, is what disagrees.
    pub fn check_identity(
        &self,
        seed: u64,
        total: usize,
        setup: &AttackCampaignSetup,
        fingerprint: u64,
        shard: Option<ShardRange>,
    ) -> Result<(), ComfaseError> {
        let Some(header) = &self.header else {
            return Err(ComfaseError::Io(
                "journal has no header line; refusing to resume".into(),
            ));
        };
        if header.schema_version != JOURNAL_SCHEMA_VERSION {
            return Err(ComfaseError::Io(format!(
                "journal schema version {} != supported {JOURNAL_SCHEMA_VERSION}",
                header.schema_version
            )));
        }
        if header.seed != seed || header.total != total || header.setup != *setup {
            return Err(ComfaseError::InvalidConfig(format!(
                "journal belongs to a different campaign \
                 (journal: seed {}, {} experiments; \
                 resuming: seed {seed}, {total} experiments)",
                header.seed, header.total
            )));
        }
        if header.fingerprint != fingerprint {
            return Err(ComfaseError::InvalidConfig(format!(
                "journal belongs to a different campaign configuration \
                 (journal fingerprint {:016x}, resuming {fingerprint:016x}): \
                 the scenario, comm model, budget or telemetry config changed",
                header.fingerprint
            )));
        }
        if header.shard != shard {
            return Err(ComfaseError::InvalidConfig(format!(
                "journal covers shard {} but the resuming campaign runs {}",
                describe_shard(header.shard),
                describe_shard(shard)
            )));
        }
        Ok(())
    }
}

fn describe_shard(shard: Option<ShardRange>) -> String {
    match shard {
        Some(s) => format!("{}/{}", s.index, s.of),
        None => "unsharded".to_string(),
    }
}

/// Reads and folds a journal file into a [`JournalState`].
///
/// Tolerates a truncated (torn-write) **final** line; any other parse
/// failure is an error. See the module docs for the rationale.
pub fn read_journal(path: &Path) -> Result<JournalState, ComfaseError> {
    let contents = std::fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
    let lines: Vec<&str> = contents.split('\n').collect();
    let mut state = JournalState::default();
    for (lineno, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry: JournalEntry = match serde_json::from_str(line) {
            Ok(entry) => entry,
            Err(e) => {
                // A torn write can only truncate the *last* line: everything
                // after it must be empty for the failure to be tolerable.
                let rest_empty = lines[lineno + 1..].iter().all(|l| l.trim().is_empty());
                if rest_empty {
                    break;
                }
                return Err(ComfaseError::Io(format!(
                    "journal {}: corrupt entry at line {}: {e}",
                    path.display(),
                    lineno + 1
                )));
            }
        };
        match entry {
            JournalEntry::Header {
                schema_version,
                seed,
                total,
                fingerprint,
                shard,
                setup,
            } => {
                state.header = Some(JournalHeader {
                    schema_version,
                    seed,
                    total,
                    fingerprint,
                    shard,
                    setup,
                });
            }
            JournalEntry::Golden { metrics } => {
                state.golden = metrics;
            }
            JournalEntry::Completed {
                index,
                record,
                metrics,
            } => {
                state.failures.remove(&index);
                state.completed.insert(index, (record, metrics));
            }
            JournalEntry::Failed { failure } => {
                state.failures.insert(failure.index, failure);
            }
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{AttackModelKind, AttackSpec};
    use crate::campaign::FailureKind;
    use crate::classify::{Classification, Verdict};
    use comfase_des::time::SimTime;

    fn setup() -> AttackCampaignSetup {
        AttackCampaignSetup {
            attack_model: AttackModelKind::Delay,
            target_vehicles: vec![2],
            attack_values: vec![0.5],
            attack_starts_s: vec![17.0],
            attack_durations_s: vec![2.0],
        }
    }

    fn spec() -> AttackSpec {
        AttackSpec {
            model: AttackModelKind::Delay,
            value: 0.5,
            targets: vec![2].into(),
            start: SimTime::from_secs(17),
            end: SimTime::from_secs(19),
        }
    }

    fn record(index: usize) -> ExperimentRecord {
        ExperimentRecord {
            index,
            spec: spec(),
            verdict: Verdict {
                class: Classification::Benign,
                max_decel_mps2: 3.5,
                max_speed_deviation_mps: 0.4,
                first_collision: None,
                nr_collisions: 0,
            },
        }
    }

    const TEST_FINGERPRINT: u64 = 0xdead_beef_cafe_f00d;

    fn header() -> JournalEntry {
        JournalEntry::Header {
            schema_version: JOURNAL_SCHEMA_VERSION,
            seed: 42,
            total: 8,
            fingerprint: TEST_FINGERPRINT,
            shard: None,
            setup: setup(),
        }
    }

    #[test]
    fn round_trips_entries_through_a_file() {
        let dir = std::env::temp_dir().join("comfase-journal-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.journal");
        let writer = JournalWriter::create(&path, &header()).unwrap();
        writer
            .append(&JournalEntry::Completed {
                index: 3,
                record: record(3),
                metrics: None,
            })
            .unwrap();
        let failure = ExperimentFailure {
            index: 5,
            kind: FailureKind::Panicked,
            payload: "boom".into(),
            seed: 42,
            spec: spec(),
            attempts: 1,
        };
        writer
            .append(&JournalEntry::Failed {
                failure: failure.clone(),
            })
            .unwrap();
        drop(writer);

        let state = read_journal(&path).unwrap();
        state
            .check_identity(42, 8, &setup(), TEST_FINGERPRINT, None)
            .unwrap();
        assert_eq!(state.completed.len(), 1);
        assert_eq!(state.completed[&3].0, record(3));
        assert_eq!(state.failures[&5], failure);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_line_is_tolerated() {
        let dir = std::env::temp_dir().join("comfase-journal-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.journal");
        let writer = JournalWriter::create(&path, &header()).unwrap();
        writer
            .append(&JournalEntry::Completed {
                index: 0,
                record: record(0),
                metrics: None,
            })
            .unwrap();
        drop(writer);
        // Simulate a kill mid-write: append half a JSON line, no newline.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"entry\":\"completed\",\"ind").unwrap();
        drop(file);

        let state = read_journal(&path).unwrap();
        assert_eq!(state.completed.len(), 1);
        assert!(state.completed.contains_key(&0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_before_the_end_is_an_error() {
        let dir = std::env::temp_dir().join("comfase-journal-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.journal");
        let writer = JournalWriter::create(&path, &header()).unwrap();
        drop(writer);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"garbage-not-json\n").unwrap();
        let entry = serde_json::to_string(&JournalEntry::Completed {
            index: 1,
            record: record(1),
            metrics: None,
        })
        .unwrap();
        file.write_all(entry.as_bytes()).unwrap();
        file.write_all(b"\n").unwrap();
        drop(file);

        let err = read_journal(&path).unwrap_err();
        assert!(matches!(err, ComfaseError::Io(_)), "{err:?}");
        assert!(err.to_string().contains("corrupt entry"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn completed_rerun_clears_an_earlier_failure() {
        let dir = std::env::temp_dir().join("comfase-journal-rerun");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.journal");
        let writer = JournalWriter::create(&path, &header()).unwrap();
        writer
            .append(&JournalEntry::Failed {
                failure: ExperimentFailure {
                    index: 2,
                    kind: FailureKind::HostError,
                    payload: "flaky".into(),
                    seed: 42,
                    spec: spec(),
                    attempts: 1,
                },
            })
            .unwrap();
        writer
            .append(&JournalEntry::Completed {
                index: 2,
                record: record(2),
                metrics: None,
            })
            .unwrap();
        drop(writer);

        let state = read_journal(&path).unwrap();
        assert!(state.failures.is_empty());
        assert!(state.completed.contains_key(&2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn identity_mismatch_is_rejected() {
        let fp = TEST_FINGERPRINT;
        let state = JournalState {
            header: Some(JournalHeader {
                schema_version: JOURNAL_SCHEMA_VERSION,
                seed: 42,
                total: 8,
                fingerprint: fp,
                shard: None,
                setup: setup(),
            }),
            ..JournalState::default()
        };
        assert!(state.check_identity(42, 8, &setup(), fp, None).is_ok());
        assert!(state.check_identity(43, 8, &setup(), fp, None).is_err());
        assert!(state.check_identity(42, 9, &setup(), fp, None).is_err());
        let mut other = setup();
        other.attack_values = vec![9.0];
        assert!(state.check_identity(42, 8, &other, fp, None).is_err());
        // A changed scenario/comm/budget only shows up in the fingerprint —
        // exactly the resume hole the fingerprint closes.
        let err = state
            .check_identity(42, 8, &setup(), fp ^ 1, None)
            .unwrap_err();
        assert!(matches!(err, ComfaseError::InvalidConfig(_)), "{err:?}");
        // A shard journal only resumes under the same shard.
        let shard = ShardRange { index: 0, of: 2 };
        let err = state
            .check_identity(42, 8, &setup(), fp, Some(shard))
            .unwrap_err();
        assert!(matches!(err, ComfaseError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn golden_entry_round_trips() {
        let dir = std::env::temp_dir().join("comfase-journal-golden");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.journal");
        let writer = JournalWriter::create(&path, &header()).unwrap();
        let row = ExperimentMetrics {
            index: 0,
            classification: "Golden".into(),
            max_decel_mps2: 1.5,
            ..ExperimentMetrics::default()
        };
        writer
            .append(&JournalEntry::Golden {
                metrics: Some(row.clone()),
            })
            .unwrap();
        drop(writer);
        let state = read_journal(&path).unwrap();
        assert_eq!(state.golden, Some(row));
        std::fs::remove_file(&path).unwrap();
    }
}
