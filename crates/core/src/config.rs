//! Test configuration — Step 1 of the ComFASE execution flow (Algo. 1).
//!
//! Three configuration objects mirror the paper exactly:
//!
//! - [`TrafficScenario`] ← `setScenario(roadFeatures, vehicleFeatures,
//!   nrVehicles, scenarioManeuver, totalSimTime)`;
//! - [`CommModel`] ← `setCommunication(commProtocol, wirelessModel,
//!   packetSize, beaconingTime)`;
//! - [`AttackCampaignSetup`] ← `setCampaign(attackModel, targetVehicles,
//!   attackStartVector, attackValuesVector, attackEndVector)`.
//!
//! Presets reproduce §IV-A (the demonstration setup) and Table II (the
//! campaign parameter values).

use serde::{Deserialize, Serialize};

use comfase_des::time::{SimDuration, SimTime};
use comfase_platoon::controller::ControllerKind;
use comfase_platoon::maneuver::Sinusoidal;
use comfase_platoon::monitor::SafetyMonitorConfig;
use comfase_platoon::platoon::PlatoonSpec;
use comfase_traffic::network::Road;
use comfase_traffic::vehicle::VehicleSpec;

use crate::attack::AttackModelKind;
use crate::error::ComfaseError;

/// Leader maneuver selection (serializable counterpart of the `Maneuver`
/// trait objects).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ManeuverKind {
    /// Constant cruise at the platoon's initial speed.
    ConstantSpeed,
    /// The paper's sinusoidal accelerate/decelerate pattern.
    Sinusoidal {
        /// Oscillation amplitude, m/s.
        amplitude_mps: f64,
        /// Oscillation frequency, Hz.
        freq_hz: f64,
        /// Onset time, seconds.
        start_s: f64,
    },
    /// Cruise then brake hard (used by examples/tests).
    Braking {
        /// When braking starts, seconds.
        brake_at_s: f64,
        /// Braking strength, m/s².
        decel_mps2: f64,
    },
}

impl ManeuverKind {
    /// The paper's sinusoidal maneuver with calibrated amplitude.
    pub fn paper_sinusoidal() -> Self {
        let m = Sinusoidal::paper_default();
        ManeuverKind::Sinusoidal {
            amplitude_mps: m.amplitude_mps,
            freq_hz: m.freq_hz,
            start_s: m.start.as_secs_f64(),
        }
    }
}

/// The paper's `TrafficScenario`: road, vehicles, maneuver and duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficScenario {
    /// Road properties (`roadFeatures`).
    pub road: Road,
    /// Vehicle software/hardware properties (`vehicleFeatures`).
    pub vehicle: VehicleSpec,
    /// The platoon composition (covers `nrVehicles` and the controller).
    pub platoon: PlatoonSpec,
    /// Driving pattern (`scenarioManeuver`).
    pub maneuver: ManeuverKind,
    /// Total simulation time (`totalSimTime`).
    pub total_sim_time: SimTime,
    /// Optional on-board safety monitor for the followers (the redundancy
    /// mechanism the paper lists as future work; `None` reproduces the
    /// paper's unprotected system).
    pub safety_monitor: Option<SafetyMonitorConfig>,
    /// Radio-less background vehicles sharing the road (Krauss-driven),
    /// for surrounding-traffic studies: `(lane, front position m, speed m/s)`.
    pub background_vehicles: Vec<(u8, f64, f64)>,
    /// RF jammers that are part of the scenario environment (distinct from
    /// the windowed attack models installed by the engine).
    pub jammers: Vec<crate::world::JammerSpec>,
}

impl TrafficScenario {
    /// The demonstration scenario of §IV-A.1: 4-lane 9400 m road at 90 m/s
    /// limit, four identical CACC vehicles, sinusoidal maneuver, 60 s.
    pub fn paper_default() -> Self {
        TrafficScenario {
            road: Road::paper_highway(),
            vehicle: VehicleSpec::paper_platooning_car(),
            platoon: PlatoonSpec::paper_default(),
            maneuver: ManeuverKind::paper_sinusoidal(),
            total_sim_time: SimTime::from_secs(60),
            safety_monitor: None,
            background_vehicles: Vec::new(),
            jammers: Vec::new(),
        }
    }

    /// Enables the follower safety monitor.
    pub fn with_safety_monitor(mut self, cfg: SafetyMonitorConfig) -> Self {
        self.safety_monitor = Some(cfg);
        self
    }

    /// Number of vehicles in the scenario (`nrVehicles`).
    pub fn nr_vehicles(&self) -> usize {
        self.platoon.len()
    }

    /// Replaces the follower controller.
    pub fn with_controller(mut self, controller: ControllerKind) -> Self {
        self.platoon.controller = controller;
        self
    }

    /// Validates the scenario.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), ComfaseError> {
        self.platoon
            .validate()
            .map_err(ComfaseError::InvalidConfig)?;
        self.vehicle
            .validate()
            .map_err(ComfaseError::InvalidConfig)?;
        if self.total_sim_time <= SimTime::ZERO {
            return Err(ComfaseError::InvalidConfig(
                "total simulation time must be positive".into(),
            ));
        }
        if self.platoon.lane >= self.road.nr_lanes() {
            return Err(ComfaseError::InvalidConfig(format!(
                "platoon lane {} outside road with {} lanes",
                self.platoon.lane,
                self.road.nr_lanes()
            )));
        }
        for &(lane, pos, speed) in &self.background_vehicles {
            if lane >= self.road.nr_lanes() || !self.road.contains(pos) || speed < 0.0 {
                return Err(ComfaseError::InvalidConfig(format!(
                    "background vehicle (lane {lane}, pos {pos}, speed {speed}) invalid"
                )));
            }
        }
        Ok(())
    }
}

/// Wireless model selection (`wirelessModel`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WirelessModelKind {
    /// Free-space path loss — the paper's choice for platooning.
    #[default]
    FreeSpace,
    /// Two-ray interference (ground reflection), for ablations.
    TwoRayInterference,
    /// Free space plus spatially correlated log-normal shadowing (slow
    /// fading from obstructions), for non-line-of-sight studies.
    LogNormalShadowing,
}

/// The paper's `CommModel`: protocol, wireless model, packet size and
/// beaconing time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommModel {
    /// Protocol description (`commProtocol`). The stack is always
    /// IEEE 802.11p + IEEE 1609.4 WAVE; the flag controls whether 1609.4
    /// channel switching is active (continuous CCH access otherwise).
    pub channel_switching: bool,
    /// Analogue model (`wirelessModel`).
    pub wireless_model: WirelessModelKind,
    /// Over-the-air message size in bits (`packetSize`).
    pub packet_size_bits: usize,
    /// Beacon period (`beaconingTime`).
    pub beaconing_time: SimDuration,
}

impl CommModel {
    /// The paper's communication model (§IV-A.2): DSRC/WAVE, free-space
    /// path loss, 200-bit packets, 0.1 s beaconing.
    pub fn paper_default() -> Self {
        CommModel {
            channel_switching: false,
            wireless_model: WirelessModelKind::FreeSpace,
            packet_size_bits: 200,
            beaconing_time: SimDuration::from_millis(100),
        }
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), ComfaseError> {
        if self.packet_size_bits == 0 {
            return Err(ComfaseError::InvalidConfig(
                "packet size must be positive".into(),
            ));
        }
        if self.beaconing_time <= SimDuration::ZERO {
            return Err(ComfaseError::InvalidConfig(
                "beaconing time must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// The paper's `AttackCampaignSetup`: which attack, on whom, with which
/// value/start/end vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackCampaignSetup {
    /// Attack model (`attackModel`).
    pub attack_model: AttackModelKind,
    /// Vehicles under attack (`targetVehicles`).
    pub target_vehicles: Vec<u32>,
    /// Attack model parameter values (`attackValuesVector`). For delay/DoS
    /// attacks these are propagation-delay values in seconds.
    pub attack_values: Vec<f64>,
    /// Attack initiation times in seconds (`attackStartVector`).
    pub attack_starts_s: Vec<f64>,
    /// Attack durations in seconds; each experiment's `attackEndTime` is
    /// `attackStartTime + duration` (`attackEndVector`, expressed relative
    /// to the start as in Table II).
    pub attack_durations_s: Vec<f64>,
}

/// Builds a linearly spaced inclusive range (used all over Table II).
pub fn linspace_inclusive(from: f64, to: f64, step: f64) -> Vec<f64> {
    assert!(step > 0.0, "step must be positive");
    let n = ((to - from) / step).round() as i64;
    (0..=n.max(0)).map(|i| from + i as f64 * step).collect()
}

impl AttackCampaignSetup {
    /// Table II delay campaign: PD 0.2–3.0 s (step 0.2, 15 values), starts
    /// 17.0–21.8 s (step 0.2, 25 values), durations 1–30 s (step 1, 30
    /// values) — 11 250 experiments against Vehicle 2.
    pub fn paper_delay_campaign() -> Self {
        AttackCampaignSetup {
            attack_model: AttackModelKind::Delay,
            target_vehicles: vec![2],
            attack_values: linspace_inclusive(0.2, 3.0, 0.2),
            attack_starts_s: linspace_inclusive(17.0, 21.8, 0.2),
            attack_durations_s: linspace_inclusive(1.0, 30.0, 1.0),
        }
    }

    /// Table II DoS campaign: PD 60 s, starts 17.0–21.8 s (step 0.2), the
    /// attack lasting until the end of the simulation — 25 experiments
    /// against Vehicle 2.
    pub fn paper_dos_campaign() -> Self {
        AttackCampaignSetup {
            attack_model: AttackModelKind::Dos,
            target_vehicles: vec![2],
            attack_values: vec![60.0],
            attack_starts_s: linspace_inclusive(17.0, 21.8, 0.2),
            attack_durations_s: vec![f64::INFINITY], // until totalSimTime
        }
    }

    /// Number of experiments the campaign will run.
    pub fn nr_experiments(&self) -> usize {
        self.attack_values.len() * self.attack_starts_s.len() * self.attack_durations_s.len()
    }

    /// Validates the setup against a scenario.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self, scenario: &TrafficScenario) -> Result<(), ComfaseError> {
        if self.target_vehicles.is_empty() {
            return Err(ComfaseError::InvalidConfig(
                "at least one target vehicle required".into(),
            ));
        }
        for &t in &self.target_vehicles {
            if scenario.platoon.index_of(t).is_none() {
                return Err(ComfaseError::UnknownTarget(t));
            }
        }
        if self.attack_values.is_empty()
            || self.attack_starts_s.is_empty()
            || self.attack_durations_s.is_empty()
        {
            return Err(ComfaseError::InvalidConfig(
                "attack value/start/duration vectors must be non-empty".into(),
            ));
        }
        let total = scenario.total_sim_time.as_secs_f64();
        for &s in &self.attack_starts_s {
            if !(0.0..=total).contains(&s) {
                return Err(ComfaseError::InvalidConfig(format!(
                    "attack start {s} outside [0, {total}]"
                )));
            }
        }
        for &d in &self.attack_durations_s {
            if d <= 0.0 {
                return Err(ComfaseError::InvalidConfig(format!(
                    "attack duration must be positive, got {d}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_is_valid_and_matches() {
        let s = TrafficScenario::paper_default();
        assert!(s.validate().is_ok());
        assert_eq!(s.nr_vehicles(), 4);
        assert_eq!(s.total_sim_time, SimTime::from_secs(60));
        assert_eq!(s.road.length_m, 9400.0);
        assert_eq!(s.vehicle.max_decel_mps2, 9.0);
    }

    #[test]
    fn paper_comm_model_matches() {
        let c = CommModel::paper_default();
        assert!(c.validate().is_ok());
        assert_eq!(c.packet_size_bits, 200);
        assert_eq!(c.beaconing_time, SimDuration::from_millis(100));
        assert_eq!(c.wireless_model, WirelessModelKind::FreeSpace);
    }

    #[test]
    fn linspace_matches_table_ii_counts() {
        assert_eq!(linspace_inclusive(0.2, 3.0, 0.2).len(), 15);
        assert_eq!(linspace_inclusive(17.0, 21.8, 0.2).len(), 25);
        assert_eq!(linspace_inclusive(1.0, 30.0, 1.0).len(), 30);
        assert_eq!(linspace_inclusive(5.0, 5.0, 1.0), vec![5.0]);
    }

    #[test]
    fn delay_campaign_has_11250_experiments() {
        let c = AttackCampaignSetup::paper_delay_campaign();
        assert_eq!(c.nr_experiments(), 11_250);
        assert!(c.validate(&TrafficScenario::paper_default()).is_ok());
        assert_eq!(c.target_vehicles, vec![2]);
    }

    #[test]
    fn dos_campaign_has_25_experiments() {
        let c = AttackCampaignSetup::paper_dos_campaign();
        assert_eq!(c.nr_experiments(), 25);
        assert!(c.validate(&TrafficScenario::paper_default()).is_ok());
    }

    #[test]
    fn unknown_target_rejected() {
        let mut c = AttackCampaignSetup::paper_dos_campaign();
        c.target_vehicles = vec![9];
        assert_eq!(
            c.validate(&TrafficScenario::paper_default()),
            Err(ComfaseError::UnknownTarget(9))
        );
    }

    #[test]
    fn invalid_vectors_rejected() {
        let s = TrafficScenario::paper_default();
        let mut c = AttackCampaignSetup::paper_delay_campaign();
        c.attack_values.clear();
        assert!(c.validate(&s).is_err());
        c = AttackCampaignSetup::paper_delay_campaign();
        c.attack_starts_s = vec![99.0];
        assert!(c.validate(&s).is_err());
        c = AttackCampaignSetup::paper_delay_campaign();
        c.attack_durations_s = vec![0.0];
        assert!(c.validate(&s).is_err());
        c = AttackCampaignSetup::paper_delay_campaign();
        c.target_vehicles.clear();
        assert!(c.validate(&s).is_err());
    }

    #[test]
    fn scenario_validation_catches_bad_lane() {
        let mut s = TrafficScenario::paper_default();
        s.platoon.lane = 9;
        assert!(s.validate().is_err());
    }

    #[test]
    fn with_controller_swaps_controller() {
        let s = TrafficScenario::paper_default().with_controller(ControllerKind::Acc);
        assert_eq!(s.platoon.controller, ControllerKind::Acc);
    }

    #[test]
    fn configs_serialize() {
        let s = TrafficScenario::paper_default();
        let json = serde_json::to_string(&s).unwrap();
        let back: TrafficScenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
