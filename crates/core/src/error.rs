//! Error type of the ComFASE engine.

use std::fmt;

/// Errors reported by configuration validation and campaign execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ComfaseError {
    /// A configuration value is invalid.
    InvalidConfig(String),
    /// The traffic simulation rejected an operation.
    Traffic(String),
    /// A campaign references a vehicle that is not in the scenario.
    UnknownTarget(u32),
    /// The run exceeded its configured sim-event or sim-time budget
    /// (deterministic watchdog).
    BudgetExceeded(String),
    /// A release-mode numeric guard detected non-finite simulation state
    /// (NaN kinematics or SNIR).
    NumericDiverged(String),
    /// A campaign worker thread died (its panic escaped the per-experiment
    /// isolation boundary).
    WorkerFailed(String),
    /// A host I/O operation (journal, results directory) failed.
    Io(String),
}

impl fmt::Display for ComfaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComfaseError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ComfaseError::Traffic(msg) => write!(f, "traffic simulation error: {msg}"),
            ComfaseError::UnknownTarget(v) => {
                write!(f, "attack target vehicle {v} is not part of the scenario")
            }
            ComfaseError::BudgetExceeded(msg) => write!(f, "simulation budget exceeded: {msg}"),
            ComfaseError::NumericDiverged(msg) => write!(f, "numeric divergence: {msg}"),
            ComfaseError::WorkerFailed(msg) => write!(f, "campaign worker failed: {msg}"),
            ComfaseError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ComfaseError {}

impl From<comfase_traffic::TrafficError> for ComfaseError {
    fn from(e: comfase_traffic::TrafficError) -> Self {
        ComfaseError::Traffic(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ComfaseError::InvalidConfig("x".into()).to_string(),
            "invalid configuration: x"
        );
        assert!(ComfaseError::UnknownTarget(7)
            .to_string()
            .contains("vehicle 7"));
    }

    #[test]
    fn traffic_error_converts() {
        let e: ComfaseError =
            comfase_traffic::TrafficError::UnknownVehicle(comfase_traffic::VehicleId(3)).into();
        assert!(matches!(e, ComfaseError::Traffic(_)));
    }
}
