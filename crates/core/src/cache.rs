//! Content-addressed result cache — the campaign-side contract.
//!
//! Attack-injection campaigns overlap heavily in practice: re-running the
//! Table II grid after a harness change, sweeping a finer stride over the
//! same axes, or sharding one grid across processes all re-simulate
//! experiments whose outcome is already known. The cache keys each
//! experiment by everything that determines its result and returns the
//! journaled row without simulating on a hit.
//!
//! This module defines only the *types* of that contract — the key
//! derivation, the cached payloads, and the [`ExperimentCache`] trait the
//! campaign runner talks to. The on-disk store lives in the `comfase-dist`
//! crate, keeping file I/O out of the simulation core.
//!
//! # Key derivation
//!
//! A [`CacheKey`] is `(spec_hash, seed, config_hash)`:
//!
//! - `spec_hash` — FNV-1a 64 of the canonical JSON of the
//!   [`AttackSpec`](crate::attack::AttackSpec) (model, value bits, targets,
//!   time window);
//! - `seed` — the engine seed for seed-*invariant* attack models (their
//!   interceptors ignore the per-experiment RNG stream, so one entry
//!   serves the spec at any experiment index, across campaigns and
//!   strides), or `engine_seed ^ experiment_index` for seed-dependent
//!   models (probabilistic drop), whose results genuinely depend on the
//!   derived stream;
//! - `config_hash` — FNV-1a 64 over the canonical JSON of the traffic
//!   scenario, communication model, event budget and telemetry
//!   configuration: everything *besides* the spec and seed that can move
//!   a result. Execution mode, thread count and indexing substrate are
//!   excluded — all are proven byte-identity-preserving, so entries are
//!   shared across them.
//!
//! Cached records and metrics rows are index-free by construction (the
//! stored `index` is rewritten to the hitting campaign's index on load),
//! which is what lets a stride-5 campaign hit entries written by the full
//! grid.

use serde::{Deserialize, Serialize};

use comfase_obs::ExperimentMetrics;

use crate::campaign::{ExperimentRecord, ShardRange};
use crate::error::ComfaseError;
use crate::fingerprint::{canonical_json, fnv1a64};
use crate::log::RunLog;

/// Content address of one cached experiment result. See the module docs
/// for the derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CacheKey {
    /// FNV-1a 64 of the canonical JSON of the attack spec (zero for the
    /// golden run, which has none).
    pub spec_hash: u64,
    /// Engine seed, XOR-mixed with the experiment index for
    /// seed-dependent attack models only.
    pub seed: u64,
    /// FNV-1a 64 over scenario + comm model + budget + telemetry config.
    pub config_hash: u64,
}

impl CacheKey {
    /// Canonical file-stem of this key (three fixed-width hex words) —
    /// stable across platforms, safe as a file name.
    pub fn stem(&self) -> String {
        format!(
            "{:016x}-{:016x}-{:016x}",
            self.spec_hash, self.seed, self.config_hash
        )
    }

    /// Key of the golden (attack-free) run under `config_hash`:
    /// `spec_hash` 0 marks "no attack".
    pub fn golden(seed: u64, config_hash: u64) -> CacheKey {
        CacheKey {
            spec_hash: 0,
            seed,
            config_hash,
        }
    }

    /// Key of one experiment. `spec_json` must be the canonical JSON of
    /// its [`AttackSpec`](crate::attack::AttackSpec).
    pub fn experiment(spec_json: &[u8], seed_component: u64, config_hash: u64) -> CacheKey {
        CacheKey {
            spec_hash: fnv1a64(spec_json).max(1),
            seed: seed_component,
            config_hash,
        }
    }
}

/// One cached payload. Entries echo nothing about the campaign that wrote
/// them beyond the key — records and rows are index-free (see module
/// docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "entry", rename_all = "snake_case")]
pub enum CacheEntry {
    /// A completed experiment: its classified record plus the metrics row
    /// when the writing campaign collected telemetry.
    Experiment {
        /// The classified record (spec + verdict).
        record: ExperimentRecord,
        /// Per-experiment metrics row, when collected.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        metrics: Option<ExperimentMetrics>,
        /// Label-free dataset rows, when the writing campaign exported a
        /// dataset. Stored so a warm re-run can re-render the shard
        /// (labels are stamped from the hitting campaign's record) without
        /// simulating.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        dataset: Option<comfase_obs::DatasetCapture>,
    },
    /// The golden (attack-free) reference run, stored whole so a fully
    /// warm campaign re-run performs zero simulations: classification
    /// parameters and the golden metrics row are recomputed from the log
    /// (deterministically — JSON round-trips floats bit-exactly).
    Golden {
        /// The complete golden run log.
        log: RunLog,
    },
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheLookup {
    /// A valid entry was found.
    Hit(Box<CacheEntry>),
    /// No entry exists for the key.
    Miss,
    /// An entry exists but is unusable — torn write, corrupt JSON, or a
    /// key echo that does not match (hash collision or tampering). Stale
    /// entries are treated as misses and overwritten by the next store.
    Stale,
}

/// A content-addressed store of experiment results.
///
/// Implementations must be safe to share across campaign worker threads;
/// `load`/`store` may be called concurrently for distinct keys.
/// Implementations must write whole entries atomically — a torn entry
/// must surface as [`CacheLookup::Stale`] on the next load, never as a
/// wrong result.
pub trait ExperimentCache: Send + Sync + std::fmt::Debug {
    /// Looks up `key`.
    fn load(&self, key: &CacheKey) -> CacheLookup;

    /// Stores `entry` under `key`, replacing any existing entry.
    ///
    /// # Errors
    ///
    /// Host I/O failures. The campaign treats a store failure like a
    /// journal append failure — the first error aborts the run — because
    /// a silently dropped entry would force a re-simulation the user
    /// believes is cached.
    fn store(&self, key: &CacheKey, entry: &CacheEntry) -> Result<(), ComfaseError>;
}

/// Cache-side view of one campaign configuration: the pieces of a
/// [`CacheKey`] that are constant across the campaign's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKeyBase {
    /// The engine seed.
    pub seed: u64,
    /// See [`CacheKey::config_hash`].
    pub config_hash: u64,
}

impl CacheKeyBase {
    /// Key of one experiment at `index` with canonical spec JSON
    /// `spec_json`; `seed_invariant` is the attack model's
    /// [`seed_invariant`](crate::attack::AttackModelKind::seed_invariant)
    /// flag.
    pub fn experiment_key(&self, spec_json: &[u8], index: usize, seed_invariant: bool) -> CacheKey {
        let seed_component = if seed_invariant {
            self.seed
        } else {
            self.seed ^ index as u64
        };
        CacheKey::experiment(spec_json, seed_component, self.config_hash)
    }

    /// Key of the golden run.
    pub fn golden_key(&self) -> CacheKey {
        CacheKey::golden(self.seed, self.config_hash)
    }
}

/// Hashes the campaign-constant key components. `shard` never enters the
/// key — a shard is a *view* of the index space, not a different
/// campaign — and is accepted here only to make that explicit at the one
/// call site.
pub fn config_hash(
    scenario: &crate::config::TrafficScenario,
    comm: &crate::config::CommModel,
    budget: comfase_des::sim::EventBudget,
    obs: comfase_obs::ObsConfig,
    _shard: Option<ShardRange>,
) -> Result<u64, ComfaseError> {
    use crate::fingerprint::{fnv1a64_extend, FNV_OFFSET};
    let mut hash = fnv1a64(b"comfase-cache-config-v1");
    for bytes in [
        canonical_json(scenario)?,
        canonical_json(comm)?,
        canonical_json(&budget.max_delivered)?,
        canonical_json(&budget.max_sim_time)?,
    ] {
        hash = fnv1a64_extend(hash, &(bytes.len() as u64).to_le_bytes());
        hash = fnv1a64_extend(hash, &bytes);
    }
    hash = fnv1a64_extend(hash, &[u8::from(obs.metrics)]);
    hash = fnv1a64_extend(hash, &(obs.trace_capacity as u64).to_le_bytes());
    hash = fnv1a64_extend(hash, &[u8::from(obs.dataset)]);
    // Guard against the (astronomically unlikely) all-zero result so the
    // golden key's `spec_hash == 0` convention stays unambiguous.
    if hash == 0 {
        hash = FNV_OFFSET;
    }
    Ok(hash)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_stem_is_fixed_width_hex() {
        let key = CacheKey {
            spec_hash: 0x1,
            seed: 0xabcd,
            config_hash: u64::MAX,
        };
        assert_eq!(
            key.stem(),
            "0000000000000001-000000000000abcd-ffffffffffffffff"
        );
    }

    #[test]
    fn golden_key_is_marked_by_zero_spec_hash() {
        let key = CacheKey::golden(42, 7);
        assert_eq!(key.spec_hash, 0);
        let exp = CacheKey::experiment(b"{}", 42, 7);
        assert_ne!(
            exp.spec_hash, 0,
            "experiment keys never collide with golden"
        );
    }

    #[test]
    fn seed_component_mixes_index_only_for_seed_dependent_models() {
        let base = CacheKeyBase {
            seed: 42,
            config_hash: 7,
        };
        let invariant = base.experiment_key(b"{}", 5, true);
        assert_eq!(invariant.seed, 42);
        let dependent = base.experiment_key(b"{}", 5, false);
        assert_eq!(dependent.seed, 42 ^ 5);
    }
}
