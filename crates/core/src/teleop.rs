//! Teleoperation scenario — the paper's future-work direction of
//! evaluating "scenarios other than platooning such as a teleoperation
//! scenario" (§V).
//!
//! A remotely operated vehicle drives toward a stopped obstacle vehicle.
//! The control loop is closed over the wireless channel:
//!
//! - the vehicle uplinks a **status message** (position, speed) every
//!   `command_period`;
//! - a roadside **operator station** tracks the vehicle from those
//!   messages and downlinks a **speed command**: cruise until the vehicle
//!   is within braking distance of the obstacle (plus a safety margin),
//!   then command a stop;
//! - the vehicle applies the *last received* command — it has no local
//!   autonomy, which is precisely the hazard teleoperation evaluations
//!   probe.
//!
//! Both link directions run, selectably, over the same 802.11p medium as
//! the platooning scenario ([`TeleopLink::Wave`]) or over a 4G/5G-style
//! cellular bearer ([`TeleopLink::Cellular`] — the paper's planned INET
//! extension), and every ComFASE attack model (delay, DoS, drop,
//! falsification of the uplinked position …) applies unchanged via
//! [`TeleopWorld::install_attack`].

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use comfase_des::rng::{RngStream, StreamId};
use comfase_des::sim::Simulator;
use comfase_des::time::{SimDuration, SimTime};
use comfase_traffic::network::{LaneIndex, Road};
use comfase_traffic::simulation::TrafficSim;
use comfase_traffic::vehicle::{Vehicle, VehicleId, VehicleSpec};
use comfase_wireless::channel::{ChannelInterceptor, Medium, PlannedReception};
use comfase_wireless::frame::{AccessCategory, NodeId, WaveChannel, Wsm};
use comfase_wireless::geom::Position;
use comfase_wireless::mac::{Mac, MacAction, MacConfig};
use comfase_wireless::phy::PhyConfig;
use comfase_wireless::units::CCH_FREQ_HZ;

use crate::error::ComfaseError;
use crate::log::{RunLog, VehicleCommStats};

/// Vehicle id of the remotely driven vehicle.
pub const TELEOP_VEHICLE: u32 = 1;
/// Vehicle id of the stopped obstacle.
pub const OBSTACLE_VEHICLE: u32 = 2;
/// Radio node id of the operator station.
pub const OPERATOR_NODE: u32 = 100;

/// Which communication technology carries the teleoperation link.
///
/// The paper plans an INET integration "which offers other communication
/// protocols such as 4G and 5G to be able to evaluate scenarios other than
/// platooning such as, a teleoperation scenario" (§V). [`TeleopLink::Wave`]
/// runs the loop over the full 802.11p stack; [`TeleopLink::Cellular`] is
/// a network-level cellular bearer model: fixed one-way latency plus
/// uniform jitter and i.i.d. packet loss, as seen by an application using
/// an LTE/5G uplink/downlink. Attack models apply to either technology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TeleopLink {
    /// IEEE 802.11p WAVE (roadside unit), the default.
    Wave,
    /// Cellular bearer (4G/5G-style latency/jitter/loss model).
    Cellular {
        /// One-way network latency.
        latency: SimDuration,
        /// Additional uniform jitter in `[0, jitter]`.
        jitter: SimDuration,
        /// Independent packet loss probability in `[0, 1]`.
        loss_probability: f64,
    },
}

impl TeleopLink {
    /// A 4G-like bearer: 50 ms one-way latency, 20 ms jitter, 1% loss.
    pub fn lte_default() -> Self {
        TeleopLink::Cellular {
            latency: SimDuration::from_millis(50),
            jitter: SimDuration::from_millis(20),
            loss_probability: 0.01,
        }
    }
}

/// Configuration of the teleoperation scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TeleopScenario {
    /// The road driven on.
    pub road: Road,
    /// The remotely driven vehicle.
    pub vehicle: VehicleSpec,
    /// Commanded cruise speed, m/s.
    pub cruise_speed_mps: f64,
    /// Start position of the teleoperated vehicle, metres.
    pub start_pos_m: f64,
    /// Front-bumper position of the stopped obstacle vehicle, metres.
    pub obstacle_pos_m: f64,
    /// Longitudinal position of the roadside operator antenna, metres.
    pub operator_pos_m: f64,
    /// Status uplink / command downlink period.
    pub command_period: SimDuration,
    /// Extra stopping margin the operator plans for, metres.
    pub safety_margin_m: f64,
    /// Deceleration the operator assumes for the braking-distance
    /// calculation, m/s² (positive; typically the comfortable rate).
    pub planning_decel_mps2: f64,
    /// Total simulation time.
    pub total_sim_time: SimTime,
    /// Link technology for the control loop.
    pub link: TeleopLink,
}

impl TeleopScenario {
    /// A highway teleoperation preset: approach a stalled car at 72 km/h
    /// with a 10 Hz command loop and a 15 m planned margin.
    pub fn highway_default() -> Self {
        TeleopScenario {
            road: Road::paper_highway(),
            vehicle: VehicleSpec::paper_platooning_car(),
            cruise_speed_mps: 20.0,
            start_pos_m: 100.0,
            obstacle_pos_m: 900.0,
            operator_pos_m: 500.0,
            command_period: SimDuration::from_millis(100),
            safety_margin_m: 15.0,
            planning_decel_mps2: 5.0,
            total_sim_time: SimTime::from_secs(60),
            link: TeleopLink::Wave,
        }
    }

    /// The same scenario over a 4G-like cellular bearer.
    pub fn highway_cellular() -> Self {
        TeleopScenario {
            link: TeleopLink::lte_default(),
            ..TeleopScenario::highway_default()
        }
    }

    /// Validates the scenario.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), ComfaseError> {
        self.vehicle
            .validate()
            .map_err(ComfaseError::InvalidConfig)?;
        if self.obstacle_pos_m <= self.start_pos_m {
            return Err(ComfaseError::InvalidConfig(
                "obstacle must be ahead of the vehicle".into(),
            ));
        }
        if !self.road.contains(self.obstacle_pos_m) || !self.road.contains(self.start_pos_m) {
            return Err(ComfaseError::InvalidConfig(
                "positions must be on the road".into(),
            ));
        }
        if self.cruise_speed_mps <= 0.0 {
            return Err(ComfaseError::InvalidConfig(
                "cruise speed must be positive".into(),
            ));
        }
        if self.command_period <= SimDuration::ZERO {
            return Err(ComfaseError::InvalidConfig(
                "command period must be positive".into(),
            ));
        }
        if self.planning_decel_mps2 <= 0.0 {
            return Err(ComfaseError::InvalidConfig(
                "planning decel must be positive".into(),
            ));
        }
        if let TeleopLink::Cellular {
            loss_probability, ..
        } = self.link
        {
            if !(0.0..=1.0).contains(&loss_probability) {
                return Err(ComfaseError::InvalidConfig(format!(
                    "loss probability {loss_probability} outside [0, 1]"
                )));
            }
        }
        Ok(())
    }
}

/// Uplink status report from the vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatusMsg {
    /// Front-bumper position, metres.
    pub pos_m: f64,
    /// Speed, m/s.
    pub speed_mps: f64,
    /// Sampling time.
    pub sampled: SimTime,
}

impl StatusMsg {
    const TAG: u8 = 0x51;

    /// Serializes for transmission.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(25);
        b.put_u8(Self::TAG);
        b.put_f64(self.pos_m);
        b.put_f64(self.speed_mps);
        b.put_i64(self.sampled.as_nanos());
        b.freeze()
    }

    /// Deserializes; `None` when the payload is not a status message.
    pub fn decode(mut buf: Bytes) -> Option<StatusMsg> {
        if buf.remaining() < 25 || buf.get_u8() != Self::TAG {
            return None;
        }
        Some(StatusMsg {
            pos_m: buf.get_f64(),
            speed_mps: buf.get_f64(),
            sampled: SimTime::from_nanos(buf.get_i64()),
        })
    }
}

/// Downlink speed command from the operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommandMsg {
    /// Target speed the vehicle should track, m/s (0 = stop).
    pub target_speed_mps: f64,
    /// Issue time.
    pub issued: SimTime,
}

impl CommandMsg {
    const TAG: u8 = 0x52;

    /// Serializes for transmission.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(17);
        b.put_u8(Self::TAG);
        b.put_f64(self.target_speed_mps);
        b.put_i64(self.issued.as_nanos());
        b.freeze()
    }

    /// Deserializes; `None` when the payload is not a command message.
    pub fn decode(mut buf: Bytes) -> Option<CommandMsg> {
        if buf.remaining() < 17 || buf.get_u8() != Self::TAG {
            return None;
        }
        Some(CommandMsg {
            target_speed_mps: buf.get_f64(),
            issued: SimTime::from_nanos(buf.get_i64()),
        })
    }
}

#[derive(Debug)]
enum TeleopEvent {
    TrafficStep,
    VehicleUplink,
    OperatorDownlink,
    MacTimer {
        node: u32,
        token: u64,
    },
    TxEnd {
        node: u32,
    },
    RxStart {
        reception: Box<PlannedReception>,
    },
    RxEnd {
        reception: Box<PlannedReception>,
    },
    /// A cellular packet arrives at its destination node.
    CellularDeliver {
        rx: u32,
        wsm: Wsm,
    },
}

const PRIO_RADIO: i16 = -10;
const PRIO_TRAFFIC: i16 = 0;
const PRIO_APP: i16 = 10;

/// The teleoperation co-simulation.
#[derive(Debug)]
pub struct TeleopWorld {
    sim: Simulator<TeleopEvent>,
    traffic: TrafficSim,
    medium: Medium,
    vehicle_mac: Mac,
    operator_mac: Mac,
    scenario: TeleopScenario,
    /// Last command received by the vehicle.
    last_command: Option<CommandMsg>,
    /// Operator's belief about the vehicle.
    believed: Option<StatusMsg>,
    seq: u32,
    commands_received: u64,
    statuses_received: u64,
    /// Attack interceptor for the cellular bearer (the medium holds the
    /// interceptor in WAVE mode).
    cell_interceptor: Option<Box<dyn ChannelInterceptor>>,
    cell_rng: RngStream,
    /// Cellular packets dropped by the bearer's own loss process.
    cell_lost: u64,
}

impl TeleopWorld {
    /// Builds the teleoperation world.
    ///
    /// # Errors
    ///
    /// Fails on invalid configuration.
    pub fn new(scenario: &TeleopScenario, seed: u64) -> Result<TeleopWorld, ComfaseError> {
        scenario.validate()?;
        let sim: Simulator<TeleopEvent> = Simulator::new(seed);
        let mut traffic = TrafficSim::new(scenario.road.clone(), sim.rng(StreamId(0)));
        let lane = LaneIndex(0);
        traffic.add_vehicle(Vehicle::new(
            VehicleId(TELEOP_VEHICLE),
            scenario.vehicle.clone(),
            scenario.start_pos_m,
            lane,
            scenario.cruise_speed_mps,
        ))?;
        traffic.set_external_control(VehicleId(TELEOP_VEHICLE))?;
        traffic.add_vehicle(Vehicle::new(
            VehicleId(OBSTACLE_VEHICLE),
            scenario.vehicle.clone(),
            scenario.obstacle_pos_m,
            lane,
            0.0,
        ))?;
        traffic.set_external_control(VehicleId(OBSTACLE_VEHICLE))?;

        let mut medium = Medium::with_models(
            Box::new(comfase_wireless::pathloss::FreeSpace::default()),
            CCH_FREQ_HZ,
            PhyConfig::default(),
        );
        medium.update_position(
            NodeId(OPERATOR_NODE),
            Position::new(scenario.operator_pos_m, 15.0, 6.0), // roadside mast
        );
        medium.update_position(
            NodeId(TELEOP_VEHICLE),
            Position::on_road(scenario.start_pos_m, scenario.road.lane_center_offset(lane)),
        );

        let mut world = TeleopWorld {
            vehicle_mac: Mac::new(MacConfig::default(), sim.rng(StreamId(1))),
            operator_mac: Mac::new(MacConfig::default(), sim.rng(StreamId(2))),
            cell_rng: sim.rng(StreamId(3)),
            sim,
            traffic,
            medium,
            scenario: scenario.clone(),
            last_command: None,
            believed: None,
            seq: 0,
            commands_received: 0,
            statuses_received: 0,
            cell_interceptor: None,
            cell_lost: 0,
        };
        world.sim.schedule_at_with_priority(
            SimTime::ZERO + SimDuration::from_millis(10),
            PRIO_TRAFFIC,
            TeleopEvent::TrafficStep,
        );
        world.sim.schedule_at_with_priority(
            SimTime::ZERO + SimDuration::from_millis(20),
            PRIO_APP,
            TeleopEvent::VehicleUplink,
        );
        world.sim.schedule_at_with_priority(
            SimTime::ZERO + SimDuration::from_millis(70),
            PRIO_APP,
            TeleopEvent::OperatorDownlink,
        );
        Ok(world)
    }

    /// Installs an attack interceptor on the link (ComFASE Step 3). The
    /// same attack models apply to both link technologies: on WAVE the
    /// interceptor sits in the wireless channel, on cellular it intercepts
    /// the bearer's packets.
    pub fn install_attack(&mut self, interceptor: Box<dyn ChannelInterceptor>) {
        match self.scenario.link {
            TeleopLink::Wave => self.medium.set_interceptor(interceptor),
            TeleopLink::Cellular { .. } => self.cell_interceptor = Some(interceptor),
        }
    }

    /// Removes the attack.
    pub fn clear_attack(&mut self) {
        self.medium.clear_interceptor();
        self.cell_interceptor = None;
    }

    /// Cellular packets lost by the bearer's own loss process.
    pub fn cellular_losses(&self) -> u64 {
        self.cell_lost
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Commands successfully received by the vehicle so far.
    pub fn commands_received(&self) -> u64 {
        self.commands_received
    }

    /// Status messages successfully received by the operator so far.
    pub fn statuses_received(&self) -> u64 {
        self.statuses_received
    }

    /// Runs until `limit` (clamped to the configured horizon).
    pub fn run_until(&mut self, limit: SimTime) {
        let limit = limit.min(self.scenario.total_sim_time);
        while let Some((_, ev)) = self.sim.pop_due(limit) {
            self.dispatch(ev);
        }
        self.sim.advance_to(limit);
    }

    /// Runs to the configured end.
    pub fn run_to_end(&mut self) {
        self.run_until(self.scenario.total_sim_time);
    }

    /// Extracts the run log.
    pub fn into_log(self) -> RunLog {
        let mut comm = std::collections::BTreeMap::new();
        comm.insert(
            TELEOP_VEHICLE,
            VehicleCommStats {
                mac: self.vehicle_mac.stats(),
                ..Default::default()
            },
        );
        comm.insert(
            OPERATOR_NODE,
            VehicleCommStats {
                mac: self.operator_mac.stats(),
                ..Default::default()
            },
        );
        let kernel = comfase_obs::KernelCounters {
            scheduled: self.sim.scheduled(),
            delivered: self.sim.delivered(),
            cancelled: self.sim.cancelled(),
            pending_at_end: self.sim.pending() as u64,
        };
        let traffic_stats = self.traffic.stats();
        RunLog {
            trace: self.traffic.into_trace(),
            channel: self.medium.stats(),
            comm,
            final_time: self.sim.now(),
            kernel,
            traffic_stats,
            obs: comfase_obs::MetricsSnapshot::default(),
        }
    }

    fn dispatch(&mut self, ev: TeleopEvent) {
        match ev {
            TeleopEvent::TrafficStep => self.on_traffic_step(),
            TeleopEvent::VehicleUplink => self.on_vehicle_uplink(),
            TeleopEvent::OperatorDownlink => self.on_operator_downlink(),
            TeleopEvent::MacTimer { node, token } => {
                let now = self.sim.now();
                let actions = self.mac_mut(node).handle_timer(token, now);
                self.apply_mac_actions(node, actions);
            }
            TeleopEvent::TxEnd { node } => {
                let now = self.sim.now();
                let actions = self.mac_mut(node).tx_finished(now);
                self.apply_mac_actions(node, actions);
            }
            TeleopEvent::RxStart { reception } => {
                self.medium.reception_started(&reception);
            }
            TeleopEvent::RxEnd { reception } => self.on_rx_end(*reception),
            TeleopEvent::CellularDeliver { rx, wsm } => self.deliver(rx, &wsm),
        }
    }

    /// Sends a message over the configured link technology.
    fn send(&mut self, from: u32, to: u32, wsm: Wsm) {
        let now = self.sim.now();
        match self.scenario.link {
            TeleopLink::Wave => {
                let actions = self.mac_mut(from).enqueue(wsm, AccessCategory::Vo, now);
                self.apply_mac_actions(from, actions);
            }
            TeleopLink::Cellular {
                latency,
                jitter,
                loss_probability,
            } => {
                // Bearer loss process.
                if self.cell_rng.bernoulli(loss_probability.clamp(0.0, 1.0)) {
                    self.cell_lost += 1;
                    return;
                }
                let jitter_draw = SimDuration::from_nanos(
                    (jitter.as_nanos() as f64 * self.cell_rng.uniform()) as i64,
                );
                let default_delay = latency + jitter_draw;
                // Attack interception at the bearer level.
                let fate = match self.cell_interceptor.as_mut() {
                    Some(i) => i.intercept(NodeId(from), NodeId(to), now, default_delay, &wsm),
                    None => comfase_wireless::channel::LinkFate::Deliver {
                        delay: default_delay,
                    },
                };
                let (delay, wsm) = match fate {
                    comfase_wireless::channel::LinkFate::Deliver { delay } => (delay, wsm),
                    comfase_wireless::channel::LinkFate::DeliverModified { delay, wsm } => {
                        (delay, wsm)
                    }
                    comfase_wireless::channel::LinkFate::Drop => return,
                };
                self.sim.schedule_at_with_priority(
                    now + delay,
                    PRIO_RADIO,
                    TeleopEvent::CellularDeliver { rx: to, wsm },
                );
            }
        }
    }

    /// Delivers a decoded application payload to a node.
    fn deliver(&mut self, rx: u32, wsm: &Wsm) {
        if rx == OPERATOR_NODE {
            if let Some(status) = StatusMsg::decode(wsm.payload.clone()) {
                if self.believed.is_none_or(|b| status.sampled >= b.sampled) {
                    self.believed = Some(status);
                }
                self.statuses_received += 1;
            }
        } else if rx == TELEOP_VEHICLE {
            if let Some(cmd) = CommandMsg::decode(wsm.payload.clone()) {
                if self.last_command.is_none_or(|c| cmd.issued >= c.issued) {
                    self.last_command = Some(cmd);
                }
                self.commands_received += 1;
            }
        }
    }

    fn mac_mut(&mut self, node: u32) -> &mut Mac {
        if node == OPERATOR_NODE {
            &mut self.operator_mac
        } else {
            &mut self.vehicle_mac
        }
    }

    fn on_traffic_step(&mut self) {
        let now = self.sim.now();
        // Vehicle control: track the last received command with a
        // proportional speed loop; with no command yet, hold cruise speed.
        let veh = self
            .traffic
            .vehicle(VehicleId(TELEOP_VEHICLE))
            .expect("vehicle exists");
        let target = self
            .last_command
            .map_or(self.scenario.cruise_speed_mps, |c| c.target_speed_mps);
        let accel = 1.0 * (target - veh.state.speed_mps);
        self.traffic
            .command_accel(VehicleId(TELEOP_VEHICLE), accel)
            .expect("vehicle exists");
        let collisions = self.traffic.step();
        // A collision ends remote operability; the collider is removed by
        // policy, nothing further to drive.
        let _ = collisions;
        // Update the radio position.
        if let Some(v) = self.traffic.vehicle(VehicleId(TELEOP_VEHICLE)) {
            if v.active {
                self.medium.update_position(
                    NodeId(TELEOP_VEHICLE),
                    Position::on_road(
                        v.state.pos_m - v.spec.length_m / 2.0,
                        self.scenario.road.lane_center_offset(LaneIndex(0)),
                    ),
                );
            } else {
                self.medium.remove_node(NodeId(TELEOP_VEHICLE));
            }
        }
        let next = now + SimDuration::from_millis(10);
        if next <= self.scenario.total_sim_time {
            self.sim
                .schedule_at_with_priority(next, PRIO_TRAFFIC, TeleopEvent::TrafficStep);
        }
    }

    fn on_vehicle_uplink(&mut self) {
        let now = self.sim.now();
        if let Some(v) = self.traffic.vehicle(VehicleId(TELEOP_VEHICLE)) {
            if v.active {
                let status = StatusMsg {
                    pos_m: v.state.pos_m,
                    speed_mps: v.state.speed_mps,
                    sampled: now,
                };
                self.seq += 1;
                let wsm = Wsm {
                    source: NodeId(TELEOP_VEHICLE),
                    sequence: self.seq,
                    created: now,
                    channel: WaveChannel::Cch,
                    payload: status.encode(),
                };
                self.send(TELEOP_VEHICLE, OPERATOR_NODE, wsm);
            }
        }
        let next = now + self.scenario.command_period;
        if next <= self.scenario.total_sim_time {
            self.sim
                .schedule_at_with_priority(next, PRIO_APP, TeleopEvent::VehicleUplink);
        }
    }

    fn on_operator_downlink(&mut self) {
        let now = self.sim.now();
        // Plan on the *believed* state: stop when within planned braking
        // distance of the obstacle.
        let target = match &self.believed {
            Some(status) => {
                let braking_dist =
                    status.speed_mps * status.speed_mps / (2.0 * self.scenario.planning_decel_mps2);
                let stop_point = self.scenario.obstacle_pos_m
                    - self.scenario.vehicle.length_m
                    - self.scenario.safety_margin_m
                    - braking_dist;
                if status.pos_m >= stop_point {
                    0.0
                } else {
                    self.scenario.cruise_speed_mps
                }
            }
            None => self.scenario.cruise_speed_mps,
        };
        let cmd = CommandMsg {
            target_speed_mps: target,
            issued: now,
        };
        self.seq += 1;
        let wsm = Wsm {
            source: NodeId(OPERATOR_NODE),
            sequence: self.seq,
            created: now,
            channel: WaveChannel::Cch,
            payload: cmd.encode(),
        };
        self.send(OPERATOR_NODE, TELEOP_VEHICLE, wsm);
        let next = now + self.scenario.command_period;
        if next <= self.scenario.total_sim_time {
            self.sim
                .schedule_at_with_priority(next, PRIO_APP, TeleopEvent::OperatorDownlink);
        }
    }

    fn apply_mac_actions(&mut self, node: u32, actions: Vec<MacAction>) {
        let now = self.sim.now();
        for action in actions {
            match action {
                MacAction::SetTimer { at, token } => {
                    self.sim.schedule_at_with_priority(
                        at.max(now),
                        PRIO_RADIO,
                        TeleopEvent::MacTimer { node, token },
                    );
                }
                MacAction::StartTx(wsm) => {
                    let out = self.medium.transmit(NodeId(node), wsm, now);
                    self.sim.schedule_at_with_priority(
                        now + out.duration,
                        PRIO_RADIO,
                        TeleopEvent::TxEnd { node },
                    );
                    for r in out.receptions {
                        self.sim.schedule_at_with_priority(
                            r.start,
                            PRIO_RADIO,
                            TeleopEvent::RxStart {
                                reception: Box::new(r.clone()),
                            },
                        );
                        self.sim.schedule_at_with_priority(
                            r.end,
                            PRIO_RADIO,
                            TeleopEvent::RxEnd {
                                reception: Box::new(r),
                            },
                        );
                    }
                }
                MacAction::Drop { .. } => {}
            }
        }
    }

    fn on_rx_end(&mut self, reception: PlannedReception) {
        let result = self.medium.reception_finished(&reception);
        if result.is_received() {
            self.deliver(reception.rx.0, &reception.wsm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{AttackModelKind, AttackSpec};

    fn scenario() -> TeleopScenario {
        TeleopScenario {
            total_sim_time: SimTime::from_secs(60),
            ..TeleopScenario::highway_default()
        }
    }

    #[test]
    fn status_and_command_round_trip() {
        let s = StatusMsg {
            pos_m: 123.0,
            speed_mps: 19.5,
            sampled: SimTime::from_secs(3),
        };
        assert_eq!(StatusMsg::decode(s.encode()), Some(s));
        let c = CommandMsg {
            target_speed_mps: 0.0,
            issued: SimTime::from_secs(4),
        };
        assert_eq!(CommandMsg::decode(c.encode()), Some(c));
        // Cross-decoding fails on the tag.
        assert_eq!(StatusMsg::decode(c.encode()), None);
        assert_eq!(CommandMsg::decode(s.encode()), None);
    }

    #[test]
    fn healthy_teleoperation_stops_before_the_obstacle() {
        let mut w = TeleopWorld::new(&scenario(), 1).unwrap();
        w.run_to_end();
        assert!(w.commands_received() > 100, "command link alive");
        assert!(w.statuses_received() > 100, "status link alive");
        let log = w.into_log();
        assert!(
            !log.trace.has_collision(),
            "operator must stop the vehicle in time"
        );
        let tr = log.trace.vehicle(VehicleId(TELEOP_VEHICLE)).unwrap();
        let final_pos = tr.pos.last_value().unwrap();
        // Stopped short of the obstacle but well past the start.
        assert!(final_pos > 500.0, "vehicle drove: {final_pos}");
        assert!(
            final_pos < scenario().obstacle_pos_m - scenario().vehicle.length_m,
            "vehicle stopped short: {final_pos}"
        );
        let final_speed = tr.speed.last_value().unwrap();
        assert!(final_speed < 0.1, "vehicle at rest: {final_speed}");
    }

    #[test]
    fn dos_on_the_link_crashes_into_the_obstacle() {
        let mut w = TeleopWorld::new(&scenario(), 1).unwrap();
        // Let the vehicle get close, then cut the link entirely.
        w.run_until(SimTime::from_secs(20));
        let attack = AttackSpec {
            model: AttackModelKind::Dos,
            value: 60.0,
            targets: vec![TELEOP_VEHICLE].into(),
            start: SimTime::from_secs(20),
            end: SimTime::from_secs(60),
        };
        w.install_attack(attack.build_interceptor(0));
        w.run_to_end();
        let log = w.into_log();
        assert!(
            log.trace.has_collision(),
            "with stale cruise commands the vehicle must hit the obstacle"
        );
        let c = log.trace.first_collision().unwrap();
        assert_eq!(c.collider, VehicleId(TELEOP_VEHICLE));
        assert_eq!(c.victim, VehicleId(OBSTACLE_VEHICLE));
    }

    #[test]
    fn command_delay_shrinks_the_stopping_margin() {
        let margin = |delay: Option<f64>| {
            let mut w = TeleopWorld::new(&scenario(), 1).unwrap();
            if let Some(pd) = delay {
                let attack = AttackSpec {
                    model: AttackModelKind::Delay,
                    value: pd,
                    targets: vec![TELEOP_VEHICLE].into(),
                    start: SimTime::ZERO,
                    end: SimTime::from_secs(60),
                };
                w.install_attack(attack.build_interceptor(0));
            }
            w.run_to_end();
            let log = w.into_log();
            let tr = log.trace.vehicle(VehicleId(TELEOP_VEHICLE)).unwrap();
            let final_pos = tr.pos.last_value().unwrap();
            (
                scenario().obstacle_pos_m - scenario().vehicle.length_m - final_pos,
                log,
            )
        };
        let (clean_margin, _) = margin(None);
        let (delayed_margin, log) = margin(Some(1.0));
        assert!(
            delayed_margin < clean_margin,
            "1 s of command delay must eat into the margin: {delayed_margin} vs {clean_margin}"
        );
        assert!(log.channel.links_delay_modified > 0);
    }

    #[test]
    fn cellular_link_drives_safely_too() {
        let mut scenario = TeleopScenario::highway_cellular();
        scenario.total_sim_time = SimTime::from_secs(60);
        let mut w = TeleopWorld::new(&scenario, 5).unwrap();
        w.run_to_end();
        assert!(w.commands_received() > 100, "cellular downlink alive");
        assert!(w.statuses_received() > 100, "cellular uplink alive");
        let lost = w.cellular_losses();
        assert!(lost > 0, "1% bearer loss should show over ~1200 packets");
        let log = w.into_log();
        assert!(!log.trace.has_collision(), "50 ms latency is manageable");
    }

    #[test]
    fn cellular_dos_crashes_like_wave_dos() {
        let mut scenario = TeleopScenario::highway_cellular();
        scenario.total_sim_time = SimTime::from_secs(60);
        let mut w = TeleopWorld::new(&scenario, 5).unwrap();
        w.run_until(SimTime::from_secs(20));
        let attack = AttackSpec {
            model: AttackModelKind::Dos,
            value: 60.0,
            targets: vec![TELEOP_VEHICLE].into(),
            start: SimTime::from_secs(20),
            end: SimTime::from_secs(60),
        };
        w.install_attack(attack.build_interceptor(0));
        w.run_to_end();
        let log = w.into_log();
        assert!(
            log.trace.has_collision(),
            "DoS on the bearer must crash the vehicle"
        );
    }

    #[test]
    fn cellular_latency_attack_erodes_margin() {
        let margin = |extra_delay: Option<f64>| {
            let scenario = TeleopScenario::highway_cellular();
            let mut w = TeleopWorld::new(&scenario, 5).unwrap();
            if let Some(pd) = extra_delay {
                let attack = AttackSpec {
                    model: AttackModelKind::Delay,
                    value: pd,
                    targets: vec![TELEOP_VEHICLE].into(),
                    start: SimTime::ZERO,
                    end: scenario.total_sim_time,
                };
                w.install_attack(attack.build_interceptor(0));
            }
            w.run_to_end();
            let log = w.into_log();
            let tr = log.trace.vehicle(VehicleId(TELEOP_VEHICLE)).unwrap();
            TeleopScenario::highway_default().obstacle_pos_m
                - TeleopScenario::highway_default().vehicle.length_m
                - tr.pos.max_value().unwrap()
        };
        assert!(margin(Some(0.8)) < margin(None));
    }

    #[test]
    fn cellular_is_deterministic() {
        let run = |seed| {
            let mut w = TeleopWorld::new(&TeleopScenario::highway_cellular(), seed).unwrap();
            w.run_to_end();
            (
                w.commands_received(),
                w.statuses_received(),
                w.cellular_losses(),
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn cellular_loss_probability_validated() {
        let mut s = TeleopScenario::highway_cellular();
        if let TeleopLink::Cellular {
            ref mut loss_probability,
            ..
        } = s.link
        {
            *loss_probability = 1.5;
        }
        assert!(s.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_geometry() {
        let mut s = scenario();
        s.obstacle_pos_m = 50.0; // behind the start
        assert!(TeleopWorld::new(&s, 1).is_err());
        let mut s = scenario();
        s.cruise_speed_mps = 0.0;
        assert!(s.validate().is_err());
        let mut s = scenario();
        s.command_period = SimDuration::ZERO;
        assert!(s.validate().is_err());
        let mut s = scenario();
        s.planning_decel_mps2 = 0.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn teleop_world_is_deterministic() {
        let run = |seed| {
            let mut w = TeleopWorld::new(&scenario(), seed).unwrap();
            w.run_to_end();
            let log = w.into_log();
            let tr = log.trace.vehicle(VehicleId(TELEOP_VEHICLE)).unwrap();
            tr.pos.last_value().unwrap()
        };
        assert_eq!(run(9), run(9));
    }
}
