//! Run logs — what a simulation leaves behind for classification and
//! analysis (the paper's `GoldenRunLog` / `AttackCampaignLog` entries).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use comfase_des::time::SimTime;
use comfase_platoon::app::AppStats;
use comfase_traffic::trace::TrafficTrace;
use comfase_wireless::channel::ChannelStats;
use comfase_wireless::mac::MacStats;

/// Communication statistics of one vehicle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VehicleCommStats {
    /// MAC-layer counters.
    pub mac: MacStats,
    /// Application-layer counters.
    pub app: AppStats,
}

/// The complete log of one simulation run (golden or attacked).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunLog {
    /// Per-vehicle trajectories and collision incidents (from the traffic
    /// simulator — speed, acceleration/deceleration, position, §II-C).
    pub trace: TrafficTrace,
    /// Wireless channel counters (from the vehicular network simulator).
    pub channel: ChannelStats,
    /// Per-vehicle communication counters.
    pub comm: BTreeMap<u32, VehicleCommStats>,
    /// Time the run ended.
    pub final_time: SimTime,
}

impl RunLog {
    /// Largest deceleration across all vehicles, m/s².
    pub fn max_decel(&self) -> f64 {
        self.trace.max_decel_overall()
    }

    /// `true` if any collision incident was recorded.
    pub fn has_collision(&self) -> bool {
        self.trace.has_collision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comfase_traffic::network::LaneIndex;
    use comfase_traffic::vehicle::{Vehicle, VehicleId, VehicleSpec};

    fn small_log() -> RunLog {
        let mut trace = TrafficTrace::new();
        let v = Vehicle::new(
            VehicleId(1),
            VehicleSpec::paper_platooning_car(),
            10.0,
            LaneIndex(0),
            20.0,
        );
        trace.record_step(SimTime::from_millis(10), &[v]);
        let mut comm = BTreeMap::new();
        comm.insert(1, VehicleCommStats::default());
        RunLog {
            trace,
            channel: ChannelStats::default(),
            comm,
            final_time: SimTime::from_secs(1),
        }
    }

    #[test]
    fn run_log_serializes_to_json_and_back() {
        let log = small_log();
        let json = serde_json::to_string(&log).unwrap();
        let back: RunLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.final_time, log.final_time);
        assert_eq!(back.trace.vehicle_ids(), log.trace.vehicle_ids());
        assert_eq!(back.comm.len(), 1);
    }

    #[test]
    fn helpers_summarise_the_trace() {
        let log = small_log();
        assert_eq!(log.max_decel(), 0.0);
        assert!(!log.has_collision());
    }
}
