//! Run logs — what a simulation leaves behind for classification and
//! analysis (the paper's `GoldenRunLog` / `AttackCampaignLog` entries).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use comfase_des::time::SimTime;
use comfase_obs::{FrameBreakdown, KernelCounters, MetricsSnapshot};
use comfase_platoon::app::AppStats;
use comfase_traffic::simulation::TrafficStats;
use comfase_traffic::trace::TrafficTrace;
use comfase_wireless::channel::ChannelStats;
use comfase_wireless::mac::MacStats;

/// Communication statistics of one vehicle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VehicleCommStats {
    /// MAC-layer counters.
    pub mac: MacStats,
    /// Application-layer counters.
    pub app: AppStats,
}

/// The complete log of one simulation run (golden or attacked).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunLog {
    /// Per-vehicle trajectories and collision incidents (from the traffic
    /// simulator — speed, acceleration/deceleration, position, §II-C).
    pub trace: TrafficTrace,
    /// Wireless channel counters (from the vehicular network simulator).
    pub channel: ChannelStats,
    /// Per-vehicle communication counters.
    pub comm: BTreeMap<u32, VehicleCommStats>,
    /// Time the run ended.
    pub final_time: SimTime,
    /// DES-kernel event accounting (scheduled/delivered/cancelled/pending).
    #[serde(default)]
    pub kernel: KernelCounters,
    /// Traffic-level safety counters (steps, collisions, hard braking).
    #[serde(default)]
    pub traffic_stats: TrafficStats,
    /// Named telemetry counters, histograms and trace events. Empty unless
    /// the run was built with telemetry enabled
    /// ([`crate::world::World::with_obs`]).
    #[serde(default)]
    pub obs: MetricsSnapshot,
}

impl RunLog {
    /// Largest deceleration across all vehicles, m/s².
    pub fn max_decel(&self) -> f64 {
        self.trace.max_decel_overall()
    }

    /// `true` if any collision incident was recorded.
    pub fn has_collision(&self) -> bool {
        self.trace.has_collision()
    }

    /// Attributes every frame of the run to its fate, combining channel,
    /// MAC and telemetry counters.
    ///
    /// The identity `links_planned == received + lost_snir +
    /// lost_sensitivity + rx_inactive + in_flight_at_end` holds exactly
    /// when the run was recorded with telemetry enabled; without telemetry
    /// the `rx_inactive` share is indistinguishable from links still in
    /// flight and is folded into `in_flight_at_end`.
    pub fn frame_breakdown(&self) -> FrameBreakdown {
        let ch = &self.channel;
        let decided = ch.received + ch.lost_snir + ch.lost_sensitivity;
        let rx_inactive = self.obs.counter("phy.rx.inactive");
        // Decided + inactive exceeding planned means the closed frame-fate
        // invariant is already broken upstream. Record the fault instead of
        // letting the saturation silently absorb it (sim-sanitizer builds
        // fail fast).
        let accounting_underflow =
            u64::from(decided + rx_inactive > ch.links_planned || ch.received > ch.links_planned);
        debug_assert!(
            accounting_underflow == 0,
            "frame-fate accounting underflow: planned {} < decided {} + rx_inactive {rx_inactive}",
            ch.links_planned,
            decided
        );
        let in_flight_at_end = ch
            .links_planned
            .saturating_sub(decided)
            .saturating_sub(rx_inactive);
        // Integer turbofish: pins the element type so the map-order-sensitive
        // float `Sum` impls can never be selected (lint rule D7).
        let mac_dropped_queue_full = self
            .comm
            .values()
            .map(|c| c.mac.dropped_queue_full)
            .sum::<u64>();
        let mac_deferrals = self.comm.values().map(|c| c.mac.deferrals).sum::<u64>();
        let mac_deferrals_guard = self
            .comm
            .values()
            .map(|c| c.mac.deferrals_guard)
            .sum::<u64>();
        FrameBreakdown {
            transmissions: ch.transmissions,
            links_planned: ch.links_planned,
            received: ch.received,
            lost_snir: ch.lost_snir,
            lost_sensitivity: ch.lost_sensitivity,
            dropped_interceptor: ch.links_dropped_by_interceptor,
            below_noise: ch.links_below_noise,
            rx_inactive,
            in_flight_at_end,
            mac_dropped_queue_full,
            mac_deferrals_busy: mac_deferrals.saturating_sub(mac_deferrals_guard),
            mac_deferrals_guard,
            accounting_underflow,
        }
    }

    /// Builds the per-experiment metrics row for `metrics.json`.
    ///
    /// Counters under a substrate-diagnostic prefix
    /// ([`comfase_obs::SUBSTRATE_COUNTER_PREFIXES`]) are excluded:
    /// `index.*` legitimately differs between indexed and brute-force
    /// runs, `exec.*` between execution modes (mid-attack forks), and
    /// `metrics.json` must stay byte-identical across both axes.
    pub fn experiment_metrics(
        &self,
        index: usize,
        classification: String,
    ) -> comfase_obs::ExperimentMetrics {
        comfase_obs::ExperimentMetrics {
            index,
            classification,
            max_decel_mps2: self.max_decel(),
            collisions: self.traffic_stats.collisions,
            kernel: self.kernel,
            frames: self.frame_breakdown(),
            counters: self
                .obs
                .counters
                .iter()
                .filter(|(k, _)| {
                    !comfase_obs::SUBSTRATE_COUNTER_PREFIXES
                        .iter()
                        .any(|p| k.starts_with(p))
                })
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comfase_traffic::network::LaneIndex;
    use comfase_traffic::vehicle::{Vehicle, VehicleId, VehicleSpec};

    fn small_log() -> RunLog {
        let mut trace = TrafficTrace::new();
        let v = Vehicle::new(
            VehicleId(1),
            VehicleSpec::paper_platooning_car(),
            10.0,
            LaneIndex(0),
            20.0,
        );
        trace.record_step(SimTime::from_millis(10), &[v]);
        let mut comm = BTreeMap::new();
        comm.insert(1, VehicleCommStats::default());
        RunLog {
            trace,
            channel: ChannelStats::default(),
            comm,
            final_time: SimTime::from_secs(1),
            kernel: KernelCounters::default(),
            traffic_stats: TrafficStats::default(),
            obs: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn run_log_serializes_to_json_and_back() {
        let log = small_log();
        let json = serde_json::to_string(&log).unwrap();
        let back: RunLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.final_time, log.final_time);
        assert_eq!(back.trace.vehicle_ids(), log.trace.vehicle_ids());
        assert_eq!(back.comm.len(), 1);
    }

    #[test]
    fn helpers_summarise_the_trace() {
        let log = small_log();
        assert_eq!(log.max_decel(), 0.0);
        assert!(!log.has_collision());
    }

    #[test]
    fn frame_breakdown_combines_channel_mac_and_telemetry() {
        let mut log = small_log();
        log.channel.transmissions = 10;
        log.channel.links_planned = 30;
        log.channel.received = 20;
        log.channel.lost_snir = 4;
        log.channel.lost_sensitivity = 1;
        log.channel.links_dropped_by_interceptor = 7;
        log.channel.links_below_noise = 2;
        log.obs.counters.insert("phy.rx.inactive".into(), 3);
        log.comm.get_mut(&1).unwrap().mac = MacStats {
            dropped_queue_full: 5,
            deferrals: 9,
            deferrals_guard: 4,
            ..MacStats::default()
        };
        let f = log.frame_breakdown();
        assert_eq!(f.rx_inactive, 3);
        assert_eq!(f.in_flight_at_end, 2, "30 - 20 - 4 - 1 - 3");
        assert_eq!(
            f.links_planned,
            f.received + f.lost_snir + f.lost_sensitivity + f.rx_inactive + f.in_flight_at_end
        );
        assert_eq!(f.dropped_interceptor, 7);
        assert_eq!(f.below_noise, 2);
        assert_eq!(f.mac_dropped_queue_full, 5);
        assert_eq!(f.mac_deferrals_busy, 5);
        assert_eq!(f.mac_deferrals_guard, 4);
        assert_eq!(f.accounting_underflow, 0);
        assert_eq!(f.not_delivered(), 10);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn frame_breakdown_records_accounting_underflow() {
        let mut log = small_log();
        log.channel.links_planned = 5;
        log.channel.received = 7; // invariant already broken upstream
        let f = log.frame_breakdown();
        assert_eq!(f.accounting_underflow, 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "frame-fate accounting underflow")]
    fn frame_breakdown_underflow_trips_the_sim_sanitizer() {
        let mut log = small_log();
        log.channel.links_planned = 5;
        log.channel.received = 7;
        let _ = log.frame_breakdown();
    }
}
