//! # ComFASE — a communication fault and attack simulation engine
//!
//! A Rust reproduction of *"ComFASE: A Tool for Evaluating the Effects of
//! V2V Communication Faults and Attacks on Automated Vehicles"* (Malik et
//! al., DSN 2022), built on pure-Rust substrates for the original stack
//! (OMNeT++/SUMO/Veins/Plexe — see the `comfase-des`, `comfase-traffic`,
//! `comfase-wireless` and `comfase-platoon` crates).
//!
//! The tool injects faults and cybersecurity attacks into the wireless
//! channel of a vehicular network and evaluates their safety implications
//! on the target vehicle *and the surrounding traffic*:
//!
//! 1. **Test configuration** ([`config`]) — traffic scenario, communication
//!    model and attack campaign setup, with the paper's §IV presets;
//! 2. **Golden run** ([`engine::Engine::golden_run`]) — the attack-free
//!    reference;
//! 3. **Attack injection campaign** ([`campaign`]) — batches of
//!    experiments, each a three-phase simulation with the attack
//!    interceptor installed for its window ([`attack`], [`world`]);
//! 4. **Classification** ([`classify`]) — non-effective / negligible /
//!    benign / severe verdicts from deceleration profiles and collision
//!    incidents, plus collider attribution ([`analysis`]) and plain-text
//!    regeneration of every table and figure ([`report`]).
//!
//! # Quick start
//!
//! ```no_run
//! use comfase::prelude::*;
//! use comfase_des::time::SimTime;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let engine = Engine::paper_default(42)?;
//! let golden = engine.golden_run()?;
//! let attack = AttackSpec {
//!     model: AttackModelKind::Delay,
//!     value: 1.0, // seconds of propagation delay
//!     targets: vec![2].into(),
//!     start: SimTime::from_secs(17),
//!     end: SimTime::from_secs(22),
//! };
//! let run = engine.run_experiment(&attack, 0)?;
//! let verdict = engine.classify_experiment(&golden, &run);
//! println!("{}: max decel {:.2} m/s²", verdict.class, verdict.max_decel_mps2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod attack;
pub mod cache;
pub mod campaign;
pub mod classify;
pub mod config;
pub mod engine;
pub mod error;
pub mod fingerprint;
pub mod journal;
pub mod log;
pub mod report;
pub mod teleop;
pub mod world;

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::attack::{AttackModelKind, AttackSpec, FalsifiedField};
    pub use crate::cache::{CacheEntry, CacheKey, CacheKeyBase, CacheLookup, ExperimentCache};
    pub use crate::campaign::{
        plan_units, Campaign, CampaignObserver, CampaignPhase, CampaignResult, CampaignStats,
        ChaosConfig, DagPlan, DagUnit, ExecutionMode, ExperimentFailure, ExperimentRecord,
        FailureKind, FailurePolicy, IoChaosConfig, LeaseState, NullObserver, RetryPolicy,
        RunConfig, ShardRange, WorkSource, WorkUnit,
    };
    pub use crate::classify::{Classification, ClassificationParams, Verdict};
    pub use crate::config::{
        AttackCampaignSetup, CommModel, ManeuverKind, TrafficScenario, WirelessModelKind,
    };
    pub use crate::engine::Engine;
    pub use crate::error::ComfaseError;
    pub use crate::journal::{
        read_journal, JournalEntry, JournalHeader, JournalState, JournalWriter,
    };
    pub use crate::log::RunLog;
    pub use crate::teleop::{TeleopLink, TeleopScenario, TeleopWorld};
    pub use crate::world::{IndexingMode, JammerSpec, RunFault, RunFaultKind, World};
    pub use comfase_des::sim::EventBudget;
    pub use comfase_obs::{
        chrome_trace_json, CampaignMetrics, DatasetSink, DirSink, ExperimentMetrics,
        FrameBreakdown, HostProfiler, KernelCounters, MetricsSnapshot, NullSink, ObsConfig,
        WallDeadline,
    };
}
