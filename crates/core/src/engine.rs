//! The ComFASE execution flow (paper Algo. 1).
//!
//! [`Engine`] owns a validated test configuration (Step 1) and provides:
//!
//! - [`Engine::golden_run`] — Step 2, the attack-free reference run;
//! - [`Engine::run_experiment`] — one Step-3 experiment: simulate until
//!   `attackStartTime` with the configured communication model, install
//!   the updated model (`CommModelEditor`), simulate until
//!   `attackEndTime`, restore the model, simulate to `totalSimTime`;
//! - [`Engine::classify_experiment`] — Step 4 for a single run.
//!
//! Campaign iteration (the three nested loops) lives in [`crate::campaign`].

use comfase_des::sim::EventBudget;
use comfase_des::time::SimTime;
use comfase_obs::ObsConfig;

use crate::attack::AttackSpec;
use crate::classify::{classify, ClassificationParams, Verdict};
use crate::config::{AttackCampaignSetup, CommModel, TrafficScenario};
use crate::error::ComfaseError;
use crate::log::RunLog;
use crate::world::{IndexingMode, World};

/// The ComFASE engine for one test configuration.
#[derive(Debug, Clone)]
pub struct Engine {
    scenario: TrafficScenario,
    comm: CommModel,
    seed: u64,
    obs: ObsConfig,
    budget: EventBudget,
    indexing: IndexingMode,
}

impl Engine {
    /// Creates an engine after validating the configuration (Step 1).
    ///
    /// # Errors
    ///
    /// Fails if the scenario or communication model is invalid.
    pub fn new(
        scenario: TrafficScenario,
        comm: CommModel,
        seed: u64,
    ) -> Result<Self, ComfaseError> {
        scenario.validate()?;
        comm.validate()?;
        Ok(Engine {
            scenario,
            comm,
            seed,
            obs: ObsConfig::disabled(),
            budget: EventBudget::UNLIMITED,
            indexing: IndexingMode::default(),
        })
    }

    /// Selects the execution substrate (spatial indexes vs brute-force
    /// reference scans) for every world this engine builds. Runs are
    /// bit-identical in both modes.
    #[must_use]
    pub fn with_indexing(mut self, indexing: IndexingMode) -> Self {
        self.indexing = indexing;
        self
    }

    /// The configured execution substrate.
    pub fn indexing(&self) -> IndexingMode {
        self.indexing
    }

    /// Builds a world with this engine's telemetry and indexing settings.
    fn build_world(&self) -> Result<World, ComfaseError> {
        let mut world = World::with_obs(&self.scenario, &self.comm, self.seed, self.obs)?;
        world.set_indexing(self.indexing);
        Ok(world)
    }

    /// Installs a sim-event / sim-time budget on every *experiment* run
    /// this engine executes (the deterministic watchdog). Golden runs and
    /// prefix snapshots are exempt: they are the references experiments are
    /// measured against and must complete.
    ///
    /// The event counter covers the whole run from t = 0 (it is part of
    /// the snapshot state), so forked and from-scratch experiments breach
    /// on the identical event. For mode-identical failure records the
    /// budget must exceed the attack-free prefix cost — a budget that a
    /// healthy prefix already exhausts would breach during different
    /// phases in the two modes.
    #[must_use]
    pub fn with_budget(mut self, budget: EventBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The experiment budget.
    pub fn budget(&self) -> EventBudget {
        self.budget
    }

    /// Enables telemetry for every world this engine builds. All recorded
    /// values are sim-derived, so runs stay bit-identical across execution
    /// modes and thread counts.
    #[must_use]
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// The telemetry configuration.
    pub fn obs(&self) -> ObsConfig {
        self.obs
    }

    /// An engine for the paper's demonstration setup (§IV-A).
    ///
    /// # Errors
    ///
    /// Never fails for the built-in presets; the `Result` mirrors
    /// [`Engine::new`].
    pub fn paper_default(seed: u64) -> Result<Self, ComfaseError> {
        Engine::new(
            TrafficScenario::paper_default(),
            CommModel::paper_default(),
            seed,
        )
    }

    /// The configured scenario.
    pub fn scenario(&self) -> &TrafficScenario {
        &self.scenario
    }

    /// The configured communication model.
    pub fn comm(&self) -> &CommModel {
        &self.comm
    }

    /// The base RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Step 2: the golden (attack-free) run.
    ///
    /// # Errors
    ///
    /// Propagates world-construction failures.
    pub fn golden_run(&self) -> Result<RunLog, ComfaseError> {
        let mut world = self.build_world()?;
        world.run_to_end();
        Ok(world.into_log())
    }

    /// Step 3, one experiment: three-phase simulation with the updated
    /// communication model active in `[attack.start, attack.end)`.
    ///
    /// `experiment_index` decorrelates the RNG streams of independent
    /// experiments (seed = campaign seed; the *simulation* is deterministic
    /// for a given seed regardless of the index, matching the golden run,
    /// so differences come from the attack alone — the index only seeds
    /// probabilistic attack models).
    ///
    /// # Errors
    ///
    /// Propagates world-construction failures; returns
    /// [`ComfaseError::BudgetExceeded`] / [`ComfaseError::NumericDiverged`]
    /// when the run faults (a faulted world stops executing, so the
    /// three-phase sequence below is safe without special-casing).
    pub fn run_experiment(
        &self,
        attack: &AttackSpec,
        experiment_index: u64,
    ) -> Result<RunLog, ComfaseError> {
        let mut world = self.build_world()?;
        world.set_budget(self.budget);
        // Line 12: simulate with the pristine model until the attack starts.
        world.run_until(attack.start);
        // Line 11 + 13: install the updated communication model, simulate
        // until the attack ends.
        world.install_attack(attack.build_interceptor(self.seed ^ experiment_index));
        world.run_until(attack.end.min(world.total_time()));
        // Line 14: restore and run to the end.
        world.clear_attack();
        world.run_to_end();
        if let Some(fault) = world.fault() {
            return Err(fault.to_error());
        }
        Ok(world.into_log())
    }

    /// Builds an attack-free prefix snapshot: a [`World`] simulated from
    /// t = 0 to `until` with the pristine communication model.
    ///
    /// A campaign with many experiments sharing the same `attack.start`
    /// builds this once and forks each experiment from it with
    /// [`Engine::run_experiment_from`], skipping the shared prefix.
    ///
    /// # Errors
    ///
    /// Propagates world-construction failures.
    pub fn prefix_snapshot(&self, until: SimTime) -> Result<World, ComfaseError> {
        let mut world = self.build_world()?;
        world.run_until(until);
        Ok(world)
    }

    /// Builds one attack-free prefix snapshot per entry of `starts`
    /// (ascending, deduplicated) by advancing a *single* world through the
    /// sorted start times and snapshotting at each — the level-1 chain of
    /// the snapshot DAG. Splitting `run_until` at the snapshot points is
    /// event-exact, so `result[i]` is bit-identical to
    /// [`Engine::prefix_snapshot`]`(starts[i])` at the cost of one pass
    /// over `[0, starts.last()]` instead of one pass per start.
    ///
    /// # Errors
    ///
    /// Propagates world-construction failures.
    pub fn prefix_snapshots_chained(&self, starts: &[SimTime]) -> Result<Vec<World>, ComfaseError> {
        debug_assert!(starts.windows(2).all(|w| w[0] < w[1]));
        let mut world = self.build_world()?;
        let mut snapshots = Vec::with_capacity(starts.len());
        for &start in starts {
            world.run_until(start);
            snapshots.push(world.clone());
        }
        Ok(snapshots)
    }

    /// Step 3, one experiment, resumed from a prefix snapshot.
    ///
    /// `prefix` must be a snapshot produced by
    /// [`Engine::prefix_snapshot`]`(attack.start)` on this engine; the run
    /// is then bit-identical to [`Engine::run_experiment`] with the same
    /// `attack` and `experiment_index`, at a fraction of the cost — a
    /// faulting experiment reproduces the identical error, because all
    /// fault state (event counters, numeric guards) is simulation state
    /// carried by the snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ComfaseError::BudgetExceeded`] /
    /// [`ComfaseError::NumericDiverged`] when the run faults.
    pub fn run_experiment_from(
        &self,
        prefix: &World,
        attack: &AttackSpec,
        experiment_index: u64,
    ) -> Result<RunLog, ComfaseError> {
        let mut world = prefix.clone();
        world.set_budget(self.budget);
        // The prefix already covers [0, attack.start); phases two and three
        // are identical to `run_experiment`.
        world.run_until(attack.start);
        world.install_attack(attack.build_interceptor(self.seed ^ experiment_index));
        world.run_until(attack.end.min(world.total_time()));
        world.clear_attack();
        world.run_to_end();
        if let Some(fault) = world.fault() {
            return Err(fault.to_error());
        }
        Ok(world.into_log())
    }

    /// Step 4 for one experiment: classify against a golden run.
    pub fn classify_experiment(&self, golden: &RunLog, run: &RunLog) -> Verdict {
        let params = ClassificationParams::from_golden(&golden.trace);
        classify(&golden.trace, &run.trace, &params)
    }

    /// Expands a campaign setup into the concrete experiment list, in the
    /// paper's nested-loop order (start → value → end; Algo. 1 lines 8-10).
    ///
    /// # Errors
    ///
    /// Fails if the setup is inconsistent with the scenario.
    pub fn expand_campaign(
        &self,
        setup: &AttackCampaignSetup,
    ) -> Result<Vec<AttackSpec>, ComfaseError> {
        setup.validate(&self.scenario)?;
        let total = self.scenario.total_sim_time;
        // One shared allocation for all specs instead of a Vec clone each.
        let targets: std::sync::Arc<[u32]> = setup.target_vehicles.as_slice().into();
        let mut specs = Vec::with_capacity(setup.nr_experiments());
        for &start_s in &setup.attack_starts_s {
            for &value in &setup.attack_values {
                for &duration_s in &setup.attack_durations_s {
                    let start = SimTime::from_secs_f64(start_s);
                    let end = if duration_s.is_finite() {
                        start + comfase_des::time::SimDuration::from_secs_f64(duration_s)
                    } else {
                        total
                    };
                    specs.push(AttackSpec {
                        model: setup.attack_model,
                        value,
                        targets: targets.clone(),
                        start,
                        end: end.min(total),
                    });
                }
            }
        }
        Ok(specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackModelKind;
    use crate::classify::Classification;
    use comfase_des::time::SimDuration;

    fn quick_engine() -> Engine {
        // Shorter horizon for test speed.
        let mut scenario = TrafficScenario::paper_default();
        scenario.total_sim_time = SimTime::from_secs(30);
        Engine::new(scenario, CommModel::paper_default(), 7).unwrap()
    }

    #[test]
    fn golden_run_is_collision_free_and_calibrated() {
        let golden = quick_engine().golden_run().unwrap();
        assert!(!golden.has_collision(), "golden run must not collide");
        let max_decel = golden.max_decel();
        assert!(
            (0.8..=2.5).contains(&max_decel),
            "golden max decel {max_decel} should be near the paper's 1.53"
        );
    }

    #[test]
    fn golden_runs_are_reproducible() {
        let e = quick_engine();
        let a = e.golden_run().unwrap();
        let b = e.golden_run().unwrap();
        assert_eq!(a.max_decel(), b.max_decel());
        assert_eq!(a.channel, b.channel);
    }

    #[test]
    fn dos_attack_causes_severe_outcome() {
        let e = quick_engine();
        let golden = e.golden_run().unwrap();
        let attack = AttackSpec {
            model: AttackModelKind::Dos,
            value: 60.0,
            targets: vec![2].into(),
            start: SimTime::from_secs(17),
            end: SimTime::from_secs(30),
        };
        let run = e.run_experiment(&attack, 0).unwrap();
        let verdict = e.classify_experiment(&golden, &run);
        assert_eq!(verdict.class, Classification::Severe, "verdict {verdict:?}");
    }

    #[test]
    fn experiment_without_attack_effect_stays_non_effective() {
        // A delay attack with the default-equal value (0 s PD is below any
        // real propagation delay, but targeting a vehicle not in the
        // platoon is rejected, so use an attack window of zero length).
        let e = quick_engine();
        let golden = e.golden_run().unwrap();
        let attack = AttackSpec {
            model: AttackModelKind::Delay,
            value: 1.0,
            targets: vec![2].into(),
            start: SimTime::from_secs(17),
            end: SimTime::from_secs(17), // empty window
        };
        let run = e.run_experiment(&attack, 0).unwrap();
        let verdict = e.classify_experiment(&golden, &run);
        assert_eq!(
            verdict.class,
            Classification::NonEffective,
            "verdict {verdict:?}"
        );
    }

    #[test]
    fn forked_experiment_is_bit_identical_to_from_scratch() {
        let e = quick_engine();
        let attack = AttackSpec {
            model: AttackModelKind::Delay,
            value: 2.0,
            targets: vec![2].into(),
            start: SimTime::from_secs(17),
            end: SimTime::from_secs(22),
        };
        let scratch = e.run_experiment(&attack, 3).unwrap();
        let prefix = e.prefix_snapshot(attack.start).unwrap();
        let forked = e.run_experiment_from(&prefix, &attack, 3).unwrap();
        assert_eq!(
            scratch, forked,
            "fork-resumed run must equal the from-scratch run"
        );
        // The prefix is reusable: forking again gives the same log.
        let again = e.run_experiment_from(&prefix, &attack, 3).unwrap();
        assert_eq!(forked, again);
    }

    #[test]
    fn indexed_and_brute_force_runs_are_bit_identical() {
        let e = quick_engine();
        let brute = e.clone().with_indexing(IndexingMode::BruteForce);
        assert_eq!(e.indexing(), IndexingMode::Indexed, "indexed is default");
        let golden_idx = e.golden_run().unwrap();
        let golden_brute = brute.golden_run().unwrap();
        assert_eq!(
            golden_idx, golden_brute,
            "golden runs must agree bit for bit"
        );
        let attack = AttackSpec {
            model: AttackModelKind::Delay,
            value: 2.0,
            targets: vec![2].into(),
            start: SimTime::from_secs(17),
            end: SimTime::from_secs(22),
        };
        let run_idx = e.run_experiment(&attack, 3).unwrap();
        let run_brute = brute.run_experiment(&attack, 3).unwrap();
        assert_eq!(run_idx, run_brute, "experiments must agree bit for bit");
    }

    #[test]
    fn expand_campaign_matches_nested_loop_order() {
        let e = quick_engine();
        let setup = AttackCampaignSetup {
            attack_model: AttackModelKind::Delay,
            target_vehicles: vec![2],
            attack_values: vec![0.2, 0.4],
            attack_starts_s: vec![17.0, 18.0],
            attack_durations_s: vec![1.0],
        };
        let specs = e.expand_campaign(&setup).unwrap();
        assert_eq!(specs.len(), 4);
        // Outer loop: start; middle: value.
        assert_eq!(specs[0].start, SimTime::from_secs(17));
        assert_eq!(specs[0].value, 0.2);
        assert_eq!(specs[1].value, 0.4);
        assert_eq!(specs[2].start, SimTime::from_secs(18));
        assert_eq!(specs[0].end, SimTime::from_secs(18));
    }

    #[test]
    fn expand_clamps_to_total_time() {
        let e = quick_engine();
        let setup = AttackCampaignSetup {
            attack_model: AttackModelKind::Dos,
            target_vehicles: vec![2],
            attack_values: vec![60.0],
            attack_starts_s: vec![17.0],
            attack_durations_s: vec![f64::INFINITY],
        };
        let specs = e.expand_campaign(&setup).unwrap();
        assert_eq!(specs[0].end, SimTime::from_secs(30));
    }

    #[test]
    fn delay_experiment_duration_sanity() {
        let e = quick_engine();
        let attack = AttackSpec {
            model: AttackModelKind::Delay,
            value: 2.0,
            targets: vec![2].into(),
            start: SimTime::from_secs(17),
            end: SimTime::from_secs(22),
        };
        assert_eq!(attack.duration(), SimDuration::from_secs(5));
        let run = e.run_experiment(&attack, 3).unwrap();
        assert_eq!(run.final_time, SimTime::from_secs(30));
        assert!(
            run.channel.links_delay_modified > 0,
            "attack must have touched links"
        );
    }
}
