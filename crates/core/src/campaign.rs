//! Attack injection campaigns — Step 3 of the execution flow, batched.
//!
//! A [`Campaign`] expands its setup into the nested-loop experiment list
//! (Algo. 1 lines 8–15), runs the golden run once, executes every
//! experiment (optionally across worker threads — experiments are fully
//! independent simulations) and classifies each against the golden run
//! (Step 4). The paper ran its 11 250 delay experiments in about 7 hours
//! on an 8-core machine; the pure-Rust stack finishes them in minutes.
//!
//! # Prefix forking
//!
//! Every experiment sharing an `attackStartTime` simulates an *identical*
//! attack-free prefix `[0, start)` — in the paper's delay campaign that is
//! 450 experiments per start time. The default execution mode
//! ([`ExecutionMode::PrefixFork`]) therefore builds one [`World`] snapshot
//! per distinct start time (in parallel across the workers) and **forks**
//! each experiment from its snapshot instead of re-simulating from t = 0.
//! Forked runs are bit-identical to from-scratch runs
//! ([`ExecutionMode::FromScratch`]); the engine's tests and the
//! `tests` crate assert this end to end.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use comfase_des::time::SimTime;
use comfase_obs::{CampaignMetrics, ExperimentMetrics, HostProfiler, ObsConfig};

use crate::attack::AttackSpec;
use crate::classify::{classify, ClassificationParams, Verdict};
use crate::config::AttackCampaignSetup;
use crate::engine::Engine;
use crate::error::ComfaseError;
use crate::log::RunLog;
use crate::world::World;

/// How the campaign executes its experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Fork each experiment from a shared attack-free prefix snapshot —
    /// one snapshot per distinct attack start time (the default).
    #[default]
    PrefixFork,
    /// Simulate every experiment from t = 0. Slower; kept as the
    /// reference implementation for equivalence tests and benchmarks.
    FromScratch,
}

/// The coarse phases of a campaign run, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignPhase {
    /// Step 2: the attack-free reference run.
    Golden,
    /// Prefix snapshots (one per distinct attack start time; skipped in
    /// [`ExecutionMode::FromScratch`]).
    Prefixes,
    /// Step 3 + 4: the experiment sweep.
    Experiments,
}

impl CampaignPhase {
    /// Stable phase name for profiles and progress lines.
    pub fn name(self) -> &'static str {
        match self {
            CampaignPhase::Golden => "golden",
            CampaignPhase::Prefixes => "prefixes",
            CampaignPhase::Experiments => "experiments",
        }
    }
}

/// Host-side hooks into a campaign run — phase boundaries and experiment
/// completions. Implementations may read wall clocks; nothing they observe
/// flows back into simulation state, so determinism of the run itself is
/// unaffected.
pub trait CampaignObserver: Sync {
    /// A phase is about to start.
    fn phase_started(&self, phase: CampaignPhase) {
        let _ = phase;
    }

    /// A phase completed.
    fn phase_finished(&self, phase: CampaignPhase) {
        let _ = phase;
    }

    /// An experiment finished (`done` of `total`). Called from worker
    /// threads, possibly concurrently.
    fn experiment_done(&self, done: usize, total: usize) {
        let _ = (done, total);
    }
}

/// Observer that does nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl CampaignObserver for NullObserver {}

/// A [`HostProfiler`] times each campaign phase.
impl CampaignObserver for HostProfiler {
    fn phase_started(&self, phase: CampaignPhase) {
        self.begin(phase.name());
    }

    fn phase_finished(&self, phase: CampaignPhase) {
        self.end(phase.name());
    }
}

/// Execution counters of one campaign run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Prefix snapshots built (one per distinct attack start time; 0 in
    /// [`ExecutionMode::FromScratch`]).
    pub prefix_snapshots: usize,
    /// Experiments forked from a prefix snapshot.
    pub forked_runs: usize,
    /// Experiments simulated from t = 0.
    pub scratch_runs: usize,
}

impl CampaignStats {
    /// Fraction of experiments that reused a prefix snapshot (0.0–1.0).
    pub fn snapshot_hit_rate(&self) -> f64 {
        let total = self.forked_runs + self.scratch_runs;
        if total == 0 {
            0.0
        } else {
            self.forked_runs as f64 / total as f64
        }
    }
}

/// Result of one attack injection experiment (one `AttackCampaignLog`
/// entry, classified).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// The paper's `expNr`.
    pub index: usize,
    /// The injected attack.
    pub spec: AttackSpec,
    /// The Step-4 classification.
    pub verdict: Verdict,
}

/// Result of a full campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// One record per experiment, in `expNr` order.
    pub records: Vec<ExperimentRecord>,
    /// Classification parameters derived from the golden run.
    pub params: ClassificationParams,
    /// The golden run log.
    pub golden: RunLog,
    /// Execution counters (snapshot reuse).
    #[serde(default)]
    pub stats: CampaignStats,
    /// The `metrics.json` artifact, when the engine ran with telemetry
    /// enabled ([`Engine::with_obs`]). Sim-derived only: byte-identical
    /// across execution modes and thread counts.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<CampaignMetrics>,
}

impl CampaignResult {
    /// Number of experiments.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if the campaign ran no experiments.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// A configured attack injection campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    engine: Engine,
    setup: AttackCampaignSetup,
    /// Test hook: make experiment `i` fail with a synthetic error.
    #[cfg(test)]
    fail_experiment: Option<usize>,
}

impl Campaign {
    /// Creates a campaign after validating the setup against the engine's
    /// scenario.
    ///
    /// # Errors
    ///
    /// Fails on inconsistent configuration (unknown targets, empty
    /// vectors, out-of-range times).
    pub fn new(engine: Engine, setup: AttackCampaignSetup) -> Result<Self, ComfaseError> {
        setup.validate(engine.scenario())?;
        Ok(Campaign {
            engine,
            setup,
            #[cfg(test)]
            fail_experiment: None,
        })
    }

    /// Enables telemetry on the underlying engine, so every run contributes
    /// to the campaign's `metrics.json` artifact.
    #[must_use]
    pub fn with_obs(mut self, cfg: ObsConfig) -> Self {
        self.engine = self.engine.with_obs(cfg);
        self
    }

    /// The campaign setup.
    pub fn setup(&self) -> &AttackCampaignSetup {
        &self.setup
    }

    /// The engine (scenario + communication model).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of experiments this campaign will run.
    pub fn nr_experiments(&self) -> usize {
        self.setup.nr_experiments()
    }

    /// Runs the whole campaign on `threads` worker threads with the
    /// default execution mode ([`ExecutionMode::PrefixFork`]).
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation-construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run(&self, threads: usize) -> Result<CampaignResult, ComfaseError> {
        self.run_with_mode_and_progress(threads, ExecutionMode::default(), |_, _| {})
    }

    /// Runs the whole campaign with an explicit execution mode.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation-construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_with_mode(
        &self,
        threads: usize,
        mode: ExecutionMode,
    ) -> Result<CampaignResult, ComfaseError> {
        self.run_with_mode_and_progress(threads, mode, |_, _| {})
    }

    /// Runs the campaign, invoking `progress(done, total)` as experiments
    /// complete.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation-construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_with_progress<P>(
        &self,
        threads: usize,
        progress: P,
    ) -> Result<CampaignResult, ComfaseError>
    where
        P: Fn(usize, usize) + Sync,
    {
        self.run_with_mode_and_progress(threads, ExecutionMode::default(), progress)
    }

    /// Runs the campaign with an explicit execution mode, invoking
    /// `progress(done, total)` as experiments complete.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation-construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_with_mode_and_progress<P>(
        &self,
        threads: usize,
        mode: ExecutionMode,
        progress: P,
    ) -> Result<CampaignResult, ComfaseError>
    where
        P: Fn(usize, usize) + Sync,
    {
        self.run_impl(threads, mode, &progress, &NullObserver)
    }

    /// Runs the campaign with host-side observer hooks (phase boundaries,
    /// experiment completions) — e.g. a [`HostProfiler`] or a progress
    /// reporter.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation-construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_with_observer(
        &self,
        threads: usize,
        mode: ExecutionMode,
        observer: &dyn CampaignObserver,
    ) -> Result<CampaignResult, ComfaseError> {
        self.run_impl(threads, mode, &|_, _| {}, observer)
    }

    fn run_impl(
        &self,
        threads: usize,
        mode: ExecutionMode,
        progress: &(dyn Fn(usize, usize) + Sync),
        observer: &dyn CampaignObserver,
    ) -> Result<CampaignResult, ComfaseError> {
        assert!(threads > 0, "at least one worker thread required");
        let collect_metrics = self.engine.obs().metrics;
        let specs = self.engine.expand_campaign(&self.setup)?;
        let total = specs.len();
        // Step 2: golden run (once).
        observer.phase_started(CampaignPhase::Golden);
        let golden = self.engine.golden_run()?;
        observer.phase_finished(CampaignPhase::Golden);
        let params = ClassificationParams::from_golden(&golden.trace);

        // Prefix phase (fork mode): one attack-free snapshot per distinct
        // start time, built in parallel across the workers.
        observer.phase_started(CampaignPhase::Prefixes);
        let (starts, prefixes) = match mode {
            ExecutionMode::PrefixFork => self.build_prefixes(threads, &specs)?,
            ExecutionMode::FromScratch => (Vec::new(), Vec::new()),
        };
        observer.phase_finished(CampaignPhase::Prefixes);
        let stats = CampaignStats {
            prefix_snapshots: prefixes.len(),
            forked_runs: if prefixes.is_empty() { 0 } else { total },
            scratch_runs: if prefixes.is_empty() { total } else { 0 },
        };

        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let records: Mutex<Vec<ExperimentRecord>> = Mutex::new(Vec::with_capacity(total));
        let metrics_rows: Mutex<Vec<ExperimentMetrics>> =
            Mutex::new(Vec::with_capacity(if collect_metrics { total } else { 0 }));
        let first_error: Mutex<Option<ComfaseError>> = Mutex::new(None);

        observer.phase_started(CampaignPhase::Experiments);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(total.max(1)) {
                scope.spawn(|_| loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    match self.execute_one(&specs[i], i, &starts, &prefixes) {
                        Ok(run) => {
                            let verdict = classify(&golden.trace, &run.trace, &params);
                            if collect_metrics {
                                metrics_rows
                                    .lock()
                                    .push(run.experiment_metrics(i, verdict.class.to_string()));
                            }
                            records.lock().push(ExperimentRecord {
                                index: i,
                                spec: specs[i].clone(),
                                verdict,
                            });
                            let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                            progress(d, total);
                            observer.experiment_done(d, total);
                        }
                        Err(e) => {
                            first_error.lock().get_or_insert(e);
                            // Stop the whole campaign, not just this
                            // worker: park the cursor past the end and
                            // raise the abort flag for in-flight peers.
                            next.store(total, Ordering::Relaxed);
                            abort.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        })
        .expect("campaign worker panicked");
        observer.phase_finished(CampaignPhase::Experiments);

        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }
        let mut records = records.into_inner();
        records.sort_by_key(|r| r.index);
        // CampaignMetrics::build re-sorts the rows by experiment index, so
        // the artifact is independent of worker-thread completion order.
        let metrics = collect_metrics.then(|| {
            CampaignMetrics::build(
                metrics_rows.into_inner(),
                Some(golden.experiment_metrics(0, "Golden".to_string())),
            )
        });
        Ok(CampaignResult {
            records,
            params,
            golden,
            stats,
            metrics,
        })
    }

    /// Builds one attack-free prefix snapshot per distinct start time, in
    /// parallel. Returns the sorted start times and their snapshots,
    /// index-aligned.
    fn build_prefixes(
        &self,
        threads: usize,
        specs: &[AttackSpec],
    ) -> Result<(Vec<SimTime>, Vec<World>), ComfaseError> {
        let mut starts: Vec<SimTime> = specs.iter().map(|s| s.start).collect();
        starts.sort_unstable();
        starts.dedup();

        let slots: Vec<Mutex<Option<World>>> = starts.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let first_error: Mutex<Option<ComfaseError>> = Mutex::new(None);

        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(starts.len().max(1)) {
                scope.spawn(|_| loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= starts.len() {
                        break;
                    }
                    match self.engine.prefix_snapshot(starts[i]) {
                        Ok(world) => *slots[i].lock() = Some(world),
                        Err(e) => {
                            first_error.lock().get_or_insert(e);
                            next.store(starts.len(), Ordering::Relaxed);
                            abort.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        })
        .expect("prefix worker panicked");

        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }
        let prefixes = slots
            .into_iter()
            .map(|s| s.into_inner().expect("every prefix snapshot was built"))
            .collect();
        Ok((starts, prefixes))
    }

    /// Runs one experiment, forking from its prefix snapshot when one is
    /// available.
    fn execute_one(
        &self,
        spec: &AttackSpec,
        index: usize,
        starts: &[SimTime],
        prefixes: &[World],
    ) -> Result<RunLog, ComfaseError> {
        #[cfg(test)]
        if self.fail_experiment == Some(index) {
            return Err(ComfaseError::InvalidConfig(format!(
                "injected failure at experiment {index}"
            )));
        }
        if prefixes.is_empty() {
            return self.engine.run_experiment(spec, index as u64);
        }
        let k = starts
            .binary_search(&spec.start)
            .expect("a prefix snapshot exists for every start time");
        Ok(self
            .engine
            .run_experiment_from(&prefixes[k], spec, index as u64))
    }
}

/// Convenience: classify one ad-hoc run against a golden run using
/// golden-derived parameters.
pub fn classify_against(golden: &RunLog, run: &RunLog) -> Verdict {
    let params = ClassificationParams::from_golden(&golden.trace);
    classify(&golden.trace, &run.trace, &params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackModelKind;
    use crate::classify::Classification;
    use crate::config::{CommModel, TrafficScenario};
    use comfase_des::time::SimTime;

    fn small_campaign() -> Campaign {
        let mut scenario = TrafficScenario::paper_default();
        scenario.total_sim_time = SimTime::from_secs(30);
        let engine = Engine::new(scenario, CommModel::paper_default(), 11).unwrap();
        let setup = AttackCampaignSetup {
            attack_model: AttackModelKind::Delay,
            target_vehicles: vec![2],
            attack_values: vec![0.4, 2.0],
            attack_starts_s: vec![17.0, 18.2],
            attack_durations_s: vec![1.0, 6.0],
        };
        Campaign::new(engine, setup).unwrap()
    }

    #[test]
    fn campaign_runs_all_experiments_in_order() {
        let c = small_campaign();
        assert_eq!(c.nr_experiments(), 8);
        let result = c.run(2).unwrap();
        assert_eq!(result.len(), 8);
        assert!(!result.is_empty());
        for (i, r) in result.records.iter().enumerate() {
            assert_eq!(r.index, i);
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        let c = small_campaign();
        let serial = c.run(1).unwrap();
        let parallel = c.run(4).unwrap();
        assert_eq!(serial.records, parallel.records);
        assert_eq!(serial.params, parallel.params);
    }

    #[test]
    fn fork_and_scratch_modes_agree() {
        let c = small_campaign();
        let forked = c.run_with_mode(2, ExecutionMode::PrefixFork).unwrap();
        let scratch = c.run_with_mode(2, ExecutionMode::FromScratch).unwrap();
        assert_eq!(forked.records, scratch.records);
        assert_eq!(forked.params, scratch.params);
        assert_eq!(forked.golden, scratch.golden);
    }

    #[test]
    fn stats_count_snapshots_and_reuse() {
        let c = small_campaign();
        let forked = c.run(2).unwrap();
        // Two distinct start times, 8 experiments.
        assert_eq!(forked.stats.prefix_snapshots, 2);
        assert_eq!(forked.stats.forked_runs, 8);
        assert_eq!(forked.stats.scratch_runs, 0);
        assert_eq!(forked.stats.snapshot_hit_rate(), 1.0);
        let scratch = c.run_with_mode(2, ExecutionMode::FromScratch).unwrap();
        assert_eq!(scratch.stats.prefix_snapshots, 0);
        assert_eq!(scratch.stats.forked_runs, 0);
        assert_eq!(scratch.stats.scratch_runs, 8);
        assert_eq!(scratch.stats.snapshot_hit_rate(), 0.0);
    }

    #[test]
    fn progress_reaches_total() {
        let c = small_campaign();
        let max_seen = AtomicUsize::new(0);
        c.run_with_progress(2, |done, total| {
            assert!(done <= total);
            max_seen.fetch_max(done, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(max_seen.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn failing_experiment_aborts_the_campaign_promptly() {
        let mut c = small_campaign();
        c.fail_experiment = Some(2);
        let completed = AtomicUsize::new(0);
        // Serial run: experiments 0 and 1 complete, 2 fails, and the abort
        // must keep the worker from draining 3..8.
        let err = c
            .run_with_mode_and_progress(1, ExecutionMode::FromScratch, |done, _| {
                completed.fetch_max(done, Ordering::Relaxed);
            })
            .unwrap_err();
        assert!(err.to_string().contains("injected failure"), "{err}");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            2,
            "campaign must stop at the failure"
        );
    }

    #[test]
    fn failing_experiment_surfaces_error_across_workers() {
        let mut c = small_campaign();
        c.fail_experiment = Some(0);
        let completed = AtomicUsize::new(0);
        let err = c
            .run_with_mode_and_progress(4, ExecutionMode::FromScratch, |done, _| {
                completed.fetch_max(done, Ordering::Relaxed);
            })
            .unwrap_err();
        assert!(matches!(err, ComfaseError::InvalidConfig(_)), "{err:?}");
        assert!(
            completed.load(Ordering::Relaxed) < 8,
            "the abort flag must keep workers from draining the whole campaign"
        );
    }

    #[test]
    fn long_strong_attacks_classified_severe() {
        let c = small_campaign();
        let result = c.run(4).unwrap();
        // The (pd=2.0, dur=6.0) experiments must be severe.
        let severe: Vec<_> = result
            .records
            .iter()
            .filter(|r| {
                r.spec.value == 2.0
                    && r.spec.duration() == comfase_des::time::SimDuration::from_secs(6)
            })
            .collect();
        assert_eq!(severe.len(), 2);
        for r in severe {
            assert_eq!(r.verdict.class, Classification::Severe, "{r:?}");
        }
    }

    #[test]
    fn invalid_setup_rejected_at_construction() {
        let engine = Engine::paper_default(1).unwrap();
        let mut setup = AttackCampaignSetup::paper_dos_campaign();
        setup.target_vehicles = vec![99];
        assert!(Campaign::new(engine, setup).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_panics() {
        let _ = small_campaign().run(0);
    }
}
