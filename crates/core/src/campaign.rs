// comfase-lint: host-region(reason = "campaign *runner*: worker threads, watchdog clocks, crossbeam scopes and result mailboxes are host-side supervision; the simulated Worlds it drives live in the sim crates and every merged metric is ordered by experiment index, never by thread timing")

//! Attack injection campaigns — Step 3 of the execution flow, batched.
//!
//! A [`Campaign`] expands its setup into the nested-loop experiment list
//! (Algo. 1 lines 8–15), runs the golden run once, executes every
//! experiment (optionally across worker threads — experiments are fully
//! independent simulations) and classifies each against the golden run
//! (Step 4). The paper ran its 11 250 delay experiments in about 7 hours
//! on an 8-core machine; the pure-Rust stack finishes them in minutes.
//!
//! # Prefix forking
//!
//! Every experiment sharing an `attackStartTime` simulates an *identical*
//! attack-free prefix `[0, start)` — in the paper's delay campaign that is
//! 450 experiments per start time. The default execution mode
//! ([`ExecutionMode::PrefixFork`]) therefore builds one [`World`] snapshot
//! per distinct start time (in parallel across the workers) and **forks**
//! each experiment from its snapshot instead of re-simulating from t = 0.
//! Forked runs are bit-identical to from-scratch runs
//! ([`ExecutionMode::FromScratch`]); the engine's tests and the
//! `tests` crate assert this end to end.
//!
//! # Snapshot DAG
//!
//! Multi-axis sweeps share more than the attack-free prefix. Experiments
//! with the same `(start, model, value, targets)` — in the paper's grids,
//! one per attack *duration* — also simulate an identical **attack
//! segment** `[start, end)`, because the seed-invariant models
//! ([`crate::attack::AttackModelKind::seed_invariant`]) install identical
//! interceptors. [`ExecutionMode::SnapshotDag`] exploits both levels:
//! a [`DagPlan`] groups the experiment list into *chains* keyed by the
//! longest shared simulated prefix, the attack-free prefixes themselves
//! are built incrementally along one world
//! ([`Engine::prefix_snapshots_chained`]), and each chain advances a
//! single attacked world through its ends in ascending order, forking a
//! leaf mid-attack at every stop ([`World::fork_post_attack`]). Every
//! leaf still clears the attack and simulates its own tail, so results —
//! including faults and the `metrics.json` artifact — remain
//! byte-identical to the other two modes at any worker-thread count.
//! Seed-*dependent* models (probabilistic drop) are never chained; their
//! experiments degrade to plain prefix forks within the same plan.
//!
//! # Fault tolerance
//!
//! A fault-injection campaign deliberately drives the simulated system
//! into abnormal regimes, so individual experiments may fail: diverge
//! numerically, exceed their event budget, or panic outright. The
//! supervised entry point ([`Campaign::run_supervised`]) isolates each
//! experiment behind a panic boundary, classifies every failure into a
//! structured [`ExperimentFailure`], and — under
//! [`FailurePolicy::Quarantine`] — completes the campaign with the
//! surviving records plus a failure summary instead of discarding hours
//! of work on the first bad experiment. Transient host failures can be
//! retried ([`RetryPolicy`]); sim-deterministic failures (budget,
//! divergence, panics) never are, because a retry would deterministically
//! fail the same way.
//!
//! With a journal path configured, every finished experiment is
//! checkpointed to an append-only fsync'd journal
//! ([`crate::journal`]) and a killed campaign can be resumed with
//! [`Campaign::resume`], reproducing the uninterrupted run's metrics
//! byte-for-byte.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use comfase_des::sim::EventBudget;
use comfase_des::time::SimTime;
use comfase_obs::{
    CampaignMetrics, DatasetCapture, DatasetHeader, DatasetSink, ExperimentExport, ExperimentLabel,
    ExperimentMetrics, HostProfiler, ObsConfig, WallDeadline, DATASET_SCHEMA_VERSION,
};

use crate::attack::{AttackModelKind, AttackSpec, FalsifiedField};
use crate::cache::{self, CacheEntry, CacheKeyBase, CacheLookup, ExperimentCache};
use crate::classify::{classify, ClassificationParams, Verdict};
use crate::config::AttackCampaignSetup;
use crate::engine::Engine;
use crate::error::ComfaseError;
use crate::fingerprint;
use crate::journal::{read_journal, JournalEntry, JournalWriter, JOURNAL_SCHEMA_VERSION};
use crate::log::RunLog;
use crate::world::World;

/// How the campaign executes its experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Fork each experiment from a shared attack-free prefix snapshot —
    /// one snapshot per distinct attack start time (the default).
    #[default]
    PrefixFork,
    /// Simulate every experiment from t = 0. Slower; kept as the
    /// reference implementation for equivalence tests and benchmarks.
    FromScratch,
    /// Two-level snapshot reuse: fork from the attack-free prefix *and*,
    /// for seed-invariant attack models, fork again mid-attack from a
    /// chain that simulates the shared attack segment once per distinct
    /// `(start, model, value, targets)` group (see the module docs).
    SnapshotDag,
}

/// One shard of a campaign's experiment index space: the `index`-th of
/// `of` disjoint contiguous slices.
///
/// The partition is deterministic and balanced: shard `i` of `n` covers
/// `[i·total/n, (i+1)·total/n)` (integer division), so the `n` slices are
/// disjoint, cover `0..total` exactly, and differ in size by at most one
/// experiment. Every shard runs under the full per-shard supervisor
/// (journal, quarantine, retry, watchdog, DAG planning *within* the
/// shard); `comfase-dist` merges the shard journals back into one
/// campaign, byte-identical to a single-process run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRange {
    /// Which shard this is (0-based).
    pub index: usize,
    /// Total number of shards (≥ 1).
    pub of: usize,
}

impl ShardRange {
    /// Validates the range (`of ≥ 1`, `index < of`).
    ///
    /// # Errors
    ///
    /// [`ComfaseError::InvalidConfig`] on a degenerate range.
    pub fn validate(&self) -> Result<(), ComfaseError> {
        if self.of == 0 {
            return Err(ComfaseError::InvalidConfig(
                "shard count must be at least 1".into(),
            ));
        }
        if self.index >= self.of {
            return Err(ComfaseError::InvalidConfig(format!(
                "shard index {} out of range for {} shard(s)",
                self.index, self.of
            )));
        }
        Ok(())
    }

    /// Half-open experiment index bounds `[lo, hi)` of this shard within
    /// a campaign of `total` experiments.
    pub fn bounds(&self, total: usize) -> (usize, usize) {
        (
            self.index * total / self.of,
            (self.index + 1) * total / self.of,
        )
    }

    /// Number of experiments this shard covers in a campaign of `total`.
    pub fn len(&self, total: usize) -> usize {
        let (lo, hi) = self.bounds(total);
        hi - lo
    }

    /// `true` when the shard covers no experiments (more shards than
    /// experiments).
    pub fn is_empty(&self, total: usize) -> bool {
        self.len(total) == 0
    }
}

/// One claimable unit of a campaign's experiment index space: the
/// `id`-th fixed-size chunk, covering indices `[lo, hi)`.
///
/// Unlike a [`ShardRange`] — a static 1-of-n assignment fixed before the
/// run — work units are the currency of *dynamic* claim-driven execution
/// ([`WorkSource`]): every worker derives the identical unit table from
/// `(total, unit_size)` via [`plan_units`], claims units one at a time,
/// and a unit whose owner dies is stolen and re-executed by a survivor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkUnit {
    /// Position of this unit in the campaign's unit table (0-based).
    pub id: usize,
    /// First experiment index covered (inclusive).
    pub lo: usize,
    /// Last experiment index covered (exclusive).
    pub hi: usize,
}

impl WorkUnit {
    /// Number of experiment indices this unit covers.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// `true` when the unit covers no indices (only possible for a
    /// zero-experiment campaign).
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }
}

/// Divides `0..total` into contiguous chunks of `unit_size` indices (the
/// last chunk may be shorter). Deterministic: every worker of a campaign
/// computes the identical table, so unit ids are a shared vocabulary
/// across processes.
///
/// # Errors
///
/// [`ComfaseError::InvalidConfig`] for `unit_size == 0`.
pub fn plan_units(total: usize, unit_size: usize) -> Result<Vec<WorkUnit>, ComfaseError> {
    if unit_size == 0 {
        return Err(ComfaseError::InvalidConfig(
            "work unit size must be at least 1".into(),
        ));
    }
    Ok((0..total.div_ceil(unit_size))
        .map(|id| WorkUnit {
            id,
            lo: id * unit_size,
            hi: ((id + 1) * unit_size).min(total),
        })
        .collect())
}

/// Whether a worker still holds the lease on its current work unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseState {
    /// The lease was renewed; keep executing the unit.
    Held,
    /// Another worker took the lease (or it vanished). The deposed worker
    /// abandons the rest of the unit — whoever stole it re-executes the
    /// whole unit, and double-executed experiments are safe because the
    /// journal merger accepts only bit-equal duplicates.
    Lost,
}

/// Where a claim-driven campaign run gets its work.
///
/// When [`RunConfig::work`] is set, the experiment phase stops iterating
/// a static worklist and instead has every worker thread loop: claim a
/// [`WorkUnit`], execute the unit's still-pending experiments through
/// the ordinary supervisor/journal/cache path, renew the claim between
/// experiments, and mark the unit complete. The source decides *which*
/// units this process runs — `comfase-dist` implements it as a
/// shared-filesystem lease ledger with work stealing — while everything
/// about *how* an experiment runs (modes, chaos, retries, journaling,
/// caching) stays identical to static execution.
///
/// Implementations must be safe to call concurrently from many worker
/// threads of one process, and from many processes sharing the
/// underlying ledger.
pub trait WorkSource: Send + Sync + std::fmt::Debug {
    /// Claims the next unit for a worker thread. Returns `Ok(None)` when
    /// the campaign has no work left for this process — every unit is
    /// complete (possibly finished by other processes).
    ///
    /// # Errors
    ///
    /// [`ComfaseError::Io`] when the underlying ledger fails
    /// persistently; the campaign aborts with the error.
    fn claim(&self) -> Result<Option<WorkUnit>, ComfaseError>;

    /// Renews the claim on `unit` between experiments (the monotonic
    /// heartbeat). [`LeaseState::Lost`] — or an error, which the runner
    /// treats the same way — abandons the rest of the unit; the work
    /// already journaled stays journaled, and the unit's new owner
    /// re-executes it idempotently.
    fn renew(&self, unit: &WorkUnit) -> Result<LeaseState, ComfaseError>;

    /// Marks `unit` complete: every experiment it covers is journaled
    /// (completed or, under quarantine, recorded as failed).
    ///
    /// # Errors
    ///
    /// [`ComfaseError::Io`]; the campaign aborts — a unit that cannot be
    /// marked complete would be stolen and pointlessly re-executed
    /// forever.
    fn complete(&self, unit: &WorkUnit) -> Result<(), ComfaseError>;
}

/// The coarse phases of a campaign run, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignPhase {
    /// Step 2: the attack-free reference run.
    Golden,
    /// Prefix snapshots (one per distinct attack start time; skipped in
    /// [`ExecutionMode::FromScratch`]).
    Prefixes,
    /// Step 3 + 4: the experiment sweep.
    Experiments,
}

impl CampaignPhase {
    /// Stable phase name for profiles and progress lines.
    pub fn name(self) -> &'static str {
        match self {
            CampaignPhase::Golden => "golden",
            CampaignPhase::Prefixes => "prefixes",
            CampaignPhase::Experiments => "experiments",
        }
    }
}

/// Host-side hooks into a campaign run — phase boundaries and experiment
/// completions. Implementations may read wall clocks; nothing they observe
/// flows back into simulation state, so determinism of the run itself is
/// unaffected.
pub trait CampaignObserver: Sync {
    /// A phase is about to start.
    fn phase_started(&self, phase: CampaignPhase) {
        let _ = phase;
    }

    /// A phase completed.
    fn phase_finished(&self, phase: CampaignPhase) {
        let _ = phase;
    }

    /// An experiment finished (`done` of `total`). Called from worker
    /// threads, possibly concurrently.
    fn experiment_done(&self, done: usize, total: usize) {
        let _ = (done, total);
    }

    /// An experiment failed terminally (after any retries). Under
    /// [`FailurePolicy::Quarantine`] the campaign continues past this
    /// call; under [`FailurePolicy::Abort`] it is about to stop. Called
    /// from worker threads, possibly concurrently.
    fn experiment_failed(&self, failure: &ExperimentFailure) {
        let _ = failure;
    }
}

/// Observer that does nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl CampaignObserver for NullObserver {}

/// A [`HostProfiler`] times each campaign phase.
impl CampaignObserver for HostProfiler {
    fn phase_started(&self, phase: CampaignPhase) {
        self.begin(phase.name());
    }

    fn phase_finished(&self, phase: CampaignPhase) {
        self.end(phase.name());
    }
}

/// Execution counters of one campaign run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Prefix snapshots built (one per distinct attack start time; 0 in
    /// [`ExecutionMode::FromScratch`]).
    pub prefix_snapshots: usize,
    /// Experiments forked from a prefix snapshot (and nothing deeper).
    pub forked_runs: usize,
    /// Experiments simulated from t = 0.
    pub scratch_runs: usize,
    /// Attack-segment chains executed
    /// ([`ExecutionMode::SnapshotDag`] only; 0 otherwise).
    #[serde(default)]
    pub attack_chains: usize,
    /// Experiments forked *mid-attack* from a chain — level-2 snapshot
    /// reuse on top of the prefix fork.
    #[serde(default)]
    pub chain_forked_runs: usize,
    /// Depth of the executed snapshot DAG: 0 when nothing was forked,
    /// 1 with prefix-level reuse only, 2 when attack-segment chains ran.
    #[serde(default)]
    pub dag_depth: usize,
    /// Experiments (plus the golden run) answered from the result cache
    /// without simulating.
    #[serde(default)]
    pub cache_hits: usize,
    /// Cache lookups that found no entry.
    #[serde(default)]
    pub cache_misses: usize,
    /// Cache lookups that found an unusable entry (torn write, corrupt
    /// JSON, key-echo mismatch, or a row shape the campaign cannot use) —
    /// treated as misses and overwritten.
    #[serde(default)]
    pub cache_stale: usize,
}

impl CampaignStats {
    /// Fraction of experiments that reused *any* snapshot (0.0–1.0) —
    /// prefix forks and mid-attack chain forks both count.
    pub fn snapshot_hit_rate(&self) -> f64 {
        self.level_hit_rates()[0]
    }

    /// Per-level snapshot hit rates, outermost first:
    ///
    /// - `[0]` — fraction of experiments that skipped the attack-free
    ///   prefix (forked at level 1 or deeper);
    /// - `[1]` — fraction that additionally skipped a shared attack
    ///   segment (forked mid-attack at level 2).
    ///
    /// `[0] >= [1]` always; both are 0.0 for an empty campaign.
    pub fn level_hit_rates(&self) -> [f64; 2] {
        let total = self.forked_runs + self.chain_forked_runs + self.scratch_runs;
        if total == 0 {
            return [0.0, 0.0];
        }
        [
            (self.forked_runs + self.chain_forked_runs) as f64 / total as f64,
            self.chain_forked_runs as f64 / total as f64,
        ]
    }

    /// Fraction of cache lookups (golden run included) that hit, 0.0–1.0;
    /// 0.0 when no cache was configured.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses + self.cache_stale;
        if lookups == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / lookups as f64
    }
}

/// One schedulable unit of a [`DagPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagUnit {
    /// A single experiment forked from its attack-free prefix snapshot
    /// (seed-dependent model, or no sibling shares its attack segment).
    Solo {
        /// Experiment index in campaign expansion order.
        index: usize,
    },
    /// Experiments sharing `(start, model, value, targets)`: one world
    /// simulates the common attack segment once and each leaf forks off
    /// mid-attack at its own end time.
    Chain {
        /// Experiment indices, sorted by `(end, index)` so the chain
        /// advances monotonically. Always ≥ 2 entries.
        leaves: Vec<usize>,
    },
}

impl DagUnit {
    /// Experiment indices of this unit, in execution order.
    pub fn indices(&self) -> &[usize] {
        match self {
            DagUnit::Solo { index } => std::slice::from_ref(index),
            DagUnit::Chain { leaves } => leaves,
        }
    }
}

/// The fork-point tree of a [`ExecutionMode::SnapshotDag`] run, flattened
/// to its schedulable units.
///
/// Level 1 of the DAG (the attack-free prefixes, one per distinct start
/// time) is implicit — it is materialised by
/// [`Engine::prefix_snapshots_chained`] — so the plan only enumerates the
/// level-2 grouping. Building the plan is pure bookkeeping over the spec
/// list: deterministic, and invariant under permutation of the *grid
/// axes* because groups live in a [`BTreeMap`] keyed by the attack
/// coordinates rather than by first-seen order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DagPlan {
    /// Schedulable units in canonical (key-sorted) order. Worker threads
    /// claim whole units; results are independent of the claim order.
    pub units: Vec<DagUnit>,
}

/// Grouping key of one experiment: every coordinate of the attack except
/// its end time. Experiments with equal keys and a seed-invariant model
/// simulate identical event streams until their respective ends.
/// `value` is keyed by its bit pattern — grouping needs equality, not
/// numeric order (`-0.0` vs `0.0` would merely split a chain in two).
fn chain_key(spec: &AttackSpec) -> (SimTime, u8, u8, u64, Vec<u32>) {
    let (model, field) = match spec.model {
        AttackModelKind::Delay => (0u8, 0u8),
        AttackModelKind::Dos => (1, 0),
        AttackModelKind::Drop => (2, 0),
        AttackModelKind::Falsify(FalsifiedField::Position) => (3, 0),
        AttackModelKind::Falsify(FalsifiedField::Speed) => (3, 1),
        AttackModelKind::Falsify(FalsifiedField::Acceleration) => (3, 2),
    };
    (
        spec.start,
        model,
        field,
        spec.value.to_bits(),
        spec.targets.to_vec(),
    )
}

impl DagPlan {
    /// Plans the pending experiments of a campaign: groups them by
    /// [`chain_key`], chains every seed-invariant group of ≥ 2 leaves
    /// (sorted by end time), and leaves everything else as solo prefix
    /// forks.
    pub fn build(specs: &[AttackSpec], pending: &[usize]) -> DagPlan {
        let mut groups: BTreeMap<(SimTime, u8, u8, u64, Vec<u32>), Vec<usize>> = BTreeMap::new();
        for &i in pending {
            groups.entry(chain_key(&specs[i])).or_default().push(i);
        }
        let mut units = Vec::new();
        for (_, mut leaves) in groups {
            if leaves.len() >= 2 && specs[leaves[0]].model.seed_invariant() {
                leaves.sort_by_key(|&i| (specs[i].end, i));
                units.push(DagUnit::Chain { leaves });
            } else {
                leaves.sort_unstable();
                units.extend(leaves.into_iter().map(|index| DagUnit::Solo { index }));
            }
        }
        DagPlan { units }
    }

    /// Number of chain units.
    pub fn chains(&self) -> usize {
        self.units
            .iter()
            .filter(|u| matches!(u, DagUnit::Chain { .. }))
            .count()
    }

    /// Experiments executed as chain leaves (level-2 forks).
    pub fn chained_leaves(&self) -> usize {
        self.units
            .iter()
            .map(|u| match u {
                DagUnit::Chain { leaves } => leaves.len(),
                DagUnit::Solo { .. } => 0,
            })
            .sum()
    }

    /// Experiments executed as solo prefix forks (level-1 only).
    pub fn solo_leaves(&self) -> usize {
        self.units
            .iter()
            .filter(|u| matches!(u, DagUnit::Solo { .. }))
            .count()
    }

    /// Total experiments covered by the plan.
    pub fn nr_leaves(&self) -> usize {
        self.solo_leaves() + self.chained_leaves()
    }

    /// Depth of the planned DAG (see [`CampaignStats::dag_depth`]).
    pub fn depth(&self) -> usize {
        if self.units.is_empty() {
            0
        } else if self.chains() > 0 {
            2
        } else {
            1
        }
    }
}

/// Category of a terminal experiment failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// The experiment panicked; the panic was caught at the
    /// per-experiment isolation boundary.
    Panicked,
    /// The deterministic watchdog tripped: the run exceeded its
    /// configured sim-event or sim-time budget
    /// ([`ComfaseError::BudgetExceeded`]).
    BudgetExceeded,
    /// A release-mode numeric guard detected non-finite simulation state
    /// ([`ComfaseError::NumericDiverged`]).
    NumericDiverged,
    /// A host-side failure — configuration, I/O, or any other engine
    /// error that is not a deterministic property of the simulation.
    HostError,
}

impl FailureKind {
    /// Stable name for summaries and reports.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Panicked => "panicked",
            FailureKind::BudgetExceeded => "budget-exceeded",
            FailureKind::NumericDiverged => "numeric-diverged",
            FailureKind::HostError => "host-error",
        }
    }

    fn from_error(e: &ComfaseError) -> FailureKind {
        match e {
            ComfaseError::BudgetExceeded(_) => FailureKind::BudgetExceeded,
            ComfaseError::NumericDiverged(_) => FailureKind::NumericDiverged,
            _ => FailureKind::HostError,
        }
    }
}

/// Structured description of one failed experiment: everything needed to
/// reproduce it in isolation (spec + seed) plus what went wrong.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentFailure {
    /// Experiment index within the expanded campaign (the paper's `expNr`).
    pub index: usize,
    /// Failure category.
    pub kind: FailureKind,
    /// Human-readable payload: the error display or the panic message.
    pub payload: String,
    /// Engine seed of the campaign (the experiment's attack-model RNG
    /// stream is derived from this seed and `index`).
    pub seed: u64,
    /// The attack spec of the failed experiment.
    pub spec: AttackSpec,
    /// Executions attempted, including retries (≥ 1).
    pub attempts: u32,
}

/// What the campaign does when an experiment fails terminally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailurePolicy {
    /// Stop the whole campaign on the first failure and return its error
    /// (the pre-supervision behaviour, and the default).
    #[default]
    Abort,
    /// Record the failure as an [`ExperimentFailure`], keep the remaining
    /// experiments running, and report all failures in
    /// [`CampaignResult::failures`].
    Quarantine {
        /// Abort anyway once *more than* this many experiments have
        /// failed — a circuit breaker against systematically broken
        /// campaigns. Use [`FailurePolicy::quarantine`] for "unlimited".
        max_failures: usize,
    },
}

impl FailurePolicy {
    /// Quarantine with no failure limit.
    pub fn quarantine() -> FailurePolicy {
        FailurePolicy::Quarantine {
            max_failures: usize::MAX,
        }
    }
}

/// Retry policy for **host-transient** failures (I/O errors). Failures
/// that are deterministic properties of the simulation — panics, budget
/// breaches, numeric divergence, invalid configuration — are never
/// retried: re-running them would fail identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum retries per experiment (0 = no retries, the default).
    pub max_retries: u32,
    /// Base backoff slept before retry `n` as `backoff * n` (linear).
    pub backoff: Duration,
}

fn is_host_transient(e: &ComfaseError) -> bool {
    matches!(e, ComfaseError::Io(_))
}

/// Full configuration of a supervised campaign run.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Execution mode (prefix forking by default).
    pub mode: ExecutionMode,
    /// What to do when an experiment fails.
    pub failure_policy: FailurePolicy,
    /// Retry policy for host-transient failures.
    pub retry: RetryPolicy,
    /// Checkpoint journal path. When set, every finished experiment is
    /// appended (fsync'd) to this file; see [`crate::journal`].
    pub journal: Option<PathBuf>,
    /// Resume from the journal at [`RunConfig::journal`]: experiments it
    /// records as completed are skipped (their journaled records and
    /// metrics are merged into the result); failed and missing ones are
    /// (re-)run. Requires `journal` to be set; a missing journal file is
    /// treated as a fresh run.
    pub resume: bool,
    /// Optional host wall-clock deadline in seconds. When it expires,
    /// workers stop claiming new experiments and the campaign returns
    /// [`ComfaseError::BudgetExceeded`]; with a journal configured, the
    /// finished experiments are checkpointed and the campaign can be
    /// resumed. Host-side and therefore *not* deterministic — the
    /// sim-side [`comfase_des::EventBudget`] is the reproducible
    /// watchdog.
    pub wall_deadline_s: Option<f64>,
    /// Restrict the run to one shard of the experiment index space. The
    /// golden run and classification parameters are still computed (every
    /// shard classifies against the identical golden run); only the
    /// experiment sweep is sliced. The journal header records the shard,
    /// and `comfase-dist` merges shard journals back into the full
    /// campaign.
    pub shard: Option<ShardRange>,
    /// Content-addressed result cache. Experiments (and the golden run)
    /// whose key is already stored return their journaled rows without
    /// simulating; fresh results are stored on completion. See
    /// [`crate::cache`].
    pub cache: Option<Arc<dyn ExperimentCache>>,
    /// Dynamic work source for claim-driven execution (see
    /// [`WorkSource`]). Requires [`RunConfig::journal`] — the journals
    /// of the participating workers are the artifact a claim-driven
    /// campaign produces — and is mutually exclusive with
    /// [`RunConfig::shard`], whose static slice it replaces.
    pub work: Option<Arc<dyn WorkSource>>,
    /// Streaming dataset export: every finished experiment's labeled
    /// capture is rendered and handed to this sink *before* its journal
    /// row is appended (so a resumed campaign never has a journaled row
    /// without its shard). Requires the engine's
    /// [`ObsConfig::dataset`](comfase_obs::ObsConfig) capture flag —
    /// without it there would be nothing to export. Cache hits replay
    /// their stored capture through the sink, so a fully warm run still
    /// produces the complete corpus.
    pub dataset: Option<Arc<dyn DatasetSink>>,
}

/// Deterministic failure-injection hooks for robustness testing.
///
/// Chaos hooks fire by experiment index before the experiment simulates
/// anything, so they are exact and thread-count independent. They exist
/// to test the campaign supervisor itself (panic isolation, quarantine,
/// retry, journaling) — production campaigns leave this at `default()`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Experiments that panic when executed.
    pub panic_on: Vec<usize>,
    /// Experiments that fail with a synthetic deterministic error.
    pub fail_on: Vec<usize>,
    /// `(index, n)`: experiment `index` fails with a transient host error
    /// on its first `n` attempts, then succeeds. Attempt counts are
    /// shared across clones of the campaign.
    pub transient: Vec<(usize, u32)>,
    /// Host-I/O fault injection for the distribution layer (claim
    /// ledger, result cache). Unlike the per-experiment hooks above,
    /// these fire on *infrastructure* operations, so claim-protocol
    /// recovery paths are testable the same way experiment panics are.
    pub io: IoChaosConfig,
}

/// Fail-once (or fail-N-times) injection knobs for the host-I/O
/// operations of the distribution layer. Each counter is a budget of
/// injected failures: the first `n` calls of that operation fail with a
/// synthetic [`ComfaseError::Io`], then the operation behaves normally.
///
/// Cache-store injection is consumed inside the campaign runner (the
/// injected counter is shared across clones of the [`Campaign`], like
/// [`ChaosConfig::transient`] attempts). Lease-acquire and heartbeat
/// injection are consumed by the claim ledger — `comfase-dist` wires
/// them into its `ClaimSource`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoChaosConfig {
    /// Fail the first `n` lease acquisitions (including steals).
    pub fail_lease_acquire: u32,
    /// Fail the first `n` heartbeat renewals.
    pub fail_heartbeat: u32,
    /// Fail the first `n` cache stores. A cache-store failure aborts the
    /// campaign exactly like a journal I/O error — the recovery path is
    /// a resume, or a surviving claim worker stealing the unit.
    pub fail_cache_store: u32,
}

impl ChaosConfig {
    fn is_active(&self) -> bool {
        !(self.panic_on.is_empty() && self.fail_on.is_empty() && self.transient.is_empty())
    }
}

/// Result of one attack injection experiment (one `AttackCampaignLog`
/// entry, classified).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// The paper's `expNr`.
    pub index: usize,
    /// The injected attack.
    pub spec: AttackSpec,
    /// The Step-4 classification.
    pub verdict: Verdict,
}

/// Result of a full campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// One record per experiment, in `expNr` order. Under
    /// [`FailurePolicy::Quarantine`], failed experiments have no record
    /// here — they appear in [`CampaignResult::failures`] instead.
    pub records: Vec<ExperimentRecord>,
    /// Classification parameters derived from the golden run.
    pub params: ClassificationParams,
    /// The golden run log.
    pub golden: RunLog,
    /// Execution counters (snapshot reuse).
    #[serde(default)]
    pub stats: CampaignStats,
    /// The `metrics.json` artifact, when the engine ran with telemetry
    /// enabled ([`Engine::with_obs`]). Sim-derived only: byte-identical
    /// across execution modes and thread counts.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<CampaignMetrics>,
    /// Quarantined experiment failures, in `expNr` order. Empty when
    /// every experiment succeeded (or under [`FailurePolicy::Abort`],
    /// which returns the first error instead of a result).
    #[serde(default)]
    pub failures: Vec<ExperimentFailure>,
}

impl CampaignResult {
    /// Number of successfully completed experiments.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if the campaign ran no experiments.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Failure counts by [`FailureKind`] name — the campaign's failure
    /// summary (empty map when nothing failed).
    pub fn failure_summary(&self) -> BTreeMap<&'static str, usize> {
        let mut summary = BTreeMap::new();
        for f in &self.failures {
            *summary.entry(f.kind.name()).or_insert(0) += 1;
        }
        summary
    }
}

/// A configured attack injection campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    engine: Engine,
    setup: AttackCampaignSetup,
    chaos: ChaosConfig,
    /// Attempt counters for [`ChaosConfig::transient`], shared across
    /// clones so retries observe previous attempts.
    chaos_attempts: Arc<Mutex<BTreeMap<usize, u32>>>,
    /// Injected-failure counter for [`IoChaosConfig::fail_cache_store`],
    /// shared across clones so a re-run observes the consumed budget.
    chaos_store_used: Arc<AtomicU32>,
}

impl Campaign {
    /// Creates a campaign after validating the setup against the engine's
    /// scenario.
    ///
    /// # Errors
    ///
    /// Fails on inconsistent configuration (unknown targets, empty
    /// vectors, out-of-range times).
    pub fn new(engine: Engine, setup: AttackCampaignSetup) -> Result<Self, ComfaseError> {
        setup.validate(engine.scenario())?;
        Ok(Campaign {
            engine,
            setup,
            chaos: ChaosConfig::default(),
            chaos_attempts: Arc::new(Mutex::new(BTreeMap::new())),
            chaos_store_used: Arc::new(AtomicU32::new(0)),
        })
    }

    /// Enables telemetry on the underlying engine, so every run contributes
    /// to the campaign's `metrics.json` artifact.
    #[must_use]
    pub fn with_obs(mut self, cfg: ObsConfig) -> Self {
        self.engine = self.engine.with_obs(cfg);
        self
    }

    /// Selects the hot-path execution substrate (spatial indexes vs
    /// brute-force scans) for every world the campaign builds. Results are
    /// bit-identical either way; see [`crate::world::IndexingMode`].
    #[must_use]
    pub fn with_indexing(mut self, mode: crate::world::IndexingMode) -> Self {
        self.engine = self.engine.with_indexing(mode);
        self
    }

    /// Installs deterministic failure-injection hooks (robustness
    /// testing; see [`ChaosConfig`]).
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }

    /// The installed failure-injection hooks (default when none were).
    /// Exposed so the distribution layer can wire the
    /// [`IoChaosConfig`] knobs into its claim ledger.
    pub fn chaos(&self) -> &ChaosConfig {
        &self.chaos
    }

    /// Installs a per-experiment event budget on the underlying engine —
    /// the deterministic, sim-side watchdog. A run that exceeds it fails
    /// with [`FailureKind::BudgetExceeded`], identically on every thread
    /// count and execution mode.
    #[must_use]
    pub fn with_budget(mut self, budget: EventBudget) -> Self {
        self.engine = self.engine.with_budget(budget);
        self
    }

    /// The campaign setup.
    pub fn setup(&self) -> &AttackCampaignSetup {
        &self.setup
    }

    /// The engine (scenario + communication model).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of experiments this campaign will run.
    pub fn nr_experiments(&self) -> usize {
        self.setup.nr_experiments()
    }

    /// The canonical fingerprint of this campaign's full configuration —
    /// seed, traffic scenario, communication model, attack setup, event
    /// budget and telemetry config (see [`crate::fingerprint`]). Folded
    /// into journal headers and shard ledgers so artifacts from a
    /// different configuration refuse to resume or merge.
    ///
    /// # Errors
    ///
    /// Fails only if a configuration struct cannot be serialized.
    pub fn fingerprint(&self) -> Result<u64, ComfaseError> {
        fingerprint::campaign_fingerprint(
            self.engine.seed(),
            self.engine.scenario(),
            self.engine.comm(),
            &self.setup,
            self.engine.budget(),
            self.engine.obs(),
        )
    }

    /// Runs the whole campaign on `threads` worker threads with the
    /// default execution mode ([`ExecutionMode::PrefixFork`]) and the
    /// default failure policy ([`FailurePolicy::Abort`]).
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation-construction errors;
    /// `threads == 0` is [`ComfaseError::InvalidConfig`].
    pub fn run(&self, threads: usize) -> Result<CampaignResult, ComfaseError> {
        self.run_with_mode_and_progress(threads, ExecutionMode::default(), |_, _| {})
    }

    /// Runs the whole campaign with an explicit execution mode.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation-construction errors;
    /// `threads == 0` is [`ComfaseError::InvalidConfig`].
    pub fn run_with_mode(
        &self,
        threads: usize,
        mode: ExecutionMode,
    ) -> Result<CampaignResult, ComfaseError> {
        self.run_with_mode_and_progress(threads, mode, |_, _| {})
    }

    /// Runs the campaign, invoking `progress(done, total)` as experiments
    /// complete.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation-construction errors;
    /// `threads == 0` is [`ComfaseError::InvalidConfig`].
    pub fn run_with_progress<P>(
        &self,
        threads: usize,
        progress: P,
    ) -> Result<CampaignResult, ComfaseError>
    where
        P: Fn(usize, usize) + Sync,
    {
        self.run_with_mode_and_progress(threads, ExecutionMode::default(), progress)
    }

    /// Runs the campaign with an explicit execution mode, invoking
    /// `progress(done, total)` as experiments complete.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation-construction errors;
    /// `threads == 0` is [`ComfaseError::InvalidConfig`].
    pub fn run_with_mode_and_progress<P>(
        &self,
        threads: usize,
        mode: ExecutionMode,
        progress: P,
    ) -> Result<CampaignResult, ComfaseError>
    where
        P: Fn(usize, usize) + Sync,
    {
        let config = RunConfig {
            mode,
            ..RunConfig::default()
        };
        self.run_impl(threads, &config, &progress, &NullObserver)
    }

    /// Runs the campaign with host-side observer hooks (phase boundaries,
    /// experiment completions) — e.g. a [`HostProfiler`] or a progress
    /// reporter.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation-construction errors;
    /// `threads == 0` is [`ComfaseError::InvalidConfig`].
    pub fn run_with_observer(
        &self,
        threads: usize,
        mode: ExecutionMode,
        observer: &dyn CampaignObserver,
    ) -> Result<CampaignResult, ComfaseError> {
        let config = RunConfig {
            mode,
            ..RunConfig::default()
        };
        self.run_impl(threads, &config, &|_, _| {}, observer)
    }

    /// Runs the campaign under full supervision: per-experiment panic
    /// isolation, failure classification, the configured failure policy,
    /// retries for host-transient failures, and — when
    /// [`RunConfig::journal`] is set — checkpointing to an append-only
    /// journal.
    ///
    /// # Errors
    ///
    /// Under [`FailurePolicy::Abort`], the first experiment failure;
    /// under [`FailurePolicy::Quarantine`], only campaign-level errors
    /// (configuration, golden-run or prefix failures, journal I/O, the
    /// quarantine circuit breaker, an expired wall deadline).
    /// `threads == 0` is [`ComfaseError::InvalidConfig`].
    pub fn run_supervised(
        &self,
        threads: usize,
        config: &RunConfig,
        observer: &dyn CampaignObserver,
    ) -> Result<CampaignResult, ComfaseError> {
        self.run_impl(threads, config, &|_, _| {}, observer)
    }

    /// Resumes a campaign from `journal`, skipping the experiments it
    /// records as completed and re-running the failed and missing ones.
    /// The merged result — and in particular its
    /// [`CampaignResult::metrics`] artifact — is byte-identical to the
    /// uninterrupted run's.
    ///
    /// Convenience for [`Campaign::run_supervised`] with
    /// [`RunConfig::resume`] set; use that directly to also pick a
    /// failure policy or execution mode.
    ///
    /// # Errors
    ///
    /// Everything [`Campaign::run_supervised`] reports, plus a journal
    /// that is unreadable, corrupt before its final line, or written by
    /// a different campaign (seed, size or setup mismatch).
    pub fn resume<P: AsRef<Path>>(
        &self,
        journal: P,
        threads: usize,
    ) -> Result<CampaignResult, ComfaseError> {
        let config = RunConfig {
            journal: Some(journal.as_ref().to_path_buf()),
            resume: true,
            ..RunConfig::default()
        };
        self.run_supervised(threads, &config, &NullObserver)
    }

    fn run_impl(
        &self,
        threads: usize,
        config: &RunConfig,
        progress: &(dyn Fn(usize, usize) + Sync),
        observer: &dyn CampaignObserver,
    ) -> Result<CampaignResult, ComfaseError> {
        if threads == 0 {
            return Err(ComfaseError::InvalidConfig(
                "at least one worker thread required".into(),
            ));
        }
        if let Some(shard) = config.shard {
            shard.validate()?;
        }
        // A claim-driven run normally journals (the worker journals are
        // the artifact the merge step consumes — the `repro` CLI enforces
        // the pairing); running without one is permitted at the library
        // level for ephemeral solo workers, whose in-process result is
        // only complete if they drained the whole ledger themselves.
        if config.work.is_some() && config.shard.is_some() {
            return Err(ComfaseError::InvalidConfig(
                "claim-driven execution (work source) and a static shard are \
                 mutually exclusive: the claim ledger covers the whole index space"
                    .into(),
            ));
        }
        if config.dataset.is_some() && !self.engine.obs().dataset {
            return Err(ComfaseError::InvalidConfig(
                "dataset export requires dataset capture: build the engine \
                 with ObsConfig::with_dataset() so runs record the rows the \
                 sink is supposed to receive"
                    .into(),
            ));
        }
        let collect_metrics = self.engine.obs().metrics;
        let specs = self.engine.expand_campaign(&self.setup)?;
        let total = specs.len();

        // Canonical fingerprint — needed only when a journal records it, a
        // cache keys off the configuration, or a dataset header stamps it;
        // plain runs skip the serialization entirely.
        let fingerprint =
            if config.journal.is_some() || config.cache.is_some() || config.dataset.is_some() {
                self.fingerprint()?
            } else {
                0
            };
        // Campaign identity stamped into every exported shard's header.
        let dataset_header = DatasetHeader {
            dataset_schema_version: DATASET_SCHEMA_VERSION,
            fingerprint,
            seed: self.engine.seed(),
            total,
        };

        // Resume: fold the journal into pre-completed state.
        let mut resumed_records: Vec<ExperimentRecord> = Vec::new();
        let mut resumed_rows: Vec<ExperimentMetrics> = Vec::new();
        let mut completed_idx: BTreeSet<usize> = BTreeSet::new();
        if config.resume {
            let path = config.journal.as_deref().ok_or_else(|| {
                ComfaseError::InvalidConfig("resume requires a journal path".into())
            })?;
            if path.exists() {
                let state = read_journal(path)?;
                state.check_identity(
                    self.engine.seed(),
                    total,
                    &self.setup,
                    fingerprint,
                    config.shard,
                )?;
                for (index, (record, metrics)) in state.completed {
                    completed_idx.insert(index);
                    resumed_records.push(record);
                    if let Some(row) = metrics {
                        resumed_rows.push(row);
                    }
                }
            }
        }

        // The worklist: this process's slice of the experiment index
        // space — the configured shard's range, or all of it.
        let worklist: Vec<usize> = match config.shard {
            Some(shard) => {
                let (lo, hi) = shard.bounds(total);
                (lo..hi).collect()
            }
            None => (0..total).collect(),
        };

        // Content-addressed cache: the key components constant across this
        // campaign's experiments. Computed up front so key-derivation
        // failures surface before any simulation.
        let key_base = match config.cache.as_deref() {
            Some(_) => Some(CacheKeyBase {
                seed: self.engine.seed(),
                config_hash: cache::config_hash(
                    self.engine.scenario(),
                    self.engine.comm(),
                    self.engine.budget(),
                    self.engine.obs(),
                    config.shard,
                )?,
            }),
            None => None,
        };
        let mut cache_hits: usize = 0;
        let mut cache_misses: usize = 0;
        let mut cache_stale: usize = 0;

        // Step 2: golden run (once — also on resume: classification
        // parameters and the golden metrics row are recomputed, which is
        // deterministic and keeps the journal limited to per-experiment
        // state). With a cache, the whole golden log is content-addressed:
        // a hit skips the simulation and recomputes both deterministically
        // from the stored log.
        observer.phase_started(CampaignPhase::Golden);
        let golden = match (config.cache.as_deref(), key_base) {
            (Some(store), Some(base)) => {
                let key = base.golden_key();
                let cached = match store.load(&key) {
                    CacheLookup::Hit(entry) => match *entry {
                        CacheEntry::Golden { log } => {
                            cache_hits += 1;
                            Some(log)
                        }
                        // An experiment payload under the golden key can
                        // only be corruption; treat it as stale.
                        CacheEntry::Experiment { .. } => {
                            cache_stale += 1;
                            None
                        }
                    },
                    CacheLookup::Miss => {
                        cache_misses += 1;
                        None
                    }
                    CacheLookup::Stale => {
                        cache_stale += 1;
                        None
                    }
                };
                match cached {
                    Some(log) => log,
                    None => {
                        let log = self.engine.golden_run()?;
                        store.store(&key, &CacheEntry::Golden { log: log.clone() })?;
                        log
                    }
                }
            }
            _ => self.engine.golden_run()?,
        };
        observer.phase_finished(CampaignPhase::Golden);
        let params = ClassificationParams::from_golden(&golden.trace);
        let golden_row =
            collect_metrics.then(|| golden.experiment_metrics(0, "Golden".to_string()));

        // Journal writer: create with a header (followed by the golden
        // metrics row, which the shard merger needs to rebuild the
        // campaign artifact) on a fresh run, append on resume. Opened
        // before the experiment phase so an unwritable journal fails fast
        // instead of after hours of simulation.
        let journal = match config.journal.as_deref() {
            Some(path) if config.resume && path.exists() => Some(JournalWriter::append_to(path)?),
            Some(path) => {
                let writer = JournalWriter::create(
                    path,
                    &JournalEntry::Header {
                        schema_version: JOURNAL_SCHEMA_VERSION,
                        seed: self.engine.seed(),
                        total,
                        fingerprint,
                        shard: config.shard,
                        setup: self.setup.clone(),
                    },
                )?;
                writer.append(&JournalEntry::Golden {
                    metrics: golden_row.clone(),
                })?;
                Some(writer)
            }
            None => None,
        };

        // Cache phase: resolve still-pending experiments against the
        // store before simulating anything. Hits are journaled (in
        // ascending index order — deterministic) and folded into the
        // completed state exactly like resumed entries; the stored
        // index-free record and row are rewritten to this campaign's
        // index.
        let mut pending: Vec<usize> = Vec::with_capacity(worklist.len());
        for &i in &worklist {
            if completed_idx.contains(&i) {
                continue;
            }
            let hit = match (config.cache.as_deref(), key_base) {
                (Some(store), Some(base)) => {
                    let spec_json = fingerprint::canonical_json(&specs[i])?;
                    let key = base.experiment_key(&spec_json, i, specs[i].model.seed_invariant());
                    match store.load(&key) {
                        CacheLookup::Hit(entry) => match *entry {
                            CacheEntry::Experiment {
                                mut record,
                                metrics,
                                dataset,
                            } if record.spec == specs[i]
                                && !(collect_metrics && metrics.is_none())
                                && !(config.dataset.is_some() && dataset.is_none()) =>
                            {
                                record.index = i;
                                let row = metrics.map(|mut row| {
                                    row.index = i;
                                    row
                                });
                                Some((record, row, dataset))
                            }
                            // Spec-echo mismatch (hash collision or
                            // tampering), or a hit missing the telemetry
                            // or dataset capture this campaign needs:
                            // unusable.
                            _ => {
                                cache_stale += 1;
                                None
                            }
                        },
                        CacheLookup::Miss => {
                            cache_misses += 1;
                            None
                        }
                        CacheLookup::Stale => {
                            cache_stale += 1;
                            None
                        }
                    }
                }
                _ => None,
            };
            match hit {
                Some((record, row, dataset)) => {
                    cache_hits += 1;
                    // Replay the cached capture through the sink before the
                    // journal append (same ordering as live execution), so a
                    // fully warm run still produces the complete corpus.
                    if let (Some(sink), Some(capture)) = (config.dataset.as_deref(), dataset) {
                        sink.export(&ExperimentExport {
                            header: dataset_header,
                            label: experiment_label(&record),
                            capture,
                        })
                        .map_err(|e| ComfaseError::Io(format!("dataset export failed: {e}")))?;
                    }
                    if let Some(journal) = journal.as_ref() {
                        journal.append(&JournalEntry::Completed {
                            index: i,
                            record: record.clone(),
                            metrics: row.clone(),
                        })?;
                    }
                    completed_idx.insert(i);
                    resumed_records.push(record);
                    if let Some(row) = row {
                        resumed_rows.push(row);
                    }
                }
                None => pending.push(i),
            }
        }
        // Everything this process must finish: prior completions (resumed
        // or cache-hit) plus the remaining pending work. Equal to `total`
        // for an unsharded run.
        let target = completed_idx.len() + pending.len();

        // Prefix phase: one attack-free snapshot per distinct start time
        // still pending — built in parallel from scratch (`PrefixFork`) or
        // incrementally along a single world (`SnapshotDag`).
        observer.phase_started(CampaignPhase::Prefixes);
        let pending_specs: Vec<&AttackSpec> = pending.iter().map(|&i| &specs[i]).collect();
        let (starts, prefixes) = match config.mode {
            ExecutionMode::PrefixFork => self.build_prefixes(threads, &pending_specs)?,
            ExecutionMode::SnapshotDag => {
                let mut starts: Vec<SimTime> = pending_specs.iter().map(|s| s.start).collect();
                starts.sort_unstable();
                starts.dedup();
                let prefixes = self.engine.prefix_snapshots_chained(&starts)?;
                (starts, prefixes)
            }
            ExecutionMode::FromScratch => (Vec::new(), Vec::new()),
        };
        observer.phase_finished(CampaignPhase::Prefixes);
        let plan = match config.mode {
            ExecutionMode::SnapshotDag => Some(DagPlan::build(&specs, &pending)),
            ExecutionMode::PrefixFork | ExecutionMode::FromScratch => None,
        };
        let stats = match &plan {
            Some(plan) => CampaignStats {
                prefix_snapshots: prefixes.len(),
                forked_runs: plan.solo_leaves(),
                scratch_runs: 0,
                attack_chains: plan.chains(),
                chain_forked_runs: plan.chained_leaves(),
                dag_depth: plan.depth(),
                cache_hits,
                cache_misses,
                cache_stale,
            },
            None => CampaignStats {
                prefix_snapshots: prefixes.len(),
                forked_runs: if prefixes.is_empty() {
                    0
                } else {
                    pending.len()
                },
                scratch_runs: if prefixes.is_empty() {
                    pending.len()
                } else {
                    0
                },
                cache_hits,
                cache_misses,
                cache_stale,
                ..CampaignStats::default()
            },
        };

        let deadline = config.wall_deadline_s.map(WallDeadline::after_secs);
        // Workers claim whole units: single experiments in the flat modes,
        // solo leaves or entire chains under `SnapshotDag`.
        let nr_units = plan.as_ref().map_or(pending.len(), |p| p.units.len());
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(completed_idx.len());
        let nr_failed = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let deadline_hit = AtomicBool::new(false);
        let records: Mutex<Vec<ExperimentRecord>> = Mutex::new(resumed_records);
        let metrics_rows: Mutex<Vec<ExperimentMetrics>> = Mutex::new(resumed_rows);
        let failures: Mutex<Vec<ExperimentFailure>> = Mutex::new(Vec::new());
        let first_error: Mutex<Option<ComfaseError>> = Mutex::new(None);
        // Claim-driven execution can hand this process the same index
        // twice — a unit abandoned on a lost lease and later stolen
        // *back* re-executes from the start. The journal and merger
        // tolerate bit-equal duplicates, but the in-process accumulators
        // must not, so the sink records each index at most once.
        let pushed_once: Mutex<BTreeSet<usize>> = Mutex::new(BTreeSet::new());
        let sink = ResultSink {
            journal: journal.as_ref(),
            cache: config.cache.as_deref(),
            key_base,
            dataset: config.dataset.as_deref(),
            dataset_header,
            records: &records,
            metrics_rows: &metrics_rows,
            failures: &failures,
            first_error: &first_error,
            next: &next,
            done: &done,
            nr_failed: &nr_failed,
            abort: &abort,
            deadline: deadline.as_ref(),
            deadline_hit: &deadline_hit,
            park_at: nr_units,
            total: target,
            failure_policy: config.failure_policy,
            chaos_store: (self.chaos.io.fail_cache_store > 0 && config.cache.is_some()).then(
                || {
                    (
                        self.chaos.io.fail_cache_store,
                        self.chaos_store_used.as_ref(),
                    )
                },
            ),
            dedup: match config.work {
                Some(_) => Some(&pushed_once),
                None => None,
            },
            progress,
            observer,
        };

        // Claim-driven execution: the indices still pending for *this*
        // process, for filtering the units the work source hands out.
        let pending_set: BTreeSet<usize> = match config.work {
            Some(_) => pending.iter().copied().collect(),
            None => BTreeSet::new(),
        };

        observer.phase_started(CampaignPhase::Experiments);
        crossbeam::thread::scope(|scope| {
            let workers = match config.work {
                Some(_) => threads,
                None => threads.min(nr_units.max(1)),
            };
            for _ in 0..workers {
                scope.spawn(|_| match config.work.as_deref() {
                    None => loop {
                        if sink.should_stop() {
                            break;
                        }
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        if slot >= nr_units {
                            break;
                        }
                        let go_on = match &plan {
                            None => {
                                let i = pending[slot];
                                sink.push(self.run_one_supervised(
                                    &specs, i, &starts, &prefixes, config, &golden, &params,
                                ))
                            }
                            Some(plan) => match &plan.units[slot] {
                                DagUnit::Solo { index } => sink.push(self.run_one_supervised(
                                    &specs, *index, &starts, &prefixes, config, &golden, &params,
                                )),
                                DagUnit::Chain { leaves } => {
                                    self.run_chain(
                                        &specs, leaves, &starts, &prefixes, config, &golden,
                                        &params, &sink,
                                    );
                                    !sink.should_stop()
                                }
                            },
                        };
                        if !go_on {
                            break;
                        }
                    },
                    Some(source) => loop {
                        if sink.should_stop() {
                            break;
                        }
                        let unit = match source.claim() {
                            Ok(Some(unit)) => unit,
                            Ok(None) => break,
                            Err(e) => {
                                sink.first_error.lock().get_or_insert(e);
                                sink.stop();
                                break;
                            }
                        };
                        let indices: Vec<usize> = (unit.lo..unit.hi)
                            .filter(|i| pending_set.contains(i))
                            .collect();
                        match self.run_claimed_unit(
                            &unit, &indices, &specs, &starts, &prefixes, config, &golden, &params,
                            &sink, source,
                        ) {
                            UnitRun::Finished => {
                                if let Err(e) = source.complete(&unit) {
                                    sink.first_error.lock().get_or_insert(e);
                                    sink.stop();
                                    break;
                                }
                            }
                            // Lease lost mid-unit: whoever stole it
                            // re-executes the whole unit; move on.
                            UnitRun::Lost => {}
                            UnitRun::Stopped => break,
                        }
                    },
                });
            }
        })
        .map_err(|panic| ComfaseError::WorkerFailed(panic_message(panic.as_ref())))?;
        observer.phase_finished(CampaignPhase::Experiments);

        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }
        if deadline_hit.load(Ordering::Relaxed) {
            let d = done.load(Ordering::Relaxed);
            if d < target {
                return Err(ComfaseError::BudgetExceeded(format!(
                    "wall-clock deadline of {:.1}s reached after {d}/{target} experiments{}",
                    config.wall_deadline_s.unwrap_or(0.0),
                    if config.journal.is_some() {
                        "; completed work is journaled — resume to continue"
                    } else {
                        ""
                    }
                )));
            }
        }
        let mut records = records.into_inner();
        records.sort_by_key(|r| r.index);
        let mut failures = failures.into_inner();
        failures.sort_by_key(|f| f.index);
        // CampaignMetrics::build re-sorts the rows by experiment index, so
        // the artifact is independent of worker-thread completion order —
        // and, on resume, of which rows came from the journal.
        let metrics =
            collect_metrics.then(|| CampaignMetrics::build(metrics_rows.into_inner(), golden_row));
        Ok(CampaignResult {
            records,
            params,
            golden,
            stats,
            metrics,
            failures,
        })
    }

    /// Executes one experiment behind the panic-isolation boundary, with
    /// retries for host-transient failures. Returns either the classified
    /// record (plus its metrics row when collected) or the structured
    /// failure alongside the original error (absent for panics).
    #[allow(clippy::too_many_arguments)]
    fn run_one_supervised(
        &self,
        specs: &[AttackSpec],
        index: usize,
        starts: &[SimTime],
        prefixes: &[World],
        config: &RunConfig,
        golden: &RunLog,
        params: &ClassificationParams,
    ) -> ExperimentOutcome {
        self.supervise(&specs[index], index, config, golden, params, || {
            self.execute_one(&specs[index], index, starts, prefixes)
        })
    }

    /// Executes the still-pending experiments of one claimed [`WorkUnit`]
    /// through the standard supervisor/journal/cache path, renewing the
    /// claim between experiments. Under [`ExecutionMode::SnapshotDag`]
    /// the DAG plan is built *within* the unit, so chains never span a
    /// claim boundary and a stolen unit re-plans identically.
    ///
    /// A failed or lost renewal abandons the rest of the unit
    /// ([`UnitRun::Lost`]): everything already pushed stays journaled,
    /// and the unit's next owner re-executes it idempotently — the
    /// merger's equal-or-reject duplicate rule makes double-execution
    /// safe.
    #[allow(clippy::too_many_arguments)]
    fn run_claimed_unit(
        &self,
        unit: &WorkUnit,
        indices: &[usize],
        specs: &[AttackSpec],
        starts: &[SimTime],
        prefixes: &[World],
        config: &RunConfig,
        golden: &RunLog,
        params: &ClassificationParams,
        sink: &ResultSink<'_>,
        source: &dyn WorkSource,
    ) -> UnitRun {
        let renew = |after_last: bool| -> Option<UnitRun> {
            if after_last {
                // The unit is finished; completion is the next ledger
                // write, a renewal in between buys nothing.
                return None;
            }
            match source.renew(unit) {
                Ok(LeaseState::Held) => None,
                Ok(LeaseState::Lost) | Err(_) => Some(UnitRun::Lost),
            }
        };
        match config.mode {
            ExecutionMode::PrefixFork | ExecutionMode::FromScratch => {
                for (n, &i) in indices.iter().enumerate() {
                    if sink.should_stop() {
                        return UnitRun::Stopped;
                    }
                    if !sink.push(
                        self.run_one_supervised(specs, i, starts, prefixes, config, golden, params),
                    ) {
                        return UnitRun::Stopped;
                    }
                    if let Some(out) = renew(n + 1 == indices.len()) {
                        return out;
                    }
                }
            }
            ExecutionMode::SnapshotDag => {
                let plan = DagPlan::build(specs, indices);
                for (n, dag_unit) in plan.units.iter().enumerate() {
                    if sink.should_stop() {
                        return UnitRun::Stopped;
                    }
                    match dag_unit {
                        DagUnit::Solo { index } => {
                            if !sink.push(self.run_one_supervised(
                                specs, *index, starts, prefixes, config, golden, params,
                            )) {
                                return UnitRun::Stopped;
                            }
                        }
                        DagUnit::Chain { leaves } => {
                            self.run_chain(
                                specs, leaves, starts, prefixes, config, golden, params, sink,
                            );
                            if sink.should_stop() {
                                return UnitRun::Stopped;
                            }
                        }
                    }
                    if let Some(out) = renew(n + 1 == plan.units.len()) {
                        return out;
                    }
                }
            }
        }
        UnitRun::Finished
    }

    /// The per-experiment supervision loop shared by every execution mode:
    /// runs `run` behind a panic boundary, classifies the result, retries
    /// host-transient failures, and wraps anything terminal into an
    /// [`ExperimentFailure`].
    // The Err side is deliberately rich (full spec + failure detail for the
    // journal and the quarantine report); it is built at most once per
    // failed experiment, so its size is irrelevant to the hot path.
    #[allow(clippy::result_large_err)]
    fn supervise<F>(
        &self,
        spec: &AttackSpec,
        index: usize,
        config: &RunConfig,
        golden: &RunLog,
        params: &ClassificationParams,
        mut run: F,
    ) -> ExperimentOutcome
    where
        F: FnMut() -> Result<RunLog, ComfaseError>,
    {
        let collect_metrics = self.engine.obs().metrics;
        let mut attempts: u32 = 0;
        loop {
            attempts += 1;
            // The campaign shares no mutable state with the experiment (the
            // engine builds or clones a fresh `World` per run; a chain world
            // is only mutated *between* supervised calls), so observing the
            // closure across the unwind boundary is sound: a caught panic
            // leaves no half-mutated campaign state behind.
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                let mut log = run()?;
                let verdict = classify(&golden.trace, &log.trace, params);
                let row = collect_metrics
                    .then(|| log.experiment_metrics(index, verdict.class.to_string()));
                // Move the capture out of the (about-to-be-dropped) log;
                // `None` unless the run recorded with dataset capture on.
                let dataset = log.obs.take_dataset();
                Ok::<_, ComfaseError>((
                    ExperimentRecord {
                        index,
                        spec: spec.clone(),
                        verdict,
                    },
                    row,
                    dataset,
                ))
            }));
            let (kind, payload, original) = match attempt {
                Ok(Ok(success)) => return Ok(success),
                Ok(Err(e)) => {
                    if is_host_transient(&e) && attempts <= config.retry.max_retries {
                        std::thread::sleep(config.retry.backoff * attempts);
                        continue;
                    }
                    (FailureKind::from_error(&e), e.to_string(), Some(e))
                }
                Err(panic) => (FailureKind::Panicked, panic_message(panic.as_ref()), None),
            };
            return Err((
                ExperimentFailure {
                    index,
                    kind,
                    payload,
                    seed: self.engine.seed(),
                    spec: spec.clone(),
                    attempts,
                },
                original,
            ));
        }
    }

    /// Executes one [`DagUnit::Chain`]: simulates the shared attack
    /// segment once, forking each leaf mid-attack at its own end time and
    /// running it to completion under the standard supervision. Pushes one
    /// outcome per leaf into `sink` as it finishes.
    ///
    /// Failure semantics mirror the flat modes exactly:
    ///
    /// - a *fault* (budget breach, numeric divergence) sticks to the chain
    ///   world, so every subsequent leaf forks the stuck world and reports
    ///   the identical error the from-scratch run would;
    /// - a *panic* while advancing the chain poisons it: each remaining
    ///   leaf re-raises the panic message under its own supervision (after
    ///   its chaos hook, which fires first in every mode), producing the
    ///   same per-leaf `Panicked` failures as the other modes;
    /// - host-transient retries re-fork the leaf from the still-positioned
    ///   chain world.
    #[allow(clippy::too_many_arguments)]
    fn run_chain(
        &self,
        specs: &[AttackSpec],
        leaves: &[usize],
        starts: &[SimTime],
        prefixes: &[World],
        config: &RunConfig,
        golden: &RunLog,
        params: &ClassificationParams,
        sink: &ResultSink<'_>,
    ) {
        let first_spec = &specs[leaves[0]];
        debug_assert!(first_spec.model.seed_invariant());
        let k = starts
            .binary_search(&first_spec.start)
            .expect("a prefix snapshot exists for every chain start");
        let budget = self.engine.budget();
        // Seed-invariant models ignore the interceptor seed, so one
        // interceptor serves every leaf of the chain.
        let seed = self.engine.seed() ^ leaves[0] as u64;
        let advanced = catch_unwind(AssertUnwindSafe(|| {
            let mut world = prefixes[k].clone();
            world.set_budget(budget);
            world.run_until(first_spec.start);
            world.install_attack(first_spec.build_interceptor(seed));
            world
        }));
        let (mut chain, mut poison): (Option<World>, Option<String>) = match advanced {
            Ok(world) => (Some(world), None),
            Err(panic) => (None, Some(panic_message(panic.as_ref()))),
        };
        for &leaf in leaves {
            if sink.should_stop() {
                return;
            }
            let spec = &specs[leaf];
            // Advance the shared attack segment to this leaf's end (a
            // no-op for duplicate ends and for faulted worlds).
            let advance_panic = match chain.as_mut() {
                Some(world) => {
                    let end = spec.end.min(world.total_time());
                    catch_unwind(AssertUnwindSafe(|| world.run_until(end)))
                        .err()
                        .map(|panic| panic_message(panic.as_ref()))
                }
                None => None,
            };
            if let Some(msg) = advance_panic {
                chain = None;
                poison = Some(msg);
            }
            let outcome = self.supervise(spec, leaf, config, golden, params, || {
                if self.chaos.is_active() {
                    self.chaos_hook(leaf)?;
                }
                if let Some(msg) = &poison {
                    // Reproduce the chain-advance panic under this leaf's
                    // own supervision — the leaf would have hit it during
                    // its own attack window in the other modes.
                    panic!("{msg}");
                }
                let world = chain.as_mut().expect("unpoisoned chain has a world");
                let mut leaf_world = world.fork_post_attack();
                leaf_world.clear_attack();
                leaf_world.run_to_end();
                if let Some(fault) = leaf_world.fault() {
                    return Err(fault.to_error());
                }
                Ok(leaf_world.into_log())
            });
            if !sink.push(outcome) {
                return;
            }
        }
    }

    /// Builds one attack-free prefix snapshot per distinct start time, in
    /// parallel. Returns the sorted start times and their snapshots,
    /// index-aligned.
    fn build_prefixes(
        &self,
        threads: usize,
        specs: &[&AttackSpec],
    ) -> Result<(Vec<SimTime>, Vec<World>), ComfaseError> {
        let mut starts: Vec<SimTime> = specs.iter().map(|s| s.start).collect();
        starts.sort_unstable();
        starts.dedup();

        let slots: Vec<Mutex<Option<World>>> = starts.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let first_error: Mutex<Option<ComfaseError>> = Mutex::new(None);

        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(starts.len().max(1)) {
                scope.spawn(|_| loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= starts.len() {
                        break;
                    }
                    match self.engine.prefix_snapshot(starts[i]) {
                        Ok(world) => *slots[i].lock() = Some(world),
                        Err(e) => {
                            first_error.lock().get_or_insert(e);
                            next.store(starts.len(), Ordering::Relaxed);
                            abort.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        })
        .map_err(|panic| ComfaseError::WorkerFailed(panic_message(panic.as_ref())))?;

        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }
        let prefixes = slots
            .into_iter()
            .map(|s| s.into_inner().expect("every prefix snapshot was built"))
            .collect();
        Ok((starts, prefixes))
    }

    /// Runs one experiment, forking from its prefix snapshot when one is
    /// available.
    fn execute_one(
        &self,
        spec: &AttackSpec,
        index: usize,
        starts: &[SimTime],
        prefixes: &[World],
    ) -> Result<RunLog, ComfaseError> {
        if self.chaos.is_active() {
            self.chaos_hook(index)?;
        }
        if prefixes.is_empty() {
            return self.engine.run_experiment(spec, index as u64);
        }
        let k = starts
            .binary_search(&spec.start)
            .expect("a prefix snapshot exists for every start time");
        self.engine
            .run_experiment_from(&prefixes[k], spec, index as u64)
    }

    /// Applies the [`ChaosConfig`] failure injections for `index`.
    fn chaos_hook(&self, index: usize) -> Result<(), ComfaseError> {
        if self.chaos.panic_on.contains(&index) {
            panic!("chaos: injected panic at experiment {index}");
        }
        if self.chaos.fail_on.contains(&index) {
            return Err(ComfaseError::InvalidConfig(format!(
                "injected failure at experiment {index}"
            )));
        }
        if let Some(&(_, n)) = self.chaos.transient.iter().find(|(i, _)| *i == index) {
            let mut attempts = self.chaos_attempts.lock();
            let seen = attempts.entry(index).or_insert(0);
            if *seen < n {
                *seen += 1;
                return Err(ComfaseError::Io(format!(
                    "injected transient failure at experiment {index} (attempt {seen})"
                )));
            }
        }
        Ok(())
    }
}

/// Outcome of one supervised experiment: the classified record (plus its
/// metrics row when collected and its dataset capture when recorded), or
/// the structured failure alongside the original error (absent for
/// panics).
type ExperimentOutcome = Result<
    (
        ExperimentRecord,
        Option<ExperimentMetrics>,
        Option<DatasetCapture>,
    ),
    (ExperimentFailure, Option<ComfaseError>),
>;

/// Builds the export label for one classified experiment: the attack
/// specification plus the classified verdict, flattened into the plain
/// strings/scalars the corpus schema carries.
fn experiment_label(record: &ExperimentRecord) -> ExperimentLabel {
    ExperimentLabel {
        index: record.index,
        attack_model: Some(record.spec.model.name().to_string()),
        attack_parameter: Some(record.spec.model.target_parameter().to_string()),
        attack_value: Some(record.spec.value),
        attack_start_s: Some(record.spec.start.as_secs_f64()),
        attack_duration_s: Some(record.spec.duration().as_secs_f64()),
        targets: record.spec.targets.to_vec(),
        verdict: record.verdict.class.to_string(),
        max_decel_mps2: record.verdict.max_decel_mps2,
        nr_collisions: record.verdict.nr_collisions,
    }
}

/// How the execution of one claimed [`WorkUnit`] ended.
enum UnitRun {
    /// Every pending experiment of the unit was pushed; mark it done.
    Finished,
    /// The claim was lost (or its renewal failed) mid-unit: abandon the
    /// unit without completing it and claim the next one.
    Lost,
    /// The campaign is stopping (abort, deadline); the worker exits.
    Stopped,
}

/// Shared result-handling state of the experiment phase, used by every
/// worker: journaling, record/failure accumulation, the failure policy
/// (including the quarantine circuit breaker), progress/observer
/// callbacks, and the abort/deadline controls.
struct ResultSink<'a> {
    journal: Option<&'a JournalWriter>,
    cache: Option<&'a dyn ExperimentCache>,
    key_base: Option<CacheKeyBase>,
    /// Streaming dataset sink; exports happen *before* the journal append
    /// so a journaled row always has its shard on disk.
    dataset: Option<&'a dyn DatasetSink>,
    /// Campaign identity stamped into every exported shard.
    dataset_header: DatasetHeader,
    records: &'a Mutex<Vec<ExperimentRecord>>,
    metrics_rows: &'a Mutex<Vec<ExperimentMetrics>>,
    failures: &'a Mutex<Vec<ExperimentFailure>>,
    first_error: &'a Mutex<Option<ComfaseError>>,
    next: &'a AtomicUsize,
    done: &'a AtomicUsize,
    nr_failed: &'a AtomicUsize,
    abort: &'a AtomicBool,
    deadline: Option<&'a WallDeadline>,
    deadline_hit: &'a AtomicBool,
    /// Claim-cursor value past the end of the worklist; [`ResultSink::stop`]
    /// parks the cursor here so no further unit is claimed.
    park_at: usize,
    total: usize,
    failure_policy: FailurePolicy,
    /// Cache-store fault injection ([`IoChaosConfig::fail_cache_store`]):
    /// the failure budget and the shared consumed-count.
    chaos_store: Option<(u32, &'a AtomicU32)>,
    /// Indices already pushed by this process — claim-driven runs only.
    /// A unit lost to a stalled heartbeat and later stolen back by the
    /// same process re-executes experiments it already journaled; the
    /// re-runs are bit-equal, so the duplicates are simply dropped here.
    dedup: Option<&'a Mutex<BTreeSet<usize>>>,
    progress: &'a (dyn Fn(usize, usize) + Sync),
    observer: &'a dyn CampaignObserver,
}

impl ResultSink<'_> {
    /// Stops the whole campaign, not just the calling worker: parks the
    /// claim cursor past the end and raises the abort flag for in-flight
    /// peers.
    fn stop(&self) {
        self.next.store(self.park_at, Ordering::Relaxed);
        self.abort.store(true, Ordering::Relaxed);
    }

    /// `true` when workers must stop claiming work — the abort flag is
    /// raised or the wall deadline expired (which is latched so the
    /// campaign reports it after the scope ends).
    fn should_stop(&self) -> bool {
        if self.abort.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(d) = self.deadline {
            if d.expired() {
                self.deadline_hit.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Records one experiment outcome: journals it, accumulates the
    /// record/failure, applies the failure policy and reports progress.
    /// Returns `false` when the campaign must stop.
    fn push(&self, outcome: ExperimentOutcome) -> bool {
        if let Some(seen) = self.dedup {
            let index = match &outcome {
                Ok((record, ..)) => record.index,
                Err((failure, _)) => failure.index,
            };
            if !seen.lock().insert(index) {
                // Already journaled and accumulated by this process; the
                // re-execution (a re-stolen unit) produced the same bits.
                return !self.should_stop();
            }
        }
        match outcome {
            Ok((record, row, dataset)) => {
                // Dataset export comes first: once the journal records the
                // experiment as completed, a resume will never re-run it,
                // so its shard must already be on disk by then. Sinks are
                // idempotent for identical bytes, so the crash window
                // (shard written, journal row lost) re-exports harmlessly.
                if let Some(sink) = self.dataset {
                    let exported = sink.export(&ExperimentExport {
                        header: self.dataset_header,
                        label: experiment_label(&record),
                        capture: dataset.clone().unwrap_or_default(),
                    });
                    if let Err(e) = exported {
                        self.first_error
                            .lock()
                            .get_or_insert(ComfaseError::Io(format!("dataset export failed: {e}")));
                        self.stop();
                        return false;
                    }
                }
                if let Some(journal) = self.journal {
                    let entry = JournalEntry::Completed {
                        index: record.index,
                        record: record.clone(),
                        metrics: row.clone(),
                    };
                    if let Err(e) = journal.append(&entry) {
                        self.first_error.lock().get_or_insert(e);
                        self.stop();
                        return false;
                    }
                }
                // Cache stores are as load-bearing as journal appends: a
                // result silently dropped here would force a re-simulation
                // the user believes is cached, so failures abort the
                // campaign like journal I/O errors do.
                if let (Some(cache_store), Some(base)) = (self.cache, self.key_base) {
                    let injected = self.chaos_store.and_then(|(budget, used)| {
                        (used.fetch_add(1, Ordering::Relaxed) < budget).then(|| {
                            ComfaseError::Io(format!(
                                "chaos: injected cache store failure at experiment {}",
                                record.index
                            ))
                        })
                    });
                    let stored = match injected {
                        Some(e) => Err(e),
                        None => store_experiment(cache_store, base, &record, row.as_ref(), dataset),
                    };
                    if let Err(e) = stored {
                        self.first_error.lock().get_or_insert(e);
                        self.stop();
                        return false;
                    }
                }
                if let Some(row) = row {
                    self.metrics_rows.lock().push(row);
                }
                self.records.lock().push(record);
                let d = self.done.fetch_add(1, Ordering::Relaxed) + 1;
                (self.progress)(d, self.total);
                self.observer.experiment_done(d, self.total);
                true
            }
            Err((failure, original)) => {
                if let Some(journal) = self.journal {
                    let entry = JournalEntry::Failed {
                        failure: failure.clone(),
                    };
                    if let Err(e) = journal.append(&entry) {
                        self.first_error.lock().get_or_insert(e);
                        self.stop();
                        return false;
                    }
                }
                self.observer.experiment_failed(&failure);
                match self.failure_policy {
                    FailurePolicy::Abort => {
                        let e = original.unwrap_or_else(|| {
                            ComfaseError::WorkerFailed(format!(
                                "experiment {} panicked: {}",
                                failure.index, failure.payload
                            ))
                        });
                        self.failures.lock().push(failure);
                        self.first_error.lock().get_or_insert(e);
                        self.stop();
                        false
                    }
                    FailurePolicy::Quarantine { max_failures } => {
                        self.failures.lock().push(failure);
                        let n = self.nr_failed.fetch_add(1, Ordering::Relaxed) + 1;
                        if n > max_failures {
                            self.first_error
                                .lock()
                                .get_or_insert(ComfaseError::WorkerFailed(format!(
                                    "quarantine circuit breaker: {n} experiments \
                                     failed (limit {max_failures})"
                                )));
                            self.stop();
                            false
                        } else {
                            // Quarantined failures count toward progress:
                            // the campaign is done with them, just not
                            // successfully.
                            let d = self.done.fetch_add(1, Ordering::Relaxed) + 1;
                            (self.progress)(d, self.total);
                            self.observer.experiment_done(d, self.total);
                            true
                        }
                    }
                }
            }
        }
    }
}

/// Stores one completed experiment in the content-addressed cache. The
/// stored record and row are index-free (index rewritten to 0) so one
/// entry for a seed-invariant attack serves the spec at any experiment
/// index, in any campaign over the same configuration.
fn store_experiment(
    cache_store: &dyn ExperimentCache,
    base: CacheKeyBase,
    record: &ExperimentRecord,
    row: Option<&ExperimentMetrics>,
    dataset: Option<DatasetCapture>,
) -> Result<(), ComfaseError> {
    let spec_json = fingerprint::canonical_json(&record.spec)?;
    let key = base.experiment_key(&spec_json, record.index, record.spec.model.seed_invariant());
    let mut stored = record.clone();
    stored.index = 0;
    let metrics = row.map(|row| {
        let mut row = row.clone();
        row.index = 0;
        row
    });
    // The capture is stored as-is: its rows carry sim times, not the
    // experiment index, so it is already index-free like the record.
    cache_store.store(
        &key,
        &CacheEntry::Experiment {
            record: stored,
            metrics,
            dataset,
        },
    )
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Convenience: classify one ad-hoc run against a golden run using
/// golden-derived parameters.
pub fn classify_against(golden: &RunLog, run: &RunLog) -> Verdict {
    let params = ClassificationParams::from_golden(&golden.trace);
    classify(&golden.trace, &run.trace, &params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackModelKind;
    use crate::classify::Classification;
    use crate::config::{CommModel, TrafficScenario};
    use comfase_des::time::SimTime;

    #[test]
    fn unit_tables_are_disjoint_covering_chunks() {
        for total in [0usize, 1, 2, 7, 8, 25, 97, 11_250] {
            for unit_size in [1usize, 2, 3, 8, 64, 20_000] {
                let units = plan_units(total, unit_size).unwrap();
                let mut covered = vec![0usize; total];
                for (k, unit) in units.iter().enumerate() {
                    assert_eq!(unit.id, k);
                    assert!(unit.lo < unit.hi || total == 0);
                    assert!(unit.len() <= unit_size);
                    for slot in &mut covered[unit.lo..unit.hi] {
                        *slot += 1;
                    }
                }
                assert!(
                    covered.iter().all(|&c| c == 1),
                    "units of size {unit_size} over {total} are not a disjoint cover"
                );
                // Only the last unit may be short.
                for unit in units.iter().rev().skip(1) {
                    assert_eq!(unit.len(), unit_size);
                }
            }
        }
        assert!(plan_units(8, 0).is_err());
    }

    #[test]
    fn claim_execution_excludes_static_shard() {
        #[derive(Debug)]
        struct NoWork;
        impl WorkSource for NoWork {
            fn claim(&self) -> Result<Option<WorkUnit>, ComfaseError> {
                Ok(None)
            }
            fn renew(&self, _: &WorkUnit) -> Result<LeaseState, ComfaseError> {
                Ok(LeaseState::Held)
            }
            fn complete(&self, _: &WorkUnit) -> Result<(), ComfaseError> {
                Ok(())
            }
        }
        let campaign = small_campaign();
        let config = RunConfig {
            work: Some(Arc::new(NoWork)),
            shard: Some(ShardRange { index: 0, of: 2 }),
            ..RunConfig::default()
        };
        let err = campaign
            .run_supervised(1, &config, &NullObserver)
            .unwrap_err();
        assert!(matches!(err, ComfaseError::InvalidConfig(_)), "{err:?}");
        // Without the shard the same exhausted source is accepted: a
        // journal is conventional but not required at the library level.
        let config = RunConfig {
            work: Some(Arc::new(NoWork)),
            ..RunConfig::default()
        };
        let result = campaign.run_supervised(1, &config, &NullObserver).unwrap();
        assert!(result.records.is_empty());
    }

    fn small_campaign() -> Campaign {
        let mut scenario = TrafficScenario::paper_default();
        scenario.total_sim_time = SimTime::from_secs(30);
        let engine = Engine::new(scenario, CommModel::paper_default(), 11).unwrap();
        let setup = AttackCampaignSetup {
            attack_model: AttackModelKind::Delay,
            target_vehicles: vec![2],
            attack_values: vec![0.4, 2.0],
            attack_starts_s: vec![17.0, 18.2],
            attack_durations_s: vec![1.0, 6.0],
        };
        Campaign::new(engine, setup).unwrap()
    }

    #[test]
    fn campaign_runs_all_experiments_in_order() {
        let c = small_campaign();
        assert_eq!(c.nr_experiments(), 8);
        let result = c.run(2).unwrap();
        assert_eq!(result.len(), 8);
        assert!(!result.is_empty());
        assert!(result.failures.is_empty());
        assert!(result.failure_summary().is_empty());
        for (i, r) in result.records.iter().enumerate() {
            assert_eq!(r.index, i);
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        let c = small_campaign();
        let serial = c.run(1).unwrap();
        let parallel = c.run(4).unwrap();
        assert_eq!(serial.records, parallel.records);
        assert_eq!(serial.params, parallel.params);
    }

    #[test]
    fn fork_and_scratch_modes_agree() {
        let c = small_campaign();
        let forked = c.run_with_mode(2, ExecutionMode::PrefixFork).unwrap();
        let scratch = c.run_with_mode(2, ExecutionMode::FromScratch).unwrap();
        assert_eq!(forked.records, scratch.records);
        assert_eq!(forked.params, scratch.params);
        assert_eq!(forked.golden, scratch.golden);
    }

    #[test]
    fn stats_count_snapshots_and_reuse() {
        let c = small_campaign();
        let forked = c.run(2).unwrap();
        // Two distinct start times, 8 experiments.
        assert_eq!(forked.stats.prefix_snapshots, 2);
        assert_eq!(forked.stats.forked_runs, 8);
        assert_eq!(forked.stats.scratch_runs, 0);
        assert_eq!(forked.stats.snapshot_hit_rate(), 1.0);
        let scratch = c.run_with_mode(2, ExecutionMode::FromScratch).unwrap();
        assert_eq!(scratch.stats.prefix_snapshots, 0);
        assert_eq!(scratch.stats.forked_runs, 0);
        assert_eq!(scratch.stats.scratch_runs, 8);
        assert_eq!(scratch.stats.snapshot_hit_rate(), 0.0);
    }

    #[test]
    fn progress_reaches_total() {
        let c = small_campaign();
        let max_seen = AtomicUsize::new(0);
        c.run_with_progress(2, |done, total| {
            assert!(done <= total);
            max_seen.fetch_max(done, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(max_seen.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn failing_experiment_aborts_the_campaign_promptly() {
        let c = small_campaign().with_chaos(ChaosConfig {
            fail_on: vec![2],
            ..ChaosConfig::default()
        });
        let completed = AtomicUsize::new(0);
        // Serial run: experiments 0 and 1 complete, 2 fails, and the abort
        // must keep the worker from draining 3..8.
        let err = c
            .run_with_mode_and_progress(1, ExecutionMode::FromScratch, |done, _| {
                completed.fetch_max(done, Ordering::Relaxed);
            })
            .unwrap_err();
        assert!(err.to_string().contains("injected failure"), "{err}");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            2,
            "campaign must stop at the failure"
        );
    }

    #[test]
    fn failing_experiment_surfaces_error_across_workers() {
        let c = small_campaign().with_chaos(ChaosConfig {
            fail_on: vec![0],
            ..ChaosConfig::default()
        });
        let completed = AtomicUsize::new(0);
        let err = c
            .run_with_mode_and_progress(4, ExecutionMode::FromScratch, |done, _| {
                completed.fetch_max(done, Ordering::Relaxed);
            })
            .unwrap_err();
        assert!(matches!(err, ComfaseError::InvalidConfig(_)), "{err:?}");
        assert!(
            completed.load(Ordering::Relaxed) < 8,
            "the abort flag must keep workers from draining the whole campaign"
        );
    }

    #[test]
    fn quarantine_keeps_the_campaign_running_past_failures() {
        let c = small_campaign().with_chaos(ChaosConfig {
            fail_on: vec![1, 5],
            ..ChaosConfig::default()
        });
        let config = RunConfig {
            failure_policy: FailurePolicy::quarantine(),
            ..RunConfig::default()
        };
        let result = c.run_supervised(2, &config, &NullObserver).unwrap();
        assert_eq!(result.len(), 6);
        assert_eq!(result.failures.len(), 2);
        assert_eq!(result.failures[0].index, 1);
        assert_eq!(result.failures[1].index, 5);
        for f in &result.failures {
            assert_eq!(f.kind, FailureKind::HostError);
            assert!(f.payload.contains("injected failure"), "{}", f.payload);
            assert_eq!(f.attempts, 1);
        }
        assert_eq!(result.failure_summary()[&"host-error"], 2);
        let run_indices: Vec<usize> = result.records.iter().map(|r| r.index).collect();
        assert_eq!(run_indices, vec![0, 2, 3, 4, 6, 7]);
    }

    #[test]
    fn quarantine_isolates_a_panicking_experiment() {
        let c = small_campaign().with_chaos(ChaosConfig {
            panic_on: vec![3],
            ..ChaosConfig::default()
        });
        let config = RunConfig {
            failure_policy: FailurePolicy::quarantine(),
            ..RunConfig::default()
        };
        let result = c.run_supervised(2, &config, &NullObserver).unwrap();
        assert_eq!(result.len(), 7);
        assert_eq!(result.failures.len(), 1);
        let f = &result.failures[0];
        assert_eq!(f.index, 3);
        assert_eq!(f.kind, FailureKind::Panicked);
        assert!(f.payload.contains("injected panic"), "{}", f.payload);
        assert_eq!(result.failure_summary()[&"panicked"], 1);
    }

    #[test]
    fn panic_under_abort_policy_is_a_worker_failure() {
        let c = small_campaign().with_chaos(ChaosConfig {
            panic_on: vec![0],
            ..ChaosConfig::default()
        });
        let err = c.run_with_mode(1, ExecutionMode::FromScratch).unwrap_err();
        assert!(matches!(err, ComfaseError::WorkerFailed(_)), "{err:?}");
        assert!(err.to_string().contains("injected panic"), "{err}");
    }

    #[test]
    fn quarantine_circuit_breaker_trips() {
        let c = small_campaign().with_chaos(ChaosConfig {
            fail_on: vec![0, 1, 2],
            ..ChaosConfig::default()
        });
        let config = RunConfig {
            mode: ExecutionMode::FromScratch,
            failure_policy: FailurePolicy::Quarantine { max_failures: 1 },
            ..RunConfig::default()
        };
        let err = c.run_supervised(1, &config, &NullObserver).unwrap_err();
        assert!(matches!(err, ComfaseError::WorkerFailed(_)), "{err:?}");
        assert!(err.to_string().contains("circuit breaker"), "{err}");
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        let c = small_campaign().with_chaos(ChaosConfig {
            transient: vec![(4, 2)],
            ..ChaosConfig::default()
        });
        let config = RunConfig {
            retry: RetryPolicy {
                max_retries: 2,
                backoff: Duration::from_millis(0),
            },
            ..RunConfig::default()
        };
        let result = c.run_supervised(2, &config, &NullObserver).unwrap();
        assert_eq!(result.len(), 8);
        assert!(result.failures.is_empty());
    }

    #[test]
    fn transient_failures_exhaust_retries_into_a_failure() {
        let c = small_campaign().with_chaos(ChaosConfig {
            transient: vec![(4, 5)],
            ..ChaosConfig::default()
        });
        let config = RunConfig {
            failure_policy: FailurePolicy::quarantine(),
            retry: RetryPolicy {
                max_retries: 1,
                backoff: Duration::from_millis(0),
            },
            ..RunConfig::default()
        };
        let result = c.run_supervised(2, &config, &NullObserver).unwrap();
        assert_eq!(result.failures.len(), 1);
        let f = &result.failures[0];
        assert_eq!(f.index, 4);
        assert_eq!(f.kind, FailureKind::HostError);
        assert_eq!(f.attempts, 2, "one initial attempt plus one retry");
    }

    #[test]
    fn deterministic_failures_are_not_retried() {
        let c = small_campaign().with_chaos(ChaosConfig {
            fail_on: vec![6],
            ..ChaosConfig::default()
        });
        let config = RunConfig {
            failure_policy: FailurePolicy::quarantine(),
            retry: RetryPolicy {
                max_retries: 3,
                backoff: Duration::from_millis(0),
            },
            ..RunConfig::default()
        };
        let result = c.run_supervised(1, &config, &NullObserver).unwrap();
        assert_eq!(result.failures.len(), 1);
        assert_eq!(
            result.failures[0].attempts, 1,
            "a deterministic failure must not burn retries"
        );
    }

    #[test]
    fn long_strong_attacks_classified_severe() {
        let c = small_campaign();
        let result = c.run(4).unwrap();
        // The (pd=2.0, dur=6.0) experiments must be severe.
        let severe: Vec<_> = result
            .records
            .iter()
            .filter(|r| {
                r.spec.value == 2.0
                    && r.spec.duration() == comfase_des::time::SimDuration::from_secs(6)
            })
            .collect();
        assert_eq!(severe.len(), 2);
        for r in severe {
            assert_eq!(r.verdict.class, Classification::Severe, "{r:?}");
        }
    }

    #[test]
    fn invalid_setup_rejected_at_construction() {
        let engine = Engine::paper_default(1).unwrap();
        let mut setup = AttackCampaignSetup::paper_dos_campaign();
        setup.target_vehicles = vec![99];
        assert!(Campaign::new(engine, setup).is_err());
    }

    #[test]
    fn zero_threads_is_invalid_config() {
        let err = small_campaign().run(0).unwrap_err();
        assert!(matches!(err, ComfaseError::InvalidConfig(_)), "{err:?}");
        assert!(
            err.to_string().contains("at least one worker thread"),
            "{err}"
        );
    }

    fn plain_spec(model: AttackModelKind, value: f64, start_s: i64, end_s: i64) -> AttackSpec {
        AttackSpec {
            model,
            value,
            targets: vec![2].into(),
            start: SimTime::from_secs(start_s),
            end: SimTime::from_secs(end_s),
        }
    }

    #[test]
    fn dag_plan_groups_by_attack_coordinates_and_sorts_leaves_by_end() {
        let specs = vec![
            plain_spec(AttackModelKind::Delay, 1.0, 17, 25), // 0: chain (17, 1.0)
            plain_spec(AttackModelKind::Delay, 1.0, 17, 19), // 1: chain (17, 1.0)
            plain_spec(AttackModelKind::Delay, 2.0, 17, 19), // 2: singleton → solo
            plain_spec(AttackModelKind::Delay, 1.0, 18, 19), // 3: chain (18, 1.0)
            plain_spec(AttackModelKind::Delay, 1.0, 18, 30), // 4: chain (18, 1.0)
        ];
        let pending: Vec<usize> = (0..specs.len()).collect();
        let plan = DagPlan::build(&specs, &pending);
        assert_eq!(plan.chains(), 2);
        assert_eq!(plan.chained_leaves(), 4);
        assert_eq!(plan.solo_leaves(), 1);
        assert_eq!(plan.nr_leaves(), 5);
        assert_eq!(plan.depth(), 2);
        assert_eq!(
            plan.units,
            vec![
                // Leaves end-sorted: experiment 1 (end 19) before 0 (end 25).
                DagUnit::Chain { leaves: vec![1, 0] },
                DagUnit::Solo { index: 2 },
                DagUnit::Chain { leaves: vec![3, 4] },
            ]
        );
        // Permutation of the pending list must not change the plan.
        let shuffled = vec![4, 2, 0, 3, 1];
        assert_eq!(DagPlan::build(&specs, &shuffled), plan);
    }

    #[test]
    fn dag_plan_never_chains_seed_dependent_models() {
        let specs = vec![
            plain_spec(AttackModelKind::Drop, 0.5, 17, 19),
            plain_spec(AttackModelKind::Drop, 0.5, 17, 25),
        ];
        let plan = DagPlan::build(&specs, &[0, 1]);
        assert_eq!(plan.chains(), 0);
        assert_eq!(
            plan.units,
            vec![DagUnit::Solo { index: 0 }, DagUnit::Solo { index: 1 }]
        );
        assert_eq!(plan.depth(), 1, "prefix-level reuse only");
    }

    #[test]
    fn snapshot_dag_agrees_with_other_modes() {
        let c = small_campaign();
        let dag = c.run_with_mode(2, ExecutionMode::SnapshotDag).unwrap();
        let forked = c.run_with_mode(2, ExecutionMode::PrefixFork).unwrap();
        let scratch = c.run_with_mode(2, ExecutionMode::FromScratch).unwrap();
        assert_eq!(dag.records, scratch.records);
        assert_eq!(dag.records, forked.records);
        assert_eq!(dag.params, scratch.params);
        assert_eq!(dag.golden, scratch.golden);
    }

    #[test]
    fn snapshot_dag_parallel_and_serial_agree() {
        let c = small_campaign();
        let serial = c.run_with_mode(1, ExecutionMode::SnapshotDag).unwrap();
        let parallel = c.run_with_mode(4, ExecutionMode::SnapshotDag).unwrap();
        assert_eq!(serial.records, parallel.records);
        assert_eq!(serial.stats, parallel.stats);
    }

    #[test]
    fn snapshot_dag_stats_count_chains_and_levels() {
        let c = small_campaign();
        let r = c.run_with_mode(2, ExecutionMode::SnapshotDag).unwrap();
        // 2 starts × 2 values → 4 chains of 2 durations each.
        assert_eq!(r.stats.prefix_snapshots, 2);
        assert_eq!(r.stats.attack_chains, 4);
        assert_eq!(r.stats.chain_forked_runs, 8);
        assert_eq!(r.stats.forked_runs, 0);
        assert_eq!(r.stats.scratch_runs, 0);
        assert_eq!(r.stats.dag_depth, 2);
        assert_eq!(r.stats.snapshot_hit_rate(), 1.0);
        assert_eq!(r.stats.level_hit_rates(), [1.0, 1.0]);
    }

    #[test]
    fn snapshot_dag_quarantine_isolates_leaf_failures() {
        let c = small_campaign().with_chaos(ChaosConfig {
            panic_on: vec![3],
            fail_on: vec![5],
            ..ChaosConfig::default()
        });
        let config = RunConfig {
            mode: ExecutionMode::SnapshotDag,
            failure_policy: FailurePolicy::quarantine(),
            ..RunConfig::default()
        };
        let result = c.run_supervised(2, &config, &NullObserver).unwrap();
        assert_eq!(result.len(), 6);
        assert_eq!(result.failures.len(), 2);
        assert_eq!(result.failures[0].index, 3);
        assert_eq!(result.failures[0].kind, FailureKind::Panicked);
        assert_eq!(result.failures[1].index, 5);
        assert_eq!(result.failures[1].kind, FailureKind::HostError);
        let run_indices: Vec<usize> = result.records.iter().map(|r| r.index).collect();
        assert_eq!(run_indices, vec![0, 1, 2, 4, 6, 7]);
    }

    #[test]
    fn snapshot_dag_retries_transient_leaf_failures() {
        let c = small_campaign().with_chaos(ChaosConfig {
            transient: vec![(4, 2)],
            ..ChaosConfig::default()
        });
        let config = RunConfig {
            mode: ExecutionMode::SnapshotDag,
            retry: RetryPolicy {
                max_retries: 2,
                backoff: Duration::from_millis(0),
            },
            ..RunConfig::default()
        };
        let result = c.run_supervised(2, &config, &NullObserver).unwrap();
        assert_eq!(result.len(), 8);
        assert!(result.failures.is_empty());
    }
}
