//! Attack injection campaigns — Step 3 of the execution flow, batched.
//!
//! A [`Campaign`] expands its setup into the nested-loop experiment list
//! (Algo. 1 lines 8–15), runs the golden run once, executes every
//! experiment (optionally across worker threads — experiments are fully
//! independent simulations) and classifies each against the golden run
//! (Step 4). The paper ran its 11 250 delay experiments in about 7 hours
//! on an 8-core machine; the pure-Rust stack finishes them in minutes.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::attack::AttackSpec;
use crate::classify::{classify, ClassificationParams, Verdict};
use crate::config::AttackCampaignSetup;
use crate::engine::Engine;
use crate::error::ComfaseError;
use crate::log::RunLog;

/// Result of one attack injection experiment (one `AttackCampaignLog`
/// entry, classified).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// The paper's `expNr`.
    pub index: usize,
    /// The injected attack.
    pub spec: AttackSpec,
    /// The Step-4 classification.
    pub verdict: Verdict,
}

/// Result of a full campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// One record per experiment, in `expNr` order.
    pub records: Vec<ExperimentRecord>,
    /// Classification parameters derived from the golden run.
    pub params: ClassificationParams,
    /// The golden run log.
    pub golden: RunLog,
}

impl CampaignResult {
    /// Number of experiments.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if the campaign ran no experiments.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// A configured attack injection campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    engine: Engine,
    setup: AttackCampaignSetup,
}

impl Campaign {
    /// Creates a campaign after validating the setup against the engine's
    /// scenario.
    ///
    /// # Errors
    ///
    /// Fails on inconsistent configuration (unknown targets, empty
    /// vectors, out-of-range times).
    pub fn new(engine: Engine, setup: AttackCampaignSetup) -> Result<Self, ComfaseError> {
        setup.validate(engine.scenario())?;
        Ok(Campaign { engine, setup })
    }

    /// The campaign setup.
    pub fn setup(&self) -> &AttackCampaignSetup {
        &self.setup
    }

    /// The engine (scenario + communication model).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of experiments this campaign will run.
    pub fn nr_experiments(&self) -> usize {
        self.setup.nr_experiments()
    }

    /// Runs the whole campaign on `threads` worker threads.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation-construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run(&self, threads: usize) -> Result<CampaignResult, ComfaseError> {
        self.run_with_progress(threads, |_, _| {})
    }

    /// Runs the campaign, invoking `progress(done, total)` as experiments
    /// complete.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation-construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_with_progress<P>(
        &self,
        threads: usize,
        progress: P,
    ) -> Result<CampaignResult, ComfaseError>
    where
        P: Fn(usize, usize) + Sync,
    {
        assert!(threads > 0, "at least one worker thread required");
        let specs = self.engine.expand_campaign(&self.setup)?;
        let total = specs.len();
        // Step 2: golden run (once).
        let golden = self.engine.golden_run()?;
        let params = ClassificationParams::from_golden(&golden.trace);

        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let records: Mutex<Vec<ExperimentRecord>> = Mutex::new(Vec::with_capacity(total));
        let first_error: Mutex<Option<ComfaseError>> = Mutex::new(None);

        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(total.max(1)) {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    match self.engine.run_experiment(&specs[i], i as u64) {
                        Ok(run) => {
                            let verdict = classify(&golden.trace, &run.trace, &params);
                            records.lock().push(ExperimentRecord {
                                index: i,
                                spec: specs[i].clone(),
                                verdict,
                            });
                            let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                            progress(d, total);
                        }
                        Err(e) => {
                            first_error.lock().get_or_insert(e);
                            break;
                        }
                    }
                });
            }
        })
        .expect("campaign worker panicked");

        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }
        let mut records = records.into_inner();
        records.sort_by_key(|r| r.index);
        Ok(CampaignResult { records, params, golden })
    }
}

/// Convenience: classify one ad-hoc run against a golden run using
/// golden-derived parameters.
pub fn classify_against(golden: &RunLog, run: &RunLog) -> Verdict {
    let params = ClassificationParams::from_golden(&golden.trace);
    classify(&golden.trace, &run.trace, &params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackModelKind;
    use crate::classify::Classification;
    use crate::config::{CommModel, TrafficScenario};
    use comfase_des::time::SimTime;

    fn small_campaign() -> Campaign {
        let mut scenario = TrafficScenario::paper_default();
        scenario.total_sim_time = SimTime::from_secs(30);
        let engine = Engine::new(scenario, CommModel::paper_default(), 11).unwrap();
        let setup = AttackCampaignSetup {
            attack_model: AttackModelKind::Delay,
            target_vehicles: vec![2],
            attack_values: vec![0.4, 2.0],
            attack_starts_s: vec![17.0, 18.2],
            attack_durations_s: vec![1.0, 6.0],
        };
        Campaign::new(engine, setup).unwrap()
    }

    #[test]
    fn campaign_runs_all_experiments_in_order() {
        let c = small_campaign();
        assert_eq!(c.nr_experiments(), 8);
        let result = c.run(2).unwrap();
        assert_eq!(result.len(), 8);
        assert!(!result.is_empty());
        for (i, r) in result.records.iter().enumerate() {
            assert_eq!(r.index, i);
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        let c = small_campaign();
        let serial = c.run(1).unwrap();
        let parallel = c.run(4).unwrap();
        assert_eq!(serial.records, parallel.records);
        assert_eq!(serial.params, parallel.params);
    }

    #[test]
    fn progress_reaches_total() {
        let c = small_campaign();
        let max_seen = AtomicUsize::new(0);
        c.run_with_progress(2, |done, total| {
            assert!(done <= total);
            max_seen.fetch_max(done, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(max_seen.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn long_strong_attacks_classified_severe() {
        let c = small_campaign();
        let result = c.run(4).unwrap();
        // The (pd=2.0, dur=6.0) experiments must be severe.
        let severe: Vec<_> = result
            .records
            .iter()
            .filter(|r| r.spec.value == 2.0 && r.spec.duration() == comfase_des::time::SimDuration::from_secs(6))
            .collect();
        assert_eq!(severe.len(), 2);
        for r in severe {
            assert_eq!(r.verdict.class, Classification::Severe, "{r:?}");
        }
    }

    #[test]
    fn invalid_setup_rejected_at_construction() {
        let engine = Engine::paper_default(1).unwrap();
        let mut setup = AttackCampaignSetup::paper_dos_campaign();
        setup.target_vehicles = vec![99];
        assert!(Campaign::new(engine, setup).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_panics() {
        let _ = small_campaign().run(0);
    }
}
