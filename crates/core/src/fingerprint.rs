//! Canonical campaign fingerprinting.
//!
//! A campaign's *fingerprint* is a stable 64-bit hash over everything that
//! determines its results: engine seed, traffic scenario, communication
//! model, attack campaign setup, event budget and telemetry configuration.
//! Two campaigns with equal fingerprints expand to the same experiment
//! list and — by the workspace's determinism invariant — produce
//! byte-identical artifacts, so the fingerprint is safe to use as an
//! identity check for journal resume, shard merging and the
//! content-addressed result cache.
//!
//! Canonicalization rides on the same machinery that makes `metrics.json`
//! reproducible: every configuration struct serializes through serde_json
//! with `BTreeMap`-ordered maps and Ryu shortest-representation floats, so
//! equal values always produce equal bytes. The hash is FNV-1a 64 — small,
//! dependency-free, and stable across platforms (the auditor's file cache
//! uses the same function for the same reason).
//!
//! Deliberately **excluded** from the fingerprint: worker-thread count,
//! execution mode and indexing substrate. All three are proven
//! byte-identity-preserving (see `tests/tests/index_equivalence.rs`), so
//! journals and cache entries written under one are valid under any other.

use comfase_des::sim::EventBudget;
use comfase_obs::ObsConfig;

use crate::config::{AttackCampaignSetup, CommModel, TrafficScenario};
use crate::error::ComfaseError;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Domain-separation tag folded in first, bumped on any change to the
/// fingerprint input layout so old journals fail identity checks loudly
/// instead of colliding silently.
const FINGERPRINT_DOMAIN: &[u8] = b"comfase-campaign-fingerprint-v1";

/// Folds `bytes` into an FNV-1a 64 running hash.
pub fn fnv1a64_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a 64 of one byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_extend(FNV_OFFSET, bytes)
}

/// Canonical JSON bytes of a serializable value. serde_json with the
/// workspace's `BTreeMap`-everywhere convention is canonical: equal values
/// serialize to equal bytes on every platform.
pub fn canonical_json<T: serde::Serialize>(value: &T) -> Result<Vec<u8>, ComfaseError> {
    serde_json::to_vec(value)
        .map_err(|e| ComfaseError::InvalidConfig(format!("canonicalization failed: {e}")))
}

/// Hashes one length-delimited field into the running fingerprint.
/// Length-delimiting keeps field boundaries unambiguous — concatenating
/// `"ab" + "c"` can never collide with `"a" + "bc"`.
fn fold_field(hash: u64, bytes: &[u8]) -> u64 {
    let hash = fnv1a64_extend(hash, &(bytes.len() as u64).to_le_bytes());
    fnv1a64_extend(hash, bytes)
}

/// Computes the canonical fingerprint of a campaign configuration.
///
/// # Errors
///
/// Fails only if a configuration struct cannot be serialized — which the
/// workspace's own artifact writers would equally fail on.
pub fn campaign_fingerprint(
    seed: u64,
    scenario: &TrafficScenario,
    comm: &CommModel,
    setup: &AttackCampaignSetup,
    budget: EventBudget,
    obs: ObsConfig,
) -> Result<u64, ComfaseError> {
    let mut hash = fnv1a64(FINGERPRINT_DOMAIN);
    hash = fold_field(hash, &seed.to_le_bytes());
    hash = fold_field(hash, &canonical_json(scenario)?);
    hash = fold_field(hash, &canonical_json(comm)?);
    hash = fold_field(hash, &canonical_json(setup)?);
    hash = fold_field(hash, &canonical_json(&budget.max_delivered)?);
    hash = fold_field(hash, &canonical_json(&budget.max_sim_time)?);
    hash = fold_field(hash, &[u8::from(obs.metrics)]);
    hash = fold_field(hash, &(obs.trace_capacity as u64).to_le_bytes());
    hash = fold_field(hash, &[u8::from(obs.dataset)]);
    Ok(hash)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn field_folding_is_boundary_unambiguous() {
        let h1 = fold_field(fold_field(FNV_OFFSET, b"ab"), b"c");
        let h2 = fold_field(fold_field(FNV_OFFSET, b"a"), b"bc");
        assert_ne!(h1, h2);
    }

    // Fingerprints over real configs exercise serde_json and are covered
    // by the integration suite (`tests/tests/dist.rs`), which runs with
    // the real registry dependencies.
}
