//! The composed co-simulation world (paper Fig. 2).
//!
//! [`World`] wires the four simulators together the way ComFASE wires
//! OMNeT++, SUMO, Veins and Plexe:
//!
//! - the **DES kernel** (`comfase-des`) owns time and the event queue;
//! - the **traffic simulation** (`comfase-traffic`) advances vehicle
//!   kinematics in 0.01 s steps, driven by a recurring kernel event (the
//!   TraCI coupling loop);
//! - the **wireless medium** (`comfase-wireless`) fans transmissions out
//!   with path loss and propagation delay, and hosts the attack
//!   interceptor;
//! - per vehicle, an **EDCA MAC** and a **platooning application**
//!   (`comfase-platoon`) exchange beacons and command accelerations.
//!
//! The engine drives the world with [`World::run_until`], installing and
//! removing attack interceptors at phase boundaries exactly as in Algo. 1.

use std::collections::BTreeMap;

use comfase_des::rng::StreamId;
use comfase_des::sim::{BreachKind, EventBudget, Simulator};
use comfase_des::time::{SimDuration, SimTime};
use comfase_obs::trace::TRACK_KERNEL;
use comfase_obs::{
    FrameFate, FrameRecord, HistSpec, KernelCounters, ObsConfig, Recorder, SimRecorder, StepRecord,
    TraceKind,
};
use comfase_platoon::app::PlatoonApp;
use comfase_platoon::beacon::PlatoonBeacon;
use comfase_platoon::controller::{EgoState, RadarReading};
use comfase_platoon::maneuver::{Braking, ConstantSpeed, Maneuver, Sinusoidal};
use comfase_platoon::monitor::{MonitorDecision, SafetyMonitor};
use comfase_traffic::network::LaneIndex;
use comfase_traffic::simulation::{LeaderLookup, TrafficSim};
use comfase_traffic::trace::TraceConfig;
use comfase_traffic::vehicle::{Vehicle, VehicleId, VehicleSpec};
use comfase_wireless::channel::{ChannelInterceptor, FanoutStrategy, Medium, PlannedReception};
use comfase_wireless::decider::{DeciderResult, LossReason};
use comfase_wireless::frame::{AccessCategory, NodeId, WaveChannel, Wsm};
use comfase_wireless::geom::Position;
use comfase_wireless::mac::{Mac, MacAction, MacConfig};
use comfase_wireless::mac1609::ChannelSchedule;
use comfase_wireless::pathloss::{
    FreeSpace, LogNormalShadowing, PathLossModel, TwoRayInterference,
};
use comfase_wireless::phy::PhyConfig;
use comfase_wireless::units::CCH_FREQ_HZ;

use crate::config::{CommModel, ManeuverKind, TrafficScenario, WirelessModelKind};
use crate::error::ComfaseError;
use crate::log::{RunLog, VehicleCommStats};

/// Which execution substrate the hot paths use: the deterministic spatial
/// indexes (wireless neighbor grid + per-lane sorted orderings) or the
/// retained brute-force reference scans. Both produce bit-identical runs;
/// the reference exists for equivalence testing and benchmarking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum IndexingMode {
    /// Grid fan-out + sorted-lane leader lookup (the default).
    #[default]
    Indexed,
    /// Brute-force reference scans in both substrates.
    BruteForce,
}

/// Same-time delivery order: radio events first, then the traffic step,
/// then beacon generation (so beacons sample the freshly stepped state).
const PRIO_RADIO: i16 = -10;
const PRIO_TRAFFIC: i16 = 0;
const PRIO_BEACON: i16 = 10;

/// Bucket layout of the received-power histogram (`phy.rx.power_dbm`):
/// −110 dBm (near the noise floor) to −30 dBm (bumper distance) in 2 dB
/// bins.
const RX_POWER_HIST: HistSpec = HistSpec {
    lo: -110.0,
    hi: -30.0,
    bins: 40,
};

/// A deliberate RF noise source attached to the scenario — the "jamming
/// attacks in the wireless channel" the paper lists as future work. The
/// jammer ignores CSMA and blasts junk frames periodically; legitimate
/// frames overlapping them fail the SNIR decider naturally.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JammerSpec {
    /// Longitudinal position of the jammer antenna, metres.
    pub pos_x_m: f64,
    /// Lateral position (e.g. roadside), metres.
    pub pos_y_m: f64,
    /// Time between junk transmissions.
    pub period: SimDuration,
    /// Junk payload size in bytes (sets the jamming duty cycle together
    /// with the period).
    pub payload_bytes: usize,
    /// First transmission.
    pub start: SimTime,
    /// Jamming stops at this time.
    pub end: SimTime,
}

/// Node ids from this value upward are reserved for jammers.
const JAMMER_NODE_BASE: u32 = 1_000_000;

/// What stopped a run before its configured end.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RunFaultKind {
    /// The sim-event / sim-time budget was exhausted (deterministic
    /// watchdog, see [`EventBudget`]).
    BudgetExceeded,
    /// A release-mode numeric guard found non-finite simulation state.
    NumericDiverged,
}

/// Structured record of a faulted run.
///
/// Every field derives from simulation state only, so a faulting experiment
/// produces the identical `RunFault` on every worker-thread count and in
/// both execution modes (for budgets: provided the budget exceeds the
/// attack-free prefix, which the engine's campaign configuration
/// guarantees by applying budgets to full experiment runs only).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunFault {
    /// Fault category.
    pub kind: RunFaultKind,
    /// Kernel clock when the fault was detected.
    pub at: SimTime,
    /// Human-readable diagnosis.
    pub detail: String,
}

impl RunFault {
    /// Converts the fault into the engine error it surfaces as.
    pub fn to_error(&self) -> ComfaseError {
        let msg = format!("at {}: {}", self.at, self.detail);
        match self.kind {
            RunFaultKind::BudgetExceeded => ComfaseError::BudgetExceeded(msg),
            RunFaultKind::NumericDiverged => ComfaseError::NumericDiverged(msg),
        }
    }
}

/// Events flowing through the world's kernel.
#[derive(Debug, Clone)]
enum WorldEvent {
    /// Advance the traffic simulation by one step (TraCI loop).
    TrafficStep,
    /// Generate and enqueue the next beacon of a vehicle.
    Beacon { vehicle: u32 },
    /// A MAC contention timer expired.
    MacTimer { vehicle: u32, token: u64 },
    /// A vehicle's own transmission left the air.
    TxEnd { vehicle: u32 },
    /// The first bit of a frame reaches a receiver.
    RxStart { reception: Box<PlannedReception> },
    /// The last bit of a frame reaches a receiver.
    RxEnd { reception: Box<PlannedReception> },
    /// A jammer emits its next junk frame.
    JammerTx { jammer: usize },
}

#[derive(Debug, Clone)]
struct Node {
    mac: Mac,
    app: PlatoonApp,
    monitor: Option<SafetyMonitor>,
    active: bool,
}

fn build_maneuver(kind: ManeuverKind, base_speed: f64) -> Box<dyn Maneuver> {
    match kind {
        ManeuverKind::ConstantSpeed => Box::new(ConstantSpeed {
            speed_mps: base_speed,
        }),
        ManeuverKind::Sinusoidal {
            amplitude_mps,
            freq_hz,
            start_s,
        } => Box::new(Sinusoidal {
            base_mps: base_speed,
            amplitude_mps,
            freq_hz,
            start: SimTime::from_secs_f64(start_s),
        }),
        ManeuverKind::Braking {
            brake_at_s,
            decel_mps2,
        } => Box::new(Braking {
            cruise_mps: base_speed,
            brake_at: SimTime::from_secs_f64(brake_at_s),
            decel_mps2,
        }),
    }
}

/// Ids for radio-less background vehicles: allocated above the largest
/// platoon member id.
fn background_vehicle_id(platoon_members: &[u32], i: usize) -> u32 {
    platoon_members.iter().copied().max().unwrap_or(0) + 1 + i as u32
}

fn build_pathloss(kind: WirelessModelKind) -> Box<dyn PathLossModel> {
    match kind {
        WirelessModelKind::FreeSpace => Box::new(FreeSpace::default()),
        WirelessModelKind::TwoRayInterference => Box::new(TwoRayInterference::default()),
        WirelessModelKind::LogNormalShadowing => Box::new(LogNormalShadowing::default()),
    }
}

/// The composed simulation of one experiment run.
///
/// `World` is `Clone`: a clone is a complete snapshot of the simulation
/// state — event queue, clock, vehicles, traces, MAC/medium/application
/// state, and RNG streams — so a clone run forward is bit-identical to the
/// original run forward. The campaign runner exploits this to simulate each
/// attack-free prefix (t = 0 to `attackStartTime`) once and fork every
/// experiment that shares it.
///
/// # Panics
///
/// Cloning panics if an attack interceptor is installed (see
/// [`Medium`]'s `Clone`): snapshots are taken at attack-free points only.
#[derive(Debug, Clone)]
pub struct World {
    sim: Simulator<WorldEvent>,
    traffic: TrafficSim,
    medium: Medium,
    nodes: BTreeMap<u32, Node>,
    step_len: SimDuration,
    step_len_s: f64,
    beacon_interval: SimDuration,
    min_payload_bytes: usize,
    total_time: SimTime,
    lane_offset_y: f64,
    jammers: Vec<JammerSpec>,
    /// Deterministic telemetry recorder. Part of cloned state, so a forked
    /// run carries the prefix's counters exactly like a from-scratch run.
    obs: SimRecorder,
    /// First fault detected during this run (sticky; stops execution).
    fault: Option<RunFault>,
}

impl World {
    /// Builds a world from a validated scenario and communication model.
    ///
    /// # Errors
    ///
    /// Fails if either configuration is invalid.
    pub fn new(
        scenario: &TrafficScenario,
        comm: &CommModel,
        seed: u64,
    ) -> Result<World, ComfaseError> {
        World::with_obs(scenario, comm, seed, ObsConfig::disabled())
    }

    /// Builds a world with a telemetry configuration. With
    /// [`ObsConfig::disabled`] this is identical to [`World::new`] — the
    /// recorder degenerates to a no-op.
    ///
    /// # Errors
    ///
    /// Fails if either configuration is invalid.
    pub fn with_obs(
        scenario: &TrafficScenario,
        comm: &CommModel,
        seed: u64,
        obs: ObsConfig,
    ) -> Result<World, ComfaseError> {
        scenario.validate()?;
        comm.validate()?;

        let sim: Simulator<WorldEvent> = Simulator::new(seed);
        let mut traffic = TrafficSim::new(scenario.road.clone(), sim.rng(StreamId(0)));
        traffic.set_trace_config(TraceConfig { sample_every: 1 });
        // The run length is known up front: size the per-step trace buffers
        // once instead of growing them across thousands of steps.
        let planned_steps =
            scenario.total_sim_time.as_nanos() / SimDuration::from_millis(10).as_nanos();
        traffic.reserve_trace_capacity(planned_steps as usize + 1);
        let medium = Medium::with_models(
            build_pathloss(comm.wireless_model),
            CCH_FREQ_HZ,
            PhyConfig::default(),
        );

        let lane = LaneIndex(scenario.platoon.lane);
        let lane_offset_y = scenario.road.lane_center_offset(lane);
        let leader_id = scenario.platoon.leader();
        let mut nodes = BTreeMap::new();
        for (vehicle, pos) in scenario
            .platoon
            .initial_positions(scenario.vehicle.length_m)
        {
            traffic.add_vehicle(Vehicle::new(
                VehicleId(vehicle),
                scenario.vehicle.clone(),
                pos,
                lane,
                scenario.platoon.initial_speed_mps,
            ))?;
            traffic.set_external_control(VehicleId(vehicle))?;
            let app = if vehicle == leader_id {
                PlatoonApp::leader(
                    vehicle,
                    build_maneuver(scenario.maneuver, scenario.platoon.initial_speed_mps),
                )
            } else {
                let pred = scenario
                    .platoon
                    .predecessor_of(vehicle)
                    .expect("followers have predecessors");
                PlatoonApp::follower_with_failsafe(
                    vehicle,
                    leader_id,
                    pred,
                    scenario.platoon.controller,
                    scenario
                        .platoon
                        .staleness_timeout_s
                        .map(SimDuration::from_secs_f64),
                )
            };
            let mac_cfg = MacConfig {
                schedule: if comm.channel_switching {
                    ChannelSchedule::alternating()
                } else {
                    ChannelSchedule::default()
                },
                ..MacConfig::default()
            };
            let mac = Mac::new(mac_cfg, sim.rng(StreamId(1000 + u64::from(vehicle))));
            let monitor = if vehicle == leader_id {
                None // the leader drives the maneuver; monitors guard followers
            } else {
                scenario.safety_monitor.map(SafetyMonitor::new)
            };
            nodes.insert(
                vehicle,
                Node {
                    mac,
                    app,
                    monitor,
                    active: true,
                },
            );
        }

        // Radio-less background traffic driven by the built-in
        // car-following model.
        let platoon_ids: Vec<u32> = scenario.platoon.members.clone();
        for (i, &(lane_idx, pos, speed)) in scenario.background_vehicles.iter().enumerate() {
            let id = background_vehicle_id(&platoon_ids, i);
            traffic.add_vehicle(Vehicle::new(
                VehicleId(id),
                VehicleSpec::default_car(),
                pos,
                LaneIndex(lane_idx),
                speed,
            ))?;
        }

        let min_payload_bytes = comm.packet_size_bits.saturating_sub(192).div_ceil(8);
        let scenario_jammers = scenario.jammers.clone();
        let mut world = World {
            sim,
            traffic,
            medium,
            nodes,
            step_len: SimDuration::from_millis(10),
            step_len_s: 0.01,
            beacon_interval: comm.beaconing_time,
            min_payload_bytes,
            total_time: scenario.total_sim_time,
            lane_offset_y,
            jammers: Vec::new(),
            obs: SimRecorder::new(obs),
            fault: None,
        };
        world.sync_positions();
        for spec in scenario_jammers {
            world.add_jammer(spec);
        }

        // Kick off the recurring events: the TraCI step loop and one
        // beacon timer per vehicle, staggered by 1 ms to avoid perfectly
        // synchronised channel access at t = 0.
        world.sim.schedule_at_with_priority(
            SimTime::ZERO + world.step_len,
            PRIO_TRAFFIC,
            WorldEvent::TrafficStep,
        );
        let vehicles: Vec<u32> = world.nodes.keys().copied().collect();
        for (i, vehicle) in vehicles.into_iter().enumerate() {
            let first = SimDuration::from_millis(10) + SimDuration::from_millis(i as i64);
            world.sim.schedule_at_with_priority(
                SimTime::ZERO + first,
                PRIO_BEACON,
                WorldEvent::Beacon { vehicle },
            );
        }
        Ok(world)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Total configured simulation time.
    pub fn total_time(&self) -> SimTime {
        self.total_time
    }

    /// Selects the execution substrate for the two hot paths: the wireless
    /// fan-out and the traffic leader lookup. Results are bit-identical in
    /// both modes; [`IndexingMode::BruteForce`] exists as the reference for
    /// equivalence tests and scaling benchmarks.
    pub fn set_indexing(&mut self, mode: IndexingMode) {
        match mode {
            IndexingMode::Indexed => {
                self.medium.set_fanout_strategy(FanoutStrategy::Grid);
                self.traffic.set_leader_lookup(LeaderLookup::Indexed);
            }
            IndexingMode::BruteForce => {
                self.medium.set_fanout_strategy(FanoutStrategy::BruteForce);
                self.traffic.set_leader_lookup(LeaderLookup::Linear);
            }
        }
    }

    /// Installs an attack interceptor on the wireless channel
    /// (`CommModelEditor`, Algo. 1 line 11).
    pub fn install_attack(&mut self, interceptor: Box<dyn ChannelInterceptor>) {
        self.obs.inc("attack.installed");
        self.obs
            .trace_event(self.sim.now(), TRACK_KERNEL, "attack.on", TraceKind::Mark);
        self.medium.set_interceptor(interceptor);
    }

    /// Removes the attack, restoring the original communication model.
    pub fn clear_attack(&mut self) {
        self.obs
            .trace_event(self.sim.now(), TRACK_KERNEL, "attack.off", TraceKind::Mark);
        self.medium.clear_interceptor();
    }

    /// Forks this world mid-attack for snapshot-DAG execution.
    ///
    /// The fork is a snapshot of everything *except* the interceptor: the
    /// interceptor is detached for the duration of the clone (satisfying
    /// the [`Medium`] snapshot invariant that attack state is never
    /// cloned) and re-installed on `self` afterwards. The returned leaf
    /// carries no interceptor, so its subsequent [`World::clear_attack`]
    /// is a pure trace/bookkeeping step — exactly the state a from-scratch
    /// run has after `run_until(attack.end)` + `clear_attack()`.
    ///
    /// Only valid for seed-invariant attacks
    /// ([`crate::attack::AttackModelKind::seed_invariant`]): a stateful
    /// interceptor (probabilistic drop) would lose RNG state in the fork.
    pub fn fork_post_attack(&mut self) -> World {
        let interceptor = self.medium.clear_interceptor();
        let mut leaf = self.clone();
        if let Some(i) = interceptor {
            self.medium.set_interceptor(i);
        }
        // Substrate-diagnostic counter (`exec.` prefix): excluded from
        // `metrics.json`, where mid-attack forks must be invisible.
        leaf.obs.inc("exec.fork.mid_attack");
        leaf
    }

    /// Installs a sim-event / sim-time budget on the kernel (the
    /// deterministic watchdog). Events are counted from t = 0 — the counter
    /// is part of the snapshot state — so forked and from-scratch runs
    /// breach at the identical event.
    pub fn set_budget(&mut self, budget: EventBudget) {
        self.sim.set_budget(budget);
    }

    /// The first fault this run hit, if any. A faulted world stops
    /// executing: further `run_until` calls return immediately.
    pub fn fault(&self) -> Option<&RunFault> {
        self.fault.as_ref()
    }

    /// Runs the world until `limit` (clamped to the configured total time).
    ///
    /// Stops early — without advancing the clock to `limit` — when a fault
    /// is detected: a kernel budget breach or a numeric guard firing in the
    /// traffic or wireless layer. The fault is sticky (see
    /// [`World::fault`]); subsequent calls are no-ops, which keeps the
    /// engine's multi-phase run sequence safe without special-casing.
    pub fn run_until(&mut self, limit: SimTime) {
        if self.fault.is_some() {
            return;
        }
        let limit = limit.min(self.total_time);
        while let Some((t, ev)) = self.sim.pop_due(limit) {
            self.dispatch(ev);
            // Numeric guards are polled per event rather than per check
            // site so detection order (and thus the recorded fault) is
            // deterministic.
            let numeric = self
                .traffic
                .numeric_fault()
                .or_else(|| self.medium.numeric_fault());
            if let Some(detail) = numeric {
                self.fault = Some(RunFault {
                    kind: RunFaultKind::NumericDiverged,
                    at: t,
                    detail: detail.to_string(),
                });
                return;
            }
        }
        if let Some(breach) = self.sim.breach() {
            let what = match breach.kind {
                BreachKind::Delivered => format!(
                    "event budget exhausted: {} events delivered, next event at {}",
                    breach.delivered, breach.at
                ),
                BreachKind::SimTime => format!(
                    "sim-time budget exhausted: next event at {} is past the allowed horizon",
                    breach.at
                ),
            };
            self.fault = Some(RunFault {
                kind: RunFaultKind::BudgetExceeded,
                at: self.sim.now(),
                detail: what,
            });
            return;
        }
        self.sim.advance_to(limit);
    }

    /// Runs to the end of the configured simulation time.
    pub fn run_to_end(&mut self) {
        self.run_until(self.total_time);
    }

    /// Extracts the run log (consumes the world).
    pub fn into_log(mut self) -> RunLog {
        // Index health counters. The `index.` prefix marks them as
        // strategy-dependent diagnostics: campaign metrics filter them out
        // so `metrics.json` stays byte-identical between indexed and
        // brute-force runs.
        if self.obs.enabled() {
            self.obs.add(
                "index.medium.links_pruned_by_grid",
                self.medium.stats().links_pruned_by_grid,
            );
            self.obs
                .add("index.traffic.lane_rebuilds", self.traffic.index_rebuilds());
        }
        let comm = self
            .nodes
            .iter()
            .map(|(&v, n)| {
                (
                    v,
                    VehicleCommStats {
                        mac: n.mac.stats(),
                        app: n.app.stats(),
                    },
                )
            })
            .collect();
        let kernel = KernelCounters {
            scheduled: self.sim.scheduled(),
            delivered: self.sim.delivered(),
            cancelled: self.sim.cancelled(),
            pending_at_end: self.sim.pending() as u64,
        };
        let traffic_stats = self.traffic.stats();
        RunLog {
            trace: self.traffic.into_trace(),
            channel: self.medium.stats(),
            comm,
            final_time: self.sim.now(),
            kernel,
            traffic_stats,
            obs: self.obs.into_snapshot(),
        }
    }

    /// Read access to the traffic simulation (for examples and tests).
    pub fn traffic(&self) -> &TrafficSim {
        &self.traffic
    }

    /// Read access to the wireless medium (for examples and tests).
    pub fn medium(&self) -> &Medium {
        &self.medium
    }

    /// Safety-monitor interventions of one vehicle so far (`None` if the
    /// vehicle has no monitor).
    pub fn monitor_interventions(&self, vehicle: u32) -> Option<u64> {
        self.nodes
            .get(&vehicle)?
            .monitor
            .as_ref()
            .map(SafetyMonitor::interventions)
    }

    /// Attaches an RF jammer to the scenario. May be called any number of
    /// times before or during the run; jamming starts at `spec.start`.
    pub fn add_jammer(&mut self, spec: JammerSpec) {
        let idx = self.jammers.len();
        let node = NodeId(JAMMER_NODE_BASE + idx as u32);
        self.medium
            .update_position(node, Position::on_road(spec.pos_x_m, spec.pos_y_m));
        let start = spec.start.max(self.sim.now());
        self.jammers.push(spec);
        self.sim
            .schedule_at_with_priority(start, PRIO_RADIO, WorldEvent::JammerTx { jammer: idx });
    }

    fn sync_positions(&mut self) {
        let updates: Vec<(u32, f64)> = self
            .traffic
            .vehicles()
            .iter()
            .filter(|v| v.active)
            .map(|v| (v.id.0, v.state.pos_m - v.spec.length_m / 2.0))
            .collect();
        for (id, x) in updates {
            self.medium
                .update_position(NodeId(id), Position::on_road(x, self.lane_offset_y));
        }
    }

    fn dispatch(&mut self, ev: WorldEvent) {
        if self.obs.enabled() {
            self.obs.inc(match &ev {
                WorldEvent::TrafficStep => "kernel.dispatch.traffic_step",
                WorldEvent::Beacon { .. } => "kernel.dispatch.beacon",
                WorldEvent::MacTimer { .. } => "kernel.dispatch.mac_timer",
                WorldEvent::TxEnd { .. } => "kernel.dispatch.tx_end",
                WorldEvent::RxStart { .. } => "kernel.dispatch.rx_start",
                WorldEvent::RxEnd { .. } => "kernel.dispatch.rx_end",
                WorldEvent::JammerTx { .. } => "kernel.dispatch.jammer_tx",
            });
        }
        match ev {
            WorldEvent::TrafficStep => self.on_traffic_step(),
            WorldEvent::Beacon { vehicle } => self.on_beacon_timer(vehicle),
            WorldEvent::MacTimer { vehicle, token } => {
                let now = self.sim.now();
                if let Some(node) = self.nodes.get_mut(&vehicle) {
                    let actions = node.mac.handle_timer(token, now);
                    self.apply_mac_actions(vehicle, actions);
                }
            }
            WorldEvent::TxEnd { vehicle } => {
                let now = self.sim.now();
                if let Some(node) = self.nodes.get_mut(&vehicle) {
                    let actions = node.mac.tx_finished(now);
                    self.apply_mac_actions(vehicle, actions);
                }
            }
            WorldEvent::RxStart { reception } => self.on_rx_start(*reception),
            WorldEvent::RxEnd { reception } => self.on_rx_end(*reception),
            WorldEvent::JammerTx { jammer } => self.on_jammer_tx(jammer),
        }
    }

    fn on_jammer_tx(&mut self, jammer: usize) {
        let now = self.sim.now();
        let spec = self.jammers[jammer].clone();
        if now >= spec.end {
            return;
        }
        let node = NodeId(JAMMER_NODE_BASE + jammer as u32);
        // Junk frame: decodes to no valid platoon beacon (short payload).
        let wsm = Wsm {
            source: node,
            sequence: 0,
            created: now,
            channel: WaveChannel::Cch,
            payload: vec![0xA5u8; spec.payload_bytes].into(),
        };
        let out = self.medium.transmit(node, wsm, now);
        for r in out.receptions {
            self.sim.schedule_at_with_priority(
                r.start,
                PRIO_RADIO,
                WorldEvent::RxStart {
                    reception: Box::new(r.clone()),
                },
            );
            self.sim.schedule_at_with_priority(
                r.end,
                PRIO_RADIO,
                WorldEvent::RxEnd {
                    reception: Box::new(r),
                },
            );
        }
        let next = now + spec.period;
        if next < spec.end && next <= self.total_time {
            self.sim
                .schedule_at_with_priority(next, PRIO_RADIO, WorldEvent::JammerTx { jammer });
        }
    }

    fn on_traffic_step(&mut self) {
        let now = self.sim.now();
        let capture = self.obs.dataset_enabled();
        let attack_active = capture && self.medium.has_interceptor();
        // Step rows are staged locally so the collision flag (only known
        // after kinematics advance) can be stamped before recording. Node
        // iteration order is BTreeMap order, so rows are deterministic.
        let mut step_rows: Vec<StepRecord> = Vec::new();
        // Control phase: every active platoon member computes its command
        // from its current knowledge.
        let vehicles: Vec<u32> = self.nodes.keys().copied().collect();
        for v in vehicles {
            let node = self.nodes.get_mut(&v).expect("node exists");
            if !node.active {
                continue;
            }
            let Some(veh) = self.traffic.vehicle(VehicleId(v)) else {
                continue;
            };
            if !veh.active {
                continue;
            }
            let ego = EgoState {
                speed_mps: veh.state.speed_mps,
                accel_mps2: veh.state.accel_mps2,
            };
            let pos_m = veh.state.pos_m;
            let lead_gap = self
                .traffic
                .leader_of(VehicleId(v))
                .expect("vehicle exists");
            let radar = lead_gap.map(|(lead, gap)| {
                let lead_speed = self
                    .traffic
                    .vehicle(lead)
                    .map_or(ego.speed_mps, |l| l.state.speed_mps);
                RadarReading {
                    gap_m: gap,
                    closing_speed_mps: ego.speed_mps - lead_speed,
                }
            });
            let node = self.nodes.get_mut(&v).expect("node exists");
            let mut accel = node.app.control(now, ego, radar, self.step_len_s);
            let mut monitor_brake = false;
            if let Some(monitor) = node.monitor.as_mut() {
                if let MonitorDecision::EmergencyBrake(brake) = monitor.check(radar.as_ref()) {
                    accel = brake;
                    monitor_brake = true;
                }
            }
            if capture {
                step_rows.push(StepRecord {
                    time_ns: now.as_nanos(),
                    vehicle: v,
                    pos_m,
                    speed_mps: ego.speed_mps,
                    accel_mps2: accel,
                    leader: lead_gap.map(|(lead, _)| lead.0),
                    gap_m: lead_gap.map(|(_, gap)| gap),
                    // The paper's comfortable-deceleration boundary
                    // (classify::ClassificationParams, 5 m/s²).
                    hard_braking: monitor_brake || accel <= -5.0,
                    collision: false,
                    attack_active,
                });
            }
            self.traffic
                .command_accel(VehicleId(v), accel)
                .expect("vehicle exists");
        }

        // Advance kinematics; handle collisions (SUMO removes the collider,
        // which also silences its radio).
        let collisions = self.traffic.step();
        for c in &collisions {
            self.obs.inc("traffic.collisions");
            self.obs
                .trace_event(now, c.collider.0, "collision", TraceKind::Mark);
            if let Some(node) = self.nodes.get_mut(&c.collider.0) {
                node.active = false;
            }
            self.medium.remove_node(NodeId(c.collider.0));
        }
        for mut row in step_rows {
            row.collision = collisions.iter().any(|c| c.collider.0 == row.vehicle);
            self.obs.record_step(row);
        }
        self.sync_positions();

        let next = now + self.step_len;
        if next <= self.total_time {
            self.sim
                .schedule_at_with_priority(next, PRIO_TRAFFIC, WorldEvent::TrafficStep);
        }
    }

    fn on_beacon_timer(&mut self, vehicle: u32) {
        let now = self.sim.now();
        let Some(node) = self.nodes.get_mut(&vehicle) else {
            return;
        };
        if !node.active {
            return;
        }
        let Some(veh) = self.traffic.vehicle(VehicleId(vehicle)) else {
            return;
        };
        let beacon = node.app.make_beacon(
            now,
            veh.state.pos_m,
            veh.state.speed_mps,
            veh.state.accel_mps2,
        );
        let mut payload = beacon.encode().to_vec();
        if payload.len() < self.min_payload_bytes {
            payload.resize(self.min_payload_bytes, 0);
        }
        let wsm = Wsm {
            source: NodeId(vehicle),
            sequence: 0,
            created: now,
            channel: WaveChannel::Cch,
            payload: payload.into(),
        };
        let actions = node.mac.enqueue(wsm, AccessCategory::Vo, now);
        self.apply_mac_actions(vehicle, actions);

        let next = now + self.beacon_interval;
        if next <= self.total_time {
            self.sim
                .schedule_at_with_priority(next, PRIO_BEACON, WorldEvent::Beacon { vehicle });
        }
    }

    fn apply_mac_actions(&mut self, vehicle: u32, actions: Vec<MacAction>) {
        let now = self.sim.now();
        for action in actions {
            match action {
                MacAction::SetTimer { at, token } => {
                    self.sim.schedule_at_with_priority(
                        at.max(now),
                        PRIO_RADIO,
                        WorldEvent::MacTimer { vehicle, token },
                    );
                }
                MacAction::StartTx(wsm) => {
                    let out = self.medium.transmit(NodeId(vehicle), wsm, now);
                    if self.obs.enabled() {
                        self.obs.inc("phy.tx.frames");
                        self.obs.trace_event(now, vehicle, "tx", TraceKind::Begin);
                        self.obs
                            .trace_event(now + out.duration, vehicle, "tx", TraceKind::End);
                    }
                    self.sim.schedule_at_with_priority(
                        now + out.duration,
                        PRIO_RADIO,
                        WorldEvent::TxEnd { vehicle },
                    );
                    for r in out.receptions {
                        self.sim.schedule_at_with_priority(
                            r.start,
                            PRIO_RADIO,
                            WorldEvent::RxStart {
                                reception: Box::new(r.clone()),
                            },
                        );
                        self.sim.schedule_at_with_priority(
                            r.end,
                            PRIO_RADIO,
                            WorldEvent::RxEnd {
                                reception: Box::new(r),
                            },
                        );
                    }
                }
                MacAction::Drop { .. } => {
                    // Queue overflow: counted in MAC stats, nothing to do.
                }
            }
        }
    }

    /// Captures one dataset frame row for a decided (or inactive-receiver)
    /// reception. No-op — and allocation-free — unless the run was built
    /// with dataset capture enabled.
    fn record_frame_fate(
        &mut self,
        now: SimTime,
        reception: &PlannedReception,
        fate: FrameFate,
        snir_db: Option<f64>,
    ) {
        if !self.obs.dataset_enabled() {
            return;
        }
        self.obs.record_frame(FrameRecord {
            time_ns: now.as_nanos(),
            tx: reception.wsm.source.0,
            rx: reception.rx.0,
            delay_ns: (now - reception.wsm.created).as_nanos(),
            snir_db,
            fate,
            attack_active: self.medium.has_interceptor(),
        });
    }

    fn on_rx_start(&mut self, reception: PlannedReception) {
        let now = self.sim.now();
        let rx = reception.rx.0;
        let Some(node) = self.nodes.get_mut(&rx) else {
            return;
        };
        if !node.active {
            return;
        }
        self.medium.reception_started(&reception);
        if reception.above_cs {
            let actions = node.mac.medium_busy(now);
            self.apply_mac_actions(rx, actions);
        }
    }

    fn on_rx_end(&mut self, reception: PlannedReception) {
        let now = self.sim.now();
        let rx = reception.rx.0;
        let Some(node) = self.nodes.get_mut(&rx) else {
            // Planned for a radio that never decodes (jammer node) — the
            // link leaves the accounting here.
            self.obs.inc("phy.rx.inactive");
            self.record_frame_fate(now, &reception, FrameFate::RxInactive, None);
            return;
        };
        if !node.active {
            // Receiver crashed mid-flight; same attribution.
            self.obs.inc("phy.rx.inactive");
            self.record_frame_fate(now, &reception, FrameFate::RxInactive, None);
            return;
        }
        let result = self.medium.reception_finished(&reception);
        // Inlined (rather than via `record_frame_fate`) because the `node`
        // borrow is still live here; `obs` and `medium` are disjoint fields.
        if self.obs.dataset_enabled() {
            let (fate, snir_db) = match &result {
                DeciderResult::Received { snir_db } => (FrameFate::Received, Some(*snir_db)),
                DeciderResult::Lost(LossReason::Snir) => (FrameFate::LostSnir, None),
                DeciderResult::Lost(LossReason::BelowSensitivity) => {
                    (FrameFate::LostSensitivity, None)
                }
                DeciderResult::Lost(LossReason::NumericFault) => (FrameFate::NumericFault, None),
            };
            self.obs.record_frame(FrameRecord {
                time_ns: now.as_nanos(),
                tx: reception.wsm.source.0,
                rx: reception.rx.0,
                delay_ns: (now - reception.wsm.created).as_nanos(),
                snir_db,
                fate,
                attack_active: self.medium.has_interceptor(),
            });
        }
        if self.obs.enabled() {
            self.obs.observe(
                "phy.rx.power_dbm",
                RX_POWER_HIST,
                reception.power.to_dbm().0,
            );
            if result.is_received() {
                self.obs.inc("phy.rx.ok");
                self.obs.trace_event(now, rx, "rx", TraceKind::Mark);
            } else {
                self.obs.inc("phy.rx.lost");
                self.obs.trace_event(now, rx, "rx.lost", TraceKind::Mark);
            }
        }
        if result.is_received() {
            if let Ok(beacon) = PlatoonBeacon::decode(reception.wsm.payload.clone()) {
                node.app.on_beacon(beacon);
            }
        }
        if !self.medium.is_busy(reception.rx, now) {
            let node = self.nodes.get_mut(&rx).expect("checked above");
            let actions = node.mac.medium_idle(now);
            self.apply_mac_actions(rx, actions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CommModel, TrafficScenario};

    fn build() -> World {
        World::new(
            &TrafficScenario::paper_default(),
            &CommModel::paper_default(),
            42,
        )
        .unwrap()
    }

    #[test]
    fn world_builds_with_paper_configs() {
        let w = build();
        assert_eq!(w.traffic().vehicles().len(), 4);
        assert_eq!(w.medium().node_count(), 4);
        assert_eq!(w.total_time(), SimTime::from_secs(60));
    }

    #[test]
    fn beacons_flow_between_vehicles() {
        let mut w = build();
        w.run_until(SimTime::from_secs(2));
        let log = w.into_log();
        // 4 vehicles, ~10 beacons/s each over 2 s.
        let sent: u64 = log.comm.values().map(|c| c.mac.sent).sum();
        assert!(sent >= 70, "sent only {sent} beacons");
        assert!(log.channel.received > 0, "nothing received");
        // Followers actually used leader/predecessor beacons.
        for v in [2u32, 3, 4] {
            assert!(
                log.comm[&v].app.beacons_used > 0,
                "vehicle {v} used no beacons"
            );
        }
    }

    #[test]
    fn platoon_holds_formation_without_attack() {
        let mut w = build();
        w.run_until(SimTime::from_secs(30));
        // No collisions; gaps stay close to the 5 m design spacing.
        for v in [2u32, 3, 4] {
            let (_, gap) = w.traffic.leader_of(VehicleId(v)).unwrap().unwrap();
            assert!((gap - 5.0).abs() < 2.0, "vehicle {v} gap {gap}");
        }
        let log = w.into_log();
        assert!(!log.has_collision(), "golden run must be collision-free");
    }

    #[test]
    fn golden_run_is_deterministic() {
        let run = |seed| {
            let mut w = World::new(
                &TrafficScenario::paper_default(),
                &CommModel::paper_default(),
                seed,
            )
            .unwrap();
            w.run_until(SimTime::from_secs(10));
            w.traffic()
                .vehicles()
                .iter()
                .map(|v| v.state.pos_m)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn run_until_clamps_to_total_time() {
        let mut w = build();
        w.run_until(SimTime::from_secs(1000));
        assert_eq!(w.now(), SimTime::from_secs(60));
    }

    #[test]
    fn background_vehicles_drive_with_car_following() {
        let mut scenario = TrafficScenario::paper_default();
        scenario.total_sim_time = SimTime::from_secs(10);
        // Two Krauss vehicles on lane 1 (the platoon is on lane 0).
        scenario.background_vehicles = vec![(1, 300.0, 20.0), (1, 250.0, 25.0)];
        let mut w = World::new(&scenario, &CommModel::paper_default(), 1).unwrap();
        w.run_to_end();
        assert_eq!(w.traffic().vehicles().len(), 6);
        let log = w.into_log();
        // Background vehicles get ids 5 and 6 and are traced like any
        // other vehicle.
        let tr = log
            .trace
            .vehicle(VehicleId(5))
            .expect("background vehicle traced");
        assert!(tr.pos.max_value().unwrap() > 350.0, "vehicle 5 moved");
        assert!(!log.trace.has_collision());
        // They have no radio: only the 4 platoon NICs exist.
        assert!(!log.comm.contains_key(&5));
    }

    #[test]
    fn invalid_background_vehicle_rejected() {
        let mut scenario = TrafficScenario::paper_default();
        scenario.background_vehicles = vec![(9, 300.0, 20.0)];
        assert!(World::new(&scenario, &CommModel::paper_default(), 1).is_err());
    }

    #[test]
    fn jammer_degrades_reception() {
        let build = |with_jammer: bool| {
            let mut scenario = TrafficScenario::paper_default();
            scenario.total_sim_time = SimTime::from_secs(10);
            let mut w = World::new(&scenario, &CommModel::paper_default(), 1).unwrap();
            if with_jammer {
                w.add_jammer(JammerSpec {
                    pos_x_m: 490.0, // right next to the platoon
                    pos_y_m: 10.0,
                    period: SimDuration::from_micros(300),
                    payload_bytes: 200,
                    start: SimTime::from_secs(2),
                    end: SimTime::from_secs(10),
                });
            }
            w.run_to_end();
            w.into_log()
        };
        let clean = build(false);
        let jammed = build(true);
        assert_eq!(clean.channel.lost_snir, 0, "no losses without jammer");
        assert!(
            jammed.channel.lost_snir > 50,
            "jammer must destroy frames, lost {}",
            jammed.channel.lost_snir
        );
        let used = |log: &crate::log::RunLog| -> u64 {
            log.comm.values().map(|c| c.app.beacons_used).sum()
        };
        assert!(used(&jammed) < used(&clean));
    }

    #[test]
    fn scenario_level_jammers_install_at_build_time() {
        let mut scenario = TrafficScenario::paper_default();
        scenario.total_sim_time = SimTime::from_secs(8);
        scenario.jammers.push(JammerSpec {
            pos_x_m: 560.0,
            pos_y_m: 10.0,
            period: SimDuration::from_micros(300),
            payload_bytes: 200,
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(8),
        });
        let mut w = World::new(&scenario, &CommModel::paper_default(), 1).unwrap();
        w.run_to_end();
        let log = w.into_log();
        assert!(
            log.channel.lost_snir > 10,
            "scenario jammer active: {:?}",
            log.channel
        );
    }

    #[test]
    fn shadowing_model_builds_and_runs() {
        let mut comm = CommModel::paper_default();
        comm.wireless_model = WirelessModelKind::LogNormalShadowing;
        let mut scenario = TrafficScenario::paper_default();
        scenario.total_sim_time = SimTime::from_secs(5);
        let mut w = World::new(&scenario, &comm, 1).unwrap();
        assert_eq!(w.medium().pathloss_name(), "LogNormalShadowing");
        w.run_to_end();
        let log = w.into_log();
        // At platooning distances shadowing rarely kills frames, but the
        // stack must run and deliver beacons.
        assert!(log.channel.received > 100);
    }

    #[test]
    fn jammer_window_is_respected() {
        let mut scenario = TrafficScenario::paper_default();
        scenario.total_sim_time = SimTime::from_secs(6);
        let mut w = World::new(&scenario, &CommModel::paper_default(), 1).unwrap();
        w.add_jammer(JammerSpec {
            pos_x_m: 490.0,
            pos_y_m: 10.0,
            period: SimDuration::from_millis(1),
            payload_bytes: 200,
            start: SimTime::from_secs(2),
            end: SimTime::from_secs(3),
        });
        w.run_until(SimTime::from_secs(2) - SimDuration::from_millis(1));
        let before = w.medium().stats().lost_snir;
        assert_eq!(before, 0);
        w.run_to_end();
        let log = w.into_log();
        // ~1 s of jamming at 1 kHz with ~600 us frames: plenty of losses,
        // but bounded (the jammer stopped at t=3).
        assert!(log.channel.lost_snir > 0);
    }

    #[test]
    fn safety_monitor_intervenes_under_dos() {
        use crate::attack::{AttackModelKind, AttackSpec};
        let attack = AttackSpec {
            model: AttackModelKind::Dos,
            value: 60.0,
            targets: vec![2].into(),
            start: SimTime::from_secs(17),
            end: SimTime::from_secs(60),
        };
        let run = |monitored: bool| {
            let mut scenario = TrafficScenario::paper_default();
            scenario.total_sim_time = SimTime::from_secs(40);
            if monitored {
                scenario.safety_monitor =
                    Some(comfase_platoon::monitor::SafetyMonitorConfig::default());
            }
            let mut w = World::new(&scenario, &CommModel::paper_default(), 42).unwrap();
            w.run_until(attack.start);
            w.install_attack(attack.build_interceptor(0));
            w.run_until(attack.end);
            w.clear_attack();
            w.run_to_end();
            let interventions = w.monitor_interventions(2);
            (w.into_log(), interventions)
        };
        let (unprotected, none) = run(false);
        let (protected, interventions) = run(true);
        assert_eq!(none, None);
        assert!(unprotected.has_collision(), "paper behaviour: DoS collides");
        assert!(interventions.unwrap() > 0, "monitor must have intervened");
        // The monitor prevents the pile-up entirely or at least reduces it.
        assert!(
            protected.trace.collisions.len() < unprotected.trace.collisions.len()
                || !protected.has_collision(),
            "monitor must reduce collisions: {} vs {}",
            protected.trace.collisions.len(),
            unprotected.trace.collisions.len()
        );
    }

    #[test]
    fn budget_breach_faults_the_run_and_is_sticky() {
        let mut w = build();
        w.set_budget(EventBudget {
            max_delivered: Some(500),
            max_sim_time: None,
        });
        w.run_to_end();
        let fault = w.fault().expect("500 events cannot cover 60 s").clone();
        assert_eq!(fault.kind, RunFaultKind::BudgetExceeded);
        assert!(fault.detail.contains("event budget"), "{fault:?}");
        assert!(w.now() < SimTime::from_secs(60), "run stopped early");
        assert!(matches!(fault.to_error(), ComfaseError::BudgetExceeded(_)));
        // Sticky: running again moves neither the clock nor the fault.
        let frozen = w.now();
        w.run_to_end();
        assert_eq!(w.now(), frozen);
        assert_eq!(w.fault(), Some(&fault));
    }

    #[test]
    fn nan_state_faults_the_run_as_numeric_divergence() {
        let mut w = build();
        w.run_until(SimTime::from_secs(1));
        w.traffic
            .vehicle_mut(VehicleId(2))
            .expect("vehicle 2 exists")
            .state
            .speed_mps = f64::NAN;
        w.run_until(SimTime::from_secs(5));
        let fault = w.fault().expect("NaN kinematics must fault the run");
        assert_eq!(fault.kind, RunFaultKind::NumericDiverged);
        assert!(fault.detail.contains("non-finite"), "{fault:?}");
        assert!(matches!(fault.to_error(), ComfaseError::NumericDiverged(_)));
        assert!(w.now() < SimTime::from_secs(5), "run stopped early");
    }

    #[test]
    fn leader_follows_sinusoidal_profile() {
        let mut w = build();
        w.run_until(SimTime::from_secs(25));
        let log = w.into_log();
        let leader = log.trace.vehicle(VehicleId(1)).unwrap();
        // Speed oscillates around the 27.78 m/s base.
        let max = leader.speed.max_value().unwrap();
        let min = leader
            .speed
            .window(SimTime::from_secs(5), SimTime::from_secs(25))
            .map(|(_, v)| v)
            .fold(f64::INFINITY, f64::min);
        assert!(max > 28.5, "max speed {max}");
        assert!(min < 27.0, "min speed {min}");
    }
}
