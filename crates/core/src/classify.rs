//! Result classification — Step 4 of the ComFASE execution flow.
//!
//! Each attacked run is compared against the golden run and placed in one
//! of the paper's four categories (§IV-B), using *deceleration profiles*
//! and *collision incidents* as classification parameters:
//!
//! - **Non-effective** — identical speed profiles to the golden run;
//! - **Negligible** — behaviour changed, but the maximum deceleration does
//!   not exceed the golden run's maximum (1.53 m/s² in the paper);
//! - **Benign** — maximum deceleration above the golden maximum but within
//!   the maximum comfortable braking rate (5 m/s²);
//! - **Severe** — a collision occurred, or a vehicle performed emergency
//!   braking (deceleration above 5 m/s²).

use serde::{Deserialize, Serialize};

use comfase_traffic::collision::Collision;
use comfase_traffic::trace::TrafficTrace;
use comfase_traffic::vehicle::VehicleId;

/// The paper's result classes, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Classification {
    /// No effect on any vehicle's behaviour.
    NonEffective,
    /// Behaviour changed within the golden run's deceleration envelope.
    Negligible,
    /// Deceleration above golden maximum but comfortable (≤ 5 m/s²).
    Benign,
    /// Collision or emergency braking (> 5 m/s²).
    Severe,
}

impl std::fmt::Display for Classification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Classification::NonEffective => "non-effective",
            Classification::Negligible => "negligible",
            Classification::Benign => "benign",
            Classification::Severe => "severe",
        };
        f.write_str(s)
    }
}

/// The paper's `classificationParameters`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassificationParams {
    /// Maximum deceleration observed in the golden run, m/s² (the
    /// Negligible/Benign boundary; 1.53 in the paper).
    pub golden_max_decel_mps2: f64,
    /// Maximum comfortable braking rate, m/s² (the Benign/Severe boundary;
    /// 5 in the paper, from rear-end crash studies).
    pub comfortable_decel_mps2: f64,
    /// Speed profiles within this tolerance count as "identical"
    /// (Non-effective), m/s.
    pub identical_speed_eps_mps: f64,
}

impl ClassificationParams {
    /// Derives the parameters from a golden run, as the paper does
    /// ("1.53 m/s², which is the maximum deceleration recorded in the
    /// golden run").
    pub fn from_golden(golden: &TrafficTrace) -> Self {
        ClassificationParams {
            golden_max_decel_mps2: golden.max_decel_overall(),
            comfortable_decel_mps2: 5.0,
            identical_speed_eps_mps: 1e-3,
        }
    }
}

/// Classification result of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Assigned class.
    pub class: Classification,
    /// Maximum deceleration observed across all vehicles, m/s².
    pub max_decel_mps2: f64,
    /// Largest speed deviation from the golden run across vehicles, m/s.
    pub max_speed_deviation_mps: f64,
    /// First collision incident, if any (its collider is "the vehicle
    /// responsible", SUMO semantics).
    pub first_collision: Option<Collision>,
    /// Total collision incidents.
    pub nr_collisions: usize,
}

impl Verdict {
    /// The vehicle responsible for the (first) collision, if any.
    pub fn collider(&self) -> Option<VehicleId> {
        self.first_collision.as_ref().map(|c| c.collider)
    }
}

/// Classifies an attacked run against the golden run
/// (`Compare(GoldenRunLog, AttackCampaignLog[exp], classificationParameters)`).
pub fn classify(
    golden: &TrafficTrace,
    run: &TrafficTrace,
    params: &ClassificationParams,
) -> Verdict {
    let max_decel = run.max_decel_overall();
    let max_dev = golden
        .iter()
        .map(|(id, gtrace)| match run.vehicle(id) {
            Some(rtrace) => rtrace.max_speed_deviation(gtrace),
            None => f64::INFINITY, // vehicle disappeared: maximally deviant
        })
        .fold(0.0f64, f64::max);
    let first_collision = run.first_collision().cloned();
    let nr_collisions = run.collisions.len();

    // Non-effective first: "the injected attack has no effects on the
    // behaviour of the vehicles (identical speed profiles as in the golden
    // run)". An unchanged run is non-effective even in scenarios whose
    // golden run itself brakes hard.
    let unchanged =
        max_dev <= params.identical_speed_eps_mps && nr_collisions == golden.collisions.len();
    let class = if unchanged {
        Classification::NonEffective
    } else if first_collision.is_some() || max_decel > params.comfortable_decel_mps2 {
        Classification::Severe
    } else if max_decel <= params.golden_max_decel_mps2 {
        Classification::Negligible
    } else {
        Classification::Benign
    };

    Verdict {
        class,
        max_decel_mps2: max_decel,
        max_speed_deviation_mps: max_dev,
        first_collision,
        nr_collisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comfase_des::time::SimTime;
    use comfase_traffic::network::LaneIndex;
    use comfase_traffic::vehicle::{Vehicle, VehicleSpec};

    fn veh(id: u32, speed: f64, accel: f64) -> Vehicle {
        let mut v = Vehicle::new(
            VehicleId(id),
            VehicleSpec::paper_platooning_car(),
            100.0,
            LaneIndex(0),
            speed,
        );
        v.state.accel_mps2 = accel;
        v
    }

    /// Builds a trace with the given per-step (speed, accel) samples.
    fn trace(samples: &[(f64, f64)]) -> TrafficTrace {
        let mut t = TrafficTrace::new();
        for (i, &(speed, accel)) in samples.iter().enumerate() {
            t.record_step(SimTime::from_millis(10 * i as i64), &[veh(1, speed, accel)]);
        }
        t
    }

    fn golden() -> TrafficTrace {
        trace(&[(27.0, 0.0), (27.2, 1.0), (27.0, -1.53), (27.0, 0.0)])
    }

    fn params() -> ClassificationParams {
        ClassificationParams::from_golden(&golden())
    }

    #[test]
    fn params_derive_from_golden() {
        let p = params();
        assert!((p.golden_max_decel_mps2 - 1.53).abs() < 1e-12);
        assert_eq!(p.comfortable_decel_mps2, 5.0);
    }

    #[test]
    fn identical_run_is_non_effective() {
        let v = classify(&golden(), &golden(), &params());
        assert_eq!(v.class, Classification::NonEffective);
        assert_eq!(v.max_speed_deviation_mps, 0.0);
        assert!(v.collider().is_none());
    }

    #[test]
    fn small_change_within_golden_envelope_is_negligible() {
        let run = trace(&[(27.0, 0.0), (27.5, 1.0), (27.0, -1.4), (27.0, 0.0)]);
        let v = classify(&golden(), &run, &params());
        assert_eq!(v.class, Classification::Negligible);
    }

    #[test]
    fn moderate_braking_is_benign() {
        let run = trace(&[(27.0, 0.0), (26.0, -3.0), (25.0, -4.9), (25.0, 0.0)]);
        let v = classify(&golden(), &run, &params());
        assert_eq!(v.class, Classification::Benign);
        assert!((v.max_decel_mps2 - 4.9).abs() < 1e-12);
    }

    #[test]
    fn emergency_braking_is_severe() {
        let run = trace(&[(27.0, 0.0), (25.0, -6.5), (23.0, -2.0)]);
        let v = classify(&golden(), &run, &params());
        assert_eq!(v.class, Classification::Severe);
        assert!(v.first_collision.is_none(), "severe by deceleration alone");
    }

    #[test]
    fn collision_is_severe_even_with_gentle_deceleration() {
        let mut run = trace(&[(27.0, 0.0), (27.0, -0.5)]);
        run.record_collisions(&[comfase_traffic::collision::Collision {
            time: SimTime::from_secs(20),
            collider: VehicleId(2),
            victim: VehicleId(1),
            lane: LaneIndex(0),
            pos_m: 500.0,
            collider_speed_mps: 28.0,
            victim_speed_mps: 26.0,
            overlap_m: 0.1,
        }]);
        let v = classify(&golden(), &run, &params());
        assert_eq!(v.class, Classification::Severe);
        assert_eq!(v.collider(), Some(VehicleId(2)));
        assert_eq!(v.nr_collisions, 1);
    }

    #[test]
    fn missing_vehicle_counts_as_deviation() {
        let run = TrafficTrace::new(); // vehicle 1 never recorded
        let v = classify(&golden(), &run, &params());
        assert!(v.max_speed_deviation_mps.is_infinite());
        assert_ne!(v.class, Classification::NonEffective);
    }

    #[test]
    fn boundary_values_follow_paper_inequalities() {
        // decel exactly at golden max -> negligible (<=);
        let run = trace(&[(27.0, 0.0), (26.9, -1.53)]);
        assert_eq!(
            classify(&golden(), &run, &params()).class,
            Classification::Negligible
        );
        // decel exactly 5 -> benign (<=);
        let run = trace(&[(27.0, 0.0), (26.0, -5.0)]);
        assert_eq!(
            classify(&golden(), &run, &params()).class,
            Classification::Benign
        );
        // just above 5 -> severe.
        let run = trace(&[(27.0, 0.0), (26.0, -5.01)]);
        assert_eq!(
            classify(&golden(), &run, &params()).class,
            Classification::Severe
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Classification::NonEffective.to_string(), "non-effective");
        assert_eq!(Classification::Severe.to_string(), "severe");
    }

    #[test]
    fn severity_ordering() {
        assert!(Classification::NonEffective < Classification::Negligible);
        assert!(Classification::Negligible < Classification::Benign);
        assert!(Classification::Benign < Classification::Severe);
    }
}
