//! Plain-text rendering of the paper's tables and figures.
//!
//! Every artefact of the evaluation section can be regenerated as a text
//! table (rows/series identical in structure to the paper's figures); the
//! bench crate's `repro` binary prints these.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::analysis::{ClassCounts, ColliderSplit, MillisKey};
use crate::attack::{AttackModelKind, FalsifiedField};
use crate::config::AttackCampaignSetup;
use crate::log::RunLog;
use comfase_traffic::vehicle::VehicleId;

/// Renders Table I: attack types and the simulation parameters modelling
/// them.
pub fn render_table1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table I: Attack types and simulation parameters for modelling the attacks"
    );
    let _ = writeln!(
        out,
        "{:<22} | {:<22} | Real-world example",
        "Attack type", "Target parameter"
    );
    let _ = writeln!(out, "{}", "-".repeat(100));
    for kind in [
        AttackModelKind::Delay,
        AttackModelKind::Dos,
        AttackModelKind::Drop,
        AttackModelKind::Falsify(FalsifiedField::Position),
        AttackModelKind::Falsify(FalsifiedField::Speed),
        AttackModelKind::Falsify(FalsifiedField::Acceleration),
    ] {
        let _ = writeln!(
            out,
            "{:<22} | {:<22} | {}",
            kind.name(),
            kind.target_parameter(),
            kind.real_world_example()
        );
    }
    out
}

/// Renders Table II: the parameter values used in a campaign.
pub fn render_table2(delay: &AttackCampaignSetup, dos: &AttackCampaignSetup) -> String {
    let fmt_vec = |v: &[f64]| -> String {
        if v.len() <= 4 {
            format!("{v:?}")
        } else {
            format!("{:.1} to {:.1} ({} values)", v[0], v[v.len() - 1], v.len())
        }
    };
    let mut out = String::new();
    let _ = writeln!(out, "Table II: Parameter values used in experiments");
    let _ = writeln!(
        out,
        "{:<12} | {:<28} | {:<28} | {:<28}",
        "Attack type", "PD valueRange (s)", "attackStartTimes (s)", "attack durations (s)"
    );
    let _ = writeln!(out, "{}", "-".repeat(104));
    for (name, setup) in [("Delay", delay), ("DoS", dos)] {
        let durations = if setup.attack_durations_s.iter().any(|d| !d.is_finite()) {
            "until totalSimTime".to_owned()
        } else {
            fmt_vec(&setup.attack_durations_s)
        };
        let _ = writeln!(
            out,
            "{:<12} | {:<28} | {:<28} | {:<28}",
            name,
            fmt_vec(&setup.attack_values),
            fmt_vec(&setup.attack_starts_s),
            durations
        );
    }
    out
}

/// Renders Fig. 4: speed and acceleration profiles of the platoon vehicles
/// in the golden run, one sample per `sample_every_s`.
pub fn render_fig4(golden: &RunLog, sample_every_s: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 4: Golden-run speed and acceleration profiles");
    let ids = golden.trace.vehicle_ids();
    let mut header = format!("{:>6}", "t(s)");
    for id in &ids {
        let _ = write!(
            header,
            " | {:>9} {:>9}",
            format!("v{}(m/s)", id.0),
            format!("a{}", id.0)
        );
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{}", "-".repeat(header.len()));
    let horizon = golden.final_time.as_secs_f64();
    let mut t = 0.0;
    while t <= horizon + 1e-9 {
        let st = comfase_des::time::SimTime::from_secs_f64(t);
        let mut row = format!("{t:>6.1}");
        for id in &ids {
            let tr = golden.trace.vehicle(*id).expect("recorded vehicle");
            let v = tr.speed.sample_at(st).unwrap_or(f64::NAN);
            let a = tr.accel.sample_at(st).unwrap_or(f64::NAN);
            let _ = write!(row, " | {v:>9.3} {a:>9.3}");
        }
        let _ = writeln!(out, "{row}");
        t += sample_every_s;
    }
    out
}

fn render_class_histogram(
    title: &str,
    x_label: &str,
    map: &BTreeMap<MillisKey, ClassCounts>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>10} | {:>13} | {:>10} | {:>7} | {:>7} | {:>6}",
        x_label, "non-effective", "negligible", "benign", "severe", "total"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    for (key, counts) in map {
        let _ = writeln!(
            out,
            "{:>10.1} | {:>13} | {:>10} | {:>7} | {:>7} | {:>6}",
            *key as f64 / 1000.0,
            counts.non_effective,
            counts.negligible,
            counts.benign,
            counts.severe,
            counts.total()
        );
    }
    out
}

/// Renders Fig. 5: classification w.r.t. attack duration.
pub fn render_fig5(map: &BTreeMap<MillisKey, ClassCounts>) -> String {
    render_class_histogram(
        "Fig. 5: Classification of results w.r.t. attack duration",
        "dur(s)",
        map,
    )
}

/// Renders Fig. 6: classification w.r.t. propagation delay value.
pub fn render_fig6(map: &BTreeMap<MillisKey, ClassCounts>) -> String {
    render_class_histogram(
        "Fig. 6: Classification of results w.r.t. propagation delay value",
        "PD(s)",
        map,
    )
}

/// Renders Fig. 7: classification w.r.t. attack start time.
pub fn render_fig7(map: &BTreeMap<MillisKey, ClassCounts>) -> String {
    render_class_histogram(
        "Fig. 7: Classification of results w.r.t. attack start time",
        "start(s)",
        map,
    )
}

/// Renders the overall campaign summary (§IV-C totals).
pub fn render_summary(total: &ClassCounts) -> String {
    format!(
        "Experiments: {} total -> {} severe, {} benign, {} negligible, {} non-effective\n",
        total.total(),
        total.severe,
        total.benign,
        total.negligible,
        total.non_effective
    )
}

/// Renders the collider attribution (§IV-C.1 / §IV-C.2).
pub fn render_collider_split(split: &ColliderSplit) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Collider attribution over {} collision incidents:",
        split.total_collisions()
    );
    for (vehicle, count) in &split.per_vehicle {
        let _ = writeln!(
            out,
            "  {}: {:>5} incidents ({:.1}%)",
            VehicleId(*vehicle),
            count,
            split.percentage(*vehicle)
        );
    }
    if split.severe_without_collision > 0 {
        let _ = writeln!(
            out,
            "  (+{} severe cases from emergency braking without collision)",
            split.severe_without_collision
        );
    }
    out
}

/// Renders the §IV-C.2 DoS band table: collider per attack start time.
pub fn render_dos_bands(map: &BTreeMap<MillisKey, Option<u32>>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "DoS: collider vehicle per attack start time");
    let _ = writeln!(out, "{:>9} | collider", "start(s)");
    let _ = writeln!(out, "{}", "-".repeat(24));
    for (key, collider) in map {
        let c = collider.map_or("none".to_owned(), |v| format!("veh.{v}"));
        let _ = writeln!(out, "{:>9.1} | {}", *key as f64 / 1000.0, c);
    }
    out
}

/// Renders the start-time × PD-value heatmap of severe counts — the
/// "designing future experiments" view of §IV-C.3: which combinations of
/// cycle phase and delay magnitude are dangerous.
pub fn render_heatmap(map: &BTreeMap<(MillisKey, MillisKey), ClassCounts>) -> String {
    let mut starts: Vec<MillisKey> = map.keys().map(|(s, _)| *s).collect();
    starts.sort_unstable();
    starts.dedup();
    let mut values: Vec<MillisKey> = map.keys().map(|(_, v)| *v).collect();
    values.sort_unstable();
    values.dedup();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Severe-count heatmap: rows = attack start (s), cols = PD value (s)"
    );
    let mut header = format!("{:>8}", "start\\PD");
    for v in &values {
        let _ = write!(header, " {:>5.1}", *v as f64 / 1000.0);
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{}", "-".repeat(header.len()));
    for s in &starts {
        let mut row = format!("{:>8.1}", *s as f64 / 1000.0);
        for v in &values {
            match map.get(&(*s, *v)) {
                Some(c) => {
                    let _ = write!(row, " {:>5}", c.severe);
                }
                None => {
                    let _ = write!(row, " {:>5}", "-");
                }
            }
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Renders the saturation analysis of §IV-C.3 for a severe-count curve.
pub fn render_saturation(
    what: &str,
    map: &BTreeMap<MillisKey, ClassCounts>,
    tolerance: f64,
) -> String {
    match crate::analysis::saturation_point(map, tolerance) {
        Some(k) => format!(
            "severe counts saturate from {} = {:.1} s on (within {:.0}% of the bucket size); \
             results for larger values can be estimated from smaller ones (paper §IV-C.3)\n",
            what,
            k as f64 / 1000.0,
            tolerance * 100.0
        ),
        None => format!("severe counts do not saturate over the swept {what} range\n"),
    }
}

/// CSV rendering of a classification histogram (`x,non_effective,
/// negligible,benign,severe`), for plotting Figs. 5–7 externally.
pub fn class_histogram_csv(x_label: &str, map: &BTreeMap<MillisKey, ClassCounts>) -> String {
    let mut out = format!("{x_label},non_effective,negligible,benign,severe\n");
    for (key, c) in map {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            *key as f64 / 1000.0,
            c.non_effective,
            c.negligible,
            c.benign,
            c.severe
        );
    }
    out
}

/// CSV rendering of the golden run's Fig. 4 series
/// (`t,v1,a1,v2,a2,...`), sampled every `sample_every_s`.
pub fn fig4_csv(golden: &RunLog, sample_every_s: f64) -> String {
    let ids = golden.trace.vehicle_ids();
    let mut out = String::from("t");
    for id in &ids {
        let _ = write!(out, ",v{0},a{0}", id.0);
    }
    out.push('\n');
    let horizon = golden.final_time.as_secs_f64();
    let mut t = 0.0;
    while t <= horizon + 1e-9 {
        let st = comfase_des::time::SimTime::from_secs_f64(t);
        let _ = write!(out, "{t:.2}");
        for id in &ids {
            let tr = golden.trace.vehicle(*id).expect("recorded vehicle");
            let _ = write!(
                out,
                ",{:.4},{:.4}",
                tr.speed.sample_at(st).unwrap_or(f64::NAN),
                tr.accel.sample_at(st).unwrap_or(f64::NAN)
            );
        }
        out.push('\n');
        t += sample_every_s;
    }
    out
}

/// Renders the campaign-wide packet-loss breakdown: where every frame of
/// the sweep ended up, attributed by cause (telemetry-enabled campaigns
/// only — see [`crate::campaign::CampaignResult::metrics`]).
pub fn render_loss_breakdown(metrics: &comfase_obs::CampaignMetrics) -> String {
    let f = &metrics.aggregate.frames;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Packet-loss breakdown over {} experiments:",
        metrics.experiments
    );
    let _ = writeln!(out, "{:<28} | {:>14}", "fate", "links");
    let _ = writeln!(out, "{}", "-".repeat(45));
    let pct = |n: u64| {
        if f.links_planned == 0 {
            0.0
        } else {
            100.0 * n as f64 / f.links_planned as f64
        }
    };
    let mut row = |label: &str, n: u64| {
        let _ = writeln!(out, "{label:<28} | {n:>14} ({:.1}%)", pct(n));
    };
    row("received", f.received);
    row("lost: SNIR (interference)", f.lost_snir);
    row("lost: below sensitivity", f.lost_sensitivity);
    row("lost: receiver inactive", f.rx_inactive);
    row("in flight at end", f.in_flight_at_end);
    let _ = writeln!(out, "{}", "-".repeat(45));
    let _ = writeln!(
        out,
        "{:<28} | {:>14} (100.0%)",
        "links planned", f.links_planned
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "Never planned (pre-channel):");
    let _ = writeln!(
        out,
        "  dropped by interceptor {:>10}   below noise floor {:>10}",
        f.dropped_interceptor, f.below_noise
    );
    let _ = writeln!(
        out,
        "MAC layer: queue-full drops {:>7}   deferrals busy {:>10}   deferrals guard {:>8}",
        f.mac_dropped_queue_full, f.mac_deferrals_busy, f.mac_deferrals_guard
    );
    out
}

/// CSV rendering of the loss breakdown, one row per experiment plus an
/// `aggregate` row.
pub fn loss_breakdown_csv(metrics: &comfase_obs::CampaignMetrics) -> String {
    let mut out = String::from(
        "index,transmissions,links_planned,received,lost_snir,lost_sensitivity,\
         dropped_interceptor,below_noise,rx_inactive,in_flight_at_end,\
         mac_dropped_queue_full,mac_deferrals_busy,mac_deferrals_guard\n",
    );
    let mut row = |label: String, f: &comfase_obs::FrameBreakdown| {
        let _ = writeln!(
            out,
            "{label},{},{},{},{},{},{},{},{},{},{},{},{}",
            f.transmissions,
            f.links_planned,
            f.received,
            f.lost_snir,
            f.lost_sensitivity,
            f.dropped_interceptor,
            f.below_noise,
            f.rx_inactive,
            f.in_flight_at_end,
            f.mac_dropped_queue_full,
            f.mac_deferrals_busy,
            f.mac_deferrals_guard
        );
    };
    for exp in &metrics.per_experiment {
        row(exp.index.to_string(), &exp.frames);
    }
    row(String::from("aggregate"), &metrics.aggregate.frames);
    out
}

/// CSV dump of every experiment record
/// (`index,model,value,start,end,class,max_decel,collider`).
pub fn records_csv(records: &[crate::campaign::ExperimentRecord]) -> String {
    let mut out = String::from("index,model,value,start_s,end_s,class,max_decel,collider\n");
    for r in records {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.4},{}",
            r.index,
            r.spec.model.name(),
            r.spec.value,
            r.spec.start.as_secs_f64(),
            r.spec.end.as_secs_f64(),
            r.verdict.class,
            r.verdict.max_decel_mps2,
            r.verdict
                .collider()
                .map_or(String::from(""), |v| v.0.to_string())
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classification;

    #[test]
    fn table1_lists_all_models() {
        let t = render_table1();
        for name in ["Delay", "DoS", "Drop", "Falsify-Position", "Falsify-Speed"] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
        assert!(t.contains("Propagation delay (PD)"));
    }

    #[test]
    fn table2_summarises_vectors() {
        let t = render_table2(
            &AttackCampaignSetup::paper_delay_campaign(),
            &AttackCampaignSetup::paper_dos_campaign(),
        );
        assert!(t.contains("0.2 to 3.0 (15 values)"), "{t}");
        assert!(t.contains("17.0 to 21.8 (25 values)"), "{t}");
        assert!(t.contains("until totalSimTime"), "{t}");
    }

    #[test]
    fn loss_breakdown_renders_and_exports_csv() {
        let row = |index: usize| comfase_obs::ExperimentMetrics {
            index,
            classification: String::from("Benign"),
            max_decel_mps2: 2.0,
            collisions: 0,
            kernel: comfase_obs::KernelCounters::default(),
            frames: comfase_obs::FrameBreakdown {
                transmissions: 100,
                links_planned: 300,
                received: 250,
                lost_snir: 30,
                lost_sensitivity: 5,
                dropped_interceptor: 12,
                below_noise: 3,
                rx_inactive: 10,
                in_flight_at_end: 5,
                mac_dropped_queue_full: 1,
                mac_deferrals_busy: 7,
                mac_deferrals_guard: 2,
                accounting_underflow: 0,
            },
            counters: Default::default(),
        };
        let metrics = comfase_obs::CampaignMetrics::build(vec![row(0), row(1)], None);

        let text = render_loss_breakdown(&metrics);
        assert!(text.contains("2 experiments"), "{text}");
        assert!(text.contains("lost: SNIR"), "{text}");
        // 500/600 received → 83.3 % of links planned.
        assert!(text.contains("(83.3%)"), "{text}");
        assert!(text.contains("dropped by interceptor         24"), "{text}");

        let csv = loss_breakdown_csv(&metrics);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4, "header + 2 rows + aggregate:\n{csv}");
        assert!(lines[0].starts_with("index,transmissions,links_planned"));
        assert_eq!(lines[1], "0,100,300,250,30,5,12,3,10,5,1,7,2");
        assert_eq!(lines[3], "aggregate,200,600,500,60,10,24,6,20,10,2,14,4");
    }

    #[test]
    fn histograms_render_rows_in_order() {
        let mut map: BTreeMap<MillisKey, ClassCounts> = BTreeMap::new();
        let mut a = ClassCounts::default();
        a.add(Classification::Severe);
        map.insert(2000, a);
        let mut b = ClassCounts::default();
        b.add(Classification::Benign);
        map.insert(1000, b);
        let s = render_fig5(&map);
        let one = s.find("1.0").unwrap();
        let two = s.find("2.0").unwrap();
        assert!(one < two);
        assert!(render_fig6(&map).contains("PD(s)"));
        assert!(render_fig7(&map).contains("start(s)"));
    }

    #[test]
    fn summary_and_split_render() {
        let mut c = ClassCounts::default();
        c.add(Classification::Severe);
        c.add(Classification::Benign);
        let s = render_summary(&c);
        assert!(s.contains("2 total"));
        assert!(s.contains("1 severe"));

        let mut split = ColliderSplit::default();
        split.per_vehicle.insert(2, 3);
        split.per_vehicle.insert(3, 1);
        split.severe_without_collision = 2;
        let s = render_collider_split(&split);
        assert!(s.contains("veh.2"));
        assert!(s.contains("75.0%"));
        assert!(s.contains("+2 severe"));
    }

    #[test]
    fn heatmap_renders_grid() {
        let mut map: BTreeMap<(MillisKey, MillisKey), ClassCounts> = BTreeMap::new();
        let mut a = ClassCounts::default();
        a.add(Classification::Severe);
        a.add(Classification::Severe);
        map.insert((17_000, 200), a);
        let mut b = ClassCounts::default();
        b.add(Classification::Benign);
        map.insert((17_200, 1000), b);
        let s = render_heatmap(&map);
        assert!(s.contains("17.0"), "{s}");
        assert!(s.contains("17.2"), "{s}");
        assert!(s.contains("0.2"), "{s}");
        assert!(s.contains("1.0"), "{s}");
        // Missing cells render as '-'.
        assert!(s.contains('-'), "{s}");
    }

    #[test]
    fn saturation_renders_both_cases() {
        let mut map: BTreeMap<MillisKey, ClassCounts> = BTreeMap::new();
        for (i, sev) in [50usize, 50, 50].into_iter().enumerate() {
            let mut c = ClassCounts::default();
            for _ in 0..sev {
                c.add(Classification::Severe);
            }
            for _ in sev..100 {
                c.add(Classification::Benign);
            }
            map.insert((i as i64 + 1) * 1000, c);
        }
        let s = render_saturation("PD value", &map, 0.1);
        assert!(s.contains("saturate from PD value = 1.0 s"), "{s}");
        // A strictly growing curve does not saturate (except trivially at
        // the last point, which the 0-tolerance check still reports).
        let mut grow: BTreeMap<MillisKey, ClassCounts> = BTreeMap::new();
        for (i, sev) in [0usize, 30, 60].into_iter().enumerate() {
            let mut c = ClassCounts::default();
            for _ in 0..sev {
                c.add(Classification::Severe);
            }
            for _ in sev..100 {
                c.add(Classification::Benign);
            }
            grow.insert((i as i64 + 1) * 1000, c);
        }
        let s = render_saturation("duration", &grow, 0.1);
        assert!(s.contains("saturate from duration = 3.0 s"), "{s}");
    }

    #[test]
    fn csv_histogram_renders() {
        let mut map: BTreeMap<MillisKey, ClassCounts> = BTreeMap::new();
        let mut a = ClassCounts::default();
        a.add(Classification::Severe);
        a.add(Classification::Benign);
        map.insert(1500, a);
        let csv = class_histogram_csv("pd_s", &map);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "pd_s,non_effective,negligible,benign,severe"
        );
        assert_eq!(lines.next().unwrap(), "1.5,0,0,1,1");
    }

    #[test]
    fn csv_records_render() {
        use crate::attack::{AttackModelKind, AttackSpec};
        use crate::campaign::ExperimentRecord;
        use crate::classify::Verdict;
        use comfase_des::time::SimTime;
        let rec = ExperimentRecord {
            index: 3,
            spec: AttackSpec {
                model: AttackModelKind::Delay,
                value: 1.4,
                targets: vec![2].into(),
                start: SimTime::from_secs(17),
                end: SimTime::from_secs(20),
            },
            verdict: Verdict {
                class: Classification::Benign,
                max_decel_mps2: 2.5,
                max_speed_deviation_mps: 0.4,
                first_collision: None,
                nr_collisions: 0,
            },
        };
        let csv = records_csv(&[rec]);
        assert!(csv.contains("3,Delay,1.4,17,20,benign,2.5000,"), "{csv}");
    }

    #[test]
    fn dos_bands_render() {
        let mut map = BTreeMap::new();
        map.insert(17_000, Some(2));
        map.insert(17_600, None);
        let s = render_dos_bands(&map);
        assert!(s.contains("veh.2"));
        assert!(s.contains("none"));
    }
}
