//! Campaign result analysis (paper §IV-C).
//!
//! Aggregations that regenerate the paper's evaluation artefacts:
//!
//! - classification counts by attack **duration** (Fig. 5);
//! - classification counts by **propagation delay value** (Fig. 6);
//! - classification counts by **attack start time** (Fig. 7);
//! - **collider attribution** among severe cases — which vehicle is
//!   responsible for the collision (§IV-C.1 / §IV-C.2), confirming that
//!   attacking one vehicle endangers the surrounding traffic.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::campaign::ExperimentRecord;
use crate::classify::Classification;

/// Classification histogram for one bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Non-effective experiments.
    pub non_effective: usize,
    /// Negligible experiments.
    pub negligible: usize,
    /// Benign experiments.
    pub benign: usize,
    /// Severe experiments.
    pub severe: usize,
}

impl ClassCounts {
    /// Adds one classified experiment.
    pub fn add(&mut self, class: Classification) {
        match class {
            Classification::NonEffective => self.non_effective += 1,
            Classification::Negligible => self.negligible += 1,
            Classification::Benign => self.benign += 1,
            Classification::Severe => self.severe += 1,
        }
    }

    /// Total experiments in the bucket.
    pub fn total(&self) -> usize {
        self.non_effective + self.negligible + self.benign + self.severe
    }

    /// Count for one class.
    pub fn get(&self, class: Classification) -> usize {
        match class {
            Classification::NonEffective => self.non_effective,
            Classification::Negligible => self.negligible,
            Classification::Benign => self.benign,
            Classification::Severe => self.severe,
        }
    }
}

/// A key in milliseconds (durations, PD values and start times are all
/// sub-second-resolution times; integer keys keep maps ordered and exact).
pub type MillisKey = i64;

fn to_millis(seconds: f64) -> MillisKey {
    (seconds * 1000.0).round() as MillisKey
}

/// Overall classification counts (the §IV-C.1 totals).
pub fn summary(records: &[ExperimentRecord]) -> ClassCounts {
    let mut c = ClassCounts::default();
    for r in records {
        c.add(r.verdict.class);
    }
    c
}

/// Fig. 5: classification w.r.t. the duration the attack is active,
/// keyed by duration in milliseconds.
pub fn by_duration(records: &[ExperimentRecord]) -> BTreeMap<MillisKey, ClassCounts> {
    let mut map: BTreeMap<MillisKey, ClassCounts> = BTreeMap::new();
    for r in records {
        let key = to_millis(r.spec.duration().as_secs_f64());
        map.entry(key).or_default().add(r.verdict.class);
    }
    map
}

/// Fig. 6: classification w.r.t. the propagation delay value, keyed by the
/// attack value in milliseconds.
pub fn by_value(records: &[ExperimentRecord]) -> BTreeMap<MillisKey, ClassCounts> {
    let mut map: BTreeMap<MillisKey, ClassCounts> = BTreeMap::new();
    for r in records {
        map.entry(to_millis(r.spec.value))
            .or_default()
            .add(r.verdict.class);
    }
    map
}

/// Fig. 7: classification w.r.t. the attack start time, keyed by the start
/// time in milliseconds.
pub fn by_start_time(records: &[ExperimentRecord]) -> BTreeMap<MillisKey, ClassCounts> {
    let mut map: BTreeMap<MillisKey, ClassCounts> = BTreeMap::new();
    for r in records {
        let key = to_millis(r.spec.start.as_secs_f64());
        map.entry(key).or_default().add(r.verdict.class);
    }
    map
}

/// Collider attribution: for every severe case with a collision, which
/// vehicle was responsible (the rear vehicle of the first incident).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ColliderSplit {
    /// Collision count per responsible vehicle.
    pub per_vehicle: BTreeMap<u32, usize>,
    /// Severe cases without a collision (emergency braking only).
    pub severe_without_collision: usize,
}

impl ColliderSplit {
    /// Total severe cases with a collision.
    pub fn total_collisions(&self) -> usize {
        self.per_vehicle.values().sum::<usize>()
    }

    /// Percentage of collision incidents caused by `vehicle`.
    pub fn percentage(&self, vehicle: u32) -> f64 {
        let total = self.total_collisions();
        if total == 0 {
            0.0
        } else {
            100.0 * *self.per_vehicle.get(&vehicle).unwrap_or(&0) as f64 / total as f64
        }
    }
}

/// Computes the collider attribution among severe cases.
pub fn collider_split(records: &[ExperimentRecord]) -> ColliderSplit {
    let mut split = ColliderSplit::default();
    for r in records
        .iter()
        .filter(|r| r.verdict.class == Classification::Severe)
    {
        match r.verdict.collider() {
            Some(v) => *split.per_vehicle.entry(v.0).or_default() += 1,
            None => split.severe_without_collision += 1,
        }
    }
    split
}

/// Severity grade of one experiment — the paper grades severity "based on
/// the magnitude of vehicle decelerations and collision incidents"
/// (§III-A Step 4). Higher is worse; collisions additionally carry the
/// impact speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SeverityGrade {
    /// No behavioural change at all.
    Unaffected,
    /// Behaviour changed within the golden envelope.
    Disturbed,
    /// Uncomfortable braking (above golden max, at most 5 m/s²).
    HardBraking {
        /// Peak deceleration, m/s².
        decel_mps2: f64,
    },
    /// Emergency braking (above 5 m/s²) without collision.
    EmergencyBraking {
        /// Peak deceleration, m/s².
        decel_mps2: f64,
    },
    /// A collision occurred.
    Collision {
        /// Relative speed at impact, m/s (collider minus victim).
        impact_speed_mps: f64,
    },
}

impl SeverityGrade {
    /// Ordinal rank (0 = unaffected … 4 = collision).
    pub fn rank(&self) -> u8 {
        match self {
            SeverityGrade::Unaffected => 0,
            SeverityGrade::Disturbed => 1,
            SeverityGrade::HardBraking { .. } => 2,
            SeverityGrade::EmergencyBraking { .. } => 3,
            SeverityGrade::Collision { .. } => 4,
        }
    }
}

/// Grades one verdict (paper Step 4's severity grading).
pub fn severity_grade(verdict: &crate::classify::Verdict) -> SeverityGrade {
    if let Some(c) = &verdict.first_collision {
        return SeverityGrade::Collision {
            impact_speed_mps: c.collider_speed_mps - c.victim_speed_mps,
        };
    }
    match verdict.class {
        Classification::NonEffective => SeverityGrade::Unaffected,
        Classification::Negligible => SeverityGrade::Disturbed,
        Classification::Benign => SeverityGrade::HardBraking {
            decel_mps2: verdict.max_decel_mps2,
        },
        Classification::Severe => SeverityGrade::EmergencyBraking {
            decel_mps2: verdict.max_decel_mps2,
        },
    }
}

/// Finds the saturation point of a severe-count curve: the smallest key
/// beyond which the severe count never deviates from its value there by
/// more than `tolerance` (as a fraction of the bucket size). The paper's
/// discussion (§IV-C.3) uses exactly this to argue that results for small
/// PD values/durations predict larger ones.
pub fn saturation_point(
    map: &BTreeMap<MillisKey, ClassCounts>,
    tolerance: f64,
) -> Option<MillisKey> {
    let keys: Vec<MillisKey> = map.keys().copied().collect();
    'candidate: for (i, &k) in keys.iter().enumerate() {
        let base = map[&k];
        if base.total() == 0 {
            continue;
        }
        let tol = (tolerance * base.total() as f64).ceil() as isize;
        for &later in &keys[i..] {
            let diff = map[&later].severe as isize - base.severe as isize;
            if diff.abs() > tol {
                continue 'candidate;
            }
        }
        return Some(k);
    }
    None
}

/// Two-dimensional classification: (attack start, attack value) →
/// counts. Supports heatmap views of where in the driving cycle each PD
/// value becomes dangerous.
pub fn by_start_and_value(
    records: &[ExperimentRecord],
) -> BTreeMap<(MillisKey, MillisKey), ClassCounts> {
    let mut map: BTreeMap<(MillisKey, MillisKey), ClassCounts> = BTreeMap::new();
    for r in records {
        let key = (
            to_millis(r.spec.start.as_secs_f64()),
            to_millis(r.spec.value),
        );
        map.entry(key).or_default().add(r.verdict.class);
    }
    map
}

/// Statistics of the time between attack initiation and the first
/// collision, across all colliding experiments — the "attack lead time" a
/// defender has to react.
pub fn collision_latency_stats(records: &[ExperimentRecord]) -> comfase_des::stats::RunningStats {
    let mut stats = comfase_des::stats::RunningStats::new();
    for r in records {
        if let Some(c) = &r.verdict.first_collision {
            stats.record((c.time - r.spec.start).as_secs_f64());
        }
    }
    stats
}

/// §IV-C.2: per attack start time, the vehicle responsible for the
/// collision (if any) — the paper's start-time-band observation for DoS.
pub fn colliders_by_start(records: &[ExperimentRecord]) -> BTreeMap<MillisKey, Option<u32>> {
    records
        .iter()
        .map(|r| {
            (
                to_millis(r.spec.start.as_secs_f64()),
                r.verdict.collider().map(|v| v.0),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{AttackModelKind, AttackSpec};
    use crate::classify::Verdict;
    use comfase_des::time::SimTime;
    use comfase_traffic::collision::Collision;
    use comfase_traffic::network::LaneIndex;
    use comfase_traffic::vehicle::VehicleId;

    fn record(
        index: usize,
        value: f64,
        start: f64,
        dur: f64,
        class: Classification,
        collider: Option<u32>,
    ) -> ExperimentRecord {
        let first_collision = collider.map(|v| Collision {
            time: SimTime::from_secs_f64(start + 1.0),
            collider: VehicleId(v),
            victim: VehicleId(v - 1),
            lane: LaneIndex(0),
            pos_m: 0.0,
            collider_speed_mps: 28.0,
            victim_speed_mps: 27.0,
            overlap_m: 0.1,
        });
        ExperimentRecord {
            index,
            spec: AttackSpec {
                model: AttackModelKind::Delay,
                value,
                targets: vec![2].into(),
                start: SimTime::from_secs_f64(start),
                end: SimTime::from_secs_f64(start + dur),
            },
            verdict: Verdict {
                class,
                max_decel_mps2: 2.0,
                max_speed_deviation_mps: 0.5,
                nr_collisions: usize::from(first_collision.is_some()),
                first_collision,
            },
        }
    }

    fn sample() -> Vec<ExperimentRecord> {
        vec![
            record(0, 0.2, 17.0, 1.0, Classification::Negligible, None),
            record(1, 0.2, 17.0, 5.0, Classification::Benign, None),
            record(2, 1.0, 17.0, 5.0, Classification::Severe, Some(2)),
            record(3, 1.0, 18.0, 5.0, Classification::Severe, Some(3)),
            record(4, 1.0, 18.0, 1.0, Classification::Benign, None),
            record(5, 3.0, 18.0, 5.0, Classification::Severe, Some(2)),
            record(6, 3.0, 19.0, 1.0, Classification::NonEffective, None),
            record(7, 3.0, 19.0, 5.0, Classification::Severe, None),
        ]
    }

    #[test]
    fn class_counts_accumulate() {
        let s = summary(&sample());
        assert_eq!(s.non_effective, 1);
        assert_eq!(s.negligible, 1);
        assert_eq!(s.benign, 2);
        assert_eq!(s.severe, 4);
        assert_eq!(s.total(), 8);
        assert_eq!(s.get(Classification::Severe), 4);
    }

    #[test]
    fn fig5_groups_by_duration() {
        let m = by_duration(&sample());
        assert_eq!(m.len(), 2);
        assert_eq!(m[&1000].total(), 3);
        assert_eq!(m[&5000].severe, 4);
        assert_eq!(m[&5000].total(), 5);
    }

    #[test]
    fn fig6_groups_by_value() {
        let m = by_value(&sample());
        assert_eq!(m.len(), 3);
        assert_eq!(m[&200].severe, 0);
        assert_eq!(m[&1000].severe, 2);
        assert_eq!(m[&3000].severe, 2);
    }

    #[test]
    fn fig7_groups_by_start() {
        let m = by_start_time(&sample());
        assert_eq!(m.len(), 3);
        assert_eq!(m[&17_000].total(), 3);
        assert_eq!(m[&18_000].severe, 2);
        assert_eq!(m[&19_000].severe, 1);
    }

    #[test]
    fn collider_split_counts_and_percentages() {
        let split = collider_split(&sample());
        assert_eq!(split.per_vehicle[&2], 2);
        assert_eq!(split.per_vehicle[&3], 1);
        assert_eq!(split.total_collisions(), 3);
        assert_eq!(split.severe_without_collision, 1);
        assert!((split.percentage(2) - 66.666).abs() < 0.01);
        assert!((split.percentage(3) - 33.333).abs() < 0.01);
        assert_eq!(split.percentage(4), 0.0);
    }

    #[test]
    fn empty_split_has_zero_percentages() {
        let split = collider_split(&[]);
        assert_eq!(split.total_collisions(), 0);
        assert_eq!(split.percentage(2), 0.0);
    }

    #[test]
    fn collision_latency_measures_attack_to_impact() {
        let r = sample();
        let stats = collision_latency_stats(&r);
        // Three colliding records, each with the collision 1 s after the
        // attack start (see `record`).
        assert_eq!(stats.count(), 3);
        assert!((stats.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn severity_grades_rank_correctly() {
        let r = sample();
        let grades: Vec<SeverityGrade> = r.iter().map(|x| severity_grade(&x.verdict)).collect();
        assert_eq!(grades[6], SeverityGrade::Unaffected);
        assert_eq!(grades[0], SeverityGrade::Disturbed);
        assert!(matches!(grades[1], SeverityGrade::HardBraking { .. }));
        // record 7 is severe without collision -> emergency braking.
        assert!(matches!(grades[7], SeverityGrade::EmergencyBraking { .. }));
        match grades[2] {
            SeverityGrade::Collision { impact_speed_mps } => {
                assert!((impact_speed_mps - 1.0).abs() < 1e-12);
            }
            other => panic!("{other:?}"),
        }
        assert!(grades[2].rank() > grades[7].rank());
        assert!(grades[7].rank() > grades[1].rank());
        assert!(grades[1].rank() > grades[0].rank());
        assert!(grades[0].rank() > grades[6].rank());
    }

    #[test]
    fn saturation_point_finds_plateau() {
        let mut map: BTreeMap<MillisKey, ClassCounts> = BTreeMap::new();
        // severe counts: 0, 10, 48, 50, 52, 49 over 100-experiment buckets.
        for (i, severe) in [0usize, 10, 48, 50, 52, 49].into_iter().enumerate() {
            let mut c = ClassCounts::default();
            for _ in 0..severe {
                c.add(Classification::Severe);
            }
            for _ in severe..100 {
                c.add(Classification::Benign);
            }
            map.insert((i as i64 + 1) * 200, c);
        }
        // Within 5% of 100 experiments, the curve saturates at key 600.
        assert_eq!(saturation_point(&map, 0.05), Some(600));
        // With zero tolerance nothing saturates until the last key...
        // (52 vs 49 differ), except the final bucket trivially.
        assert_eq!(saturation_point(&map, 0.0), Some(1200));
    }

    #[test]
    fn saturation_point_empty_map() {
        assert_eq!(saturation_point(&BTreeMap::new(), 0.1), None);
    }

    #[test]
    fn heatmap_keys_cover_grid() {
        let m = by_start_and_value(&sample());
        assert_eq!(m[&(17_000, 200)].total(), 2);
        assert_eq!(m[&(17_000, 1000)].severe, 1);
        assert_eq!(m[&(19_000, 3000)].total(), 2);
    }

    #[test]
    fn colliders_by_start_maps_bands() {
        let dos: Vec<ExperimentRecord> = vec![
            record(0, 60.0, 17.0, 43.0, Classification::Severe, Some(2)),
            record(1, 60.0, 17.6, 42.4, Classification::Severe, Some(3)),
            record(2, 60.0, 21.8, 38.2, Classification::Severe, Some(2)),
        ];
        let m = colliders_by_start(&dos);
        assert_eq!(m[&17_000], Some(2));
        assert_eq!(m[&17_600], Some(3));
        assert_eq!(m[&21_800], Some(2));
    }
}
