//! Campaign metrics model and the `metrics.json` artifact.
//!
//! Everything in this module derives from *sim-side* run state only: run
//! logs, counters, and histograms that are bit-identical across execution
//! modes and worker-thread counts. Mode- or host-dependent quantities
//! (fork hit rate, per-phase wall-clock) are deliberately absent — they
//! belong to the host-side profile (see [`crate::hostprof`]) so that
//! `metrics.json` itself is a deterministic artifact.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use comfase_des::stats::Histogram;

/// Version stamp of the `metrics.json` schema. Bump on any change to the
/// serialized shape so downstream tooling can detect incompatibility.
///
/// v2: [`FrameBreakdown`] gained `accounting_underflow`.
pub const METRICS_SCHEMA_VERSION: u32 = 2;

/// Counter-name prefixes that mark *substrate diagnostics*: counters that
/// legitimately differ across execution substrates and therefore never
/// enter `metrics.json`.
///
/// - `index.` — spatial-index health (grid pruning, lane-index rebuilds),
///   which differs between indexed and brute-force runs;
/// - `exec.` — execution-mode bookkeeping (mid-attack snapshot forks),
///   which differs between from-scratch, prefix-fork and snapshot-DAG
///   campaign execution.
///
/// Everything outside these prefixes must be bit-identical across
/// substrates, execution modes, and worker-thread counts.
pub const SUBSTRATE_COUNTER_PREFIXES: &[&str] = &["index.", "exec."];

/// DES-kernel event accounting for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelCounters {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events popped and dispatched.
    pub delivered: u64,
    /// Events cancelled before delivery.
    pub cancelled: u64,
    /// Events still queued when the run ended.
    pub pending_at_end: u64,
}

impl KernelCounters {
    /// Sums another run's counters into this one.
    pub fn add(&mut self, other: &KernelCounters) {
        self.scheduled += other.scheduled;
        self.delivered += other.delivered;
        self.cancelled += other.cancelled;
        self.pending_at_end += other.pending_at_end;
    }
}

/// Where every frame of a run ended up, attributed by cause.
///
/// Accounting identities tie the fields together (asserted in the
/// integration tests):
///
/// - every planned link is decided or still in flight:
///   `links_planned == received + lost_snir + lost_sensitivity +
///    rx_inactive + in_flight_at_end`;
/// - `dropped_interceptor` and `below_noise` links are attributed *before*
///   planning (the channel never schedules a reception for them), so they
///   are not part of `links_planned`;
/// - MAC-level losses are upstream of the channel and therefore *not*
///   part of `links_planned` either.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameBreakdown {
    /// Frames put on the air (per-transmitter, before receiver fan-out).
    pub transmissions: u64,
    /// Transmitter→receiver links the channel planned a delivery for.
    pub links_planned: u64,
    /// Links delivered successfully (passed sensitivity and SNIR).
    pub received: u64,
    /// Links lost to SNIR failure (interference/jamming).
    pub lost_snir: u64,
    /// Links lost below receiver sensitivity.
    pub lost_sensitivity: u64,
    /// Links swallowed by an attack interceptor (drop attacks) before a
    /// reception was planned.
    pub dropped_interceptor: u64,
    /// Links skipped because the received power was below the noise floor
    /// (out of range; never planned).
    pub below_noise: u64,
    /// Links whose reception completed at a node that no longer receives
    /// (crashed vehicle) or that never decodes (jammer radios).
    pub rx_inactive: u64,
    /// Links still propagating when the simulation ended.
    pub in_flight_at_end: u64,
    /// Frames dropped at the MAC queue (queue full).
    pub mac_dropped_queue_full: u64,
    /// MAC deferrals due to a busy medium (CSMA back-off), excluding
    /// guard-interval deferrals.
    pub mac_deferrals_busy: u64,
    /// MAC deferrals due to the IEEE 1609.4 guard interval.
    pub mac_deferrals_guard: u64,
    /// Times the closed frame-fate identity failed to balance (a decided/
    /// in-flight total exceeding `links_planned`, or `received >
    /// links_planned`). Always 0 in a healthy run; any non-zero value
    /// means the breakdown above cannot be trusted and must fail loudly
    /// instead of clamping.
    #[serde(default)]
    pub accounting_underflow: u64,
}

impl FrameBreakdown {
    /// Planned links that did not end in successful reception.
    ///
    /// `received > links_planned` is an accounting-invariant violation,
    /// not a quantity to clamp: it is recorded under
    /// [`FrameBreakdown::accounting_underflow`] (and trips the
    /// sim-sanitizer `debug_assert!`) so a broken breakdown is visible in
    /// the artifact instead of silently reading as "0 not delivered".
    pub fn not_delivered(&self) -> u64 {
        match self.links_planned.checked_sub(self.received) {
            Some(n) => n,
            None => {
                debug_assert!(
                    false,
                    "frame-fate underflow: received {} > links_planned {}",
                    self.received, self.links_planned
                );
                0
            }
        }
    }

    /// Sums another run's breakdown into this one.
    pub fn add(&mut self, other: &FrameBreakdown) {
        self.transmissions += other.transmissions;
        self.links_planned += other.links_planned;
        self.received += other.received;
        self.lost_snir += other.lost_snir;
        self.lost_sensitivity += other.lost_sensitivity;
        self.dropped_interceptor += other.dropped_interceptor;
        self.below_noise += other.below_noise;
        self.rx_inactive += other.rx_inactive;
        self.in_flight_at_end += other.in_flight_at_end;
        self.mac_dropped_queue_full += other.mac_dropped_queue_full;
        self.mac_deferrals_busy += other.mac_deferrals_busy;
        self.mac_deferrals_guard += other.mac_deferrals_guard;
        self.accounting_underflow += other.accounting_underflow;
    }
}

/// Per-experiment metrics row of a campaign.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentMetrics {
    /// Index of the experiment in campaign expansion order.
    pub index: usize,
    /// Safety verdict classification of the run.
    pub classification: String,
    /// Strongest deceleration any vehicle applied (m/s²).
    pub max_decel_mps2: f64,
    /// Vehicle collisions observed.
    pub collisions: u64,
    /// Kernel event accounting.
    pub kernel: KernelCounters,
    /// Frame fate accounting.
    pub frames: FrameBreakdown,
    /// Raw named counters recorded during the run.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub counters: BTreeMap<String, u64>,
}

/// Campaign-wide aggregates over all experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateMetrics {
    /// Experiments per verdict class.
    pub verdicts: BTreeMap<String, u64>,
    /// Summed kernel counters.
    pub kernel: KernelCounters,
    /// Summed frame breakdown.
    pub frames: FrameBreakdown,
    /// Total vehicle collisions across experiments.
    pub collisions_total: u64,
    /// Distribution of per-experiment max deceleration (m/s², 0–10 in
    /// 0.5 m/s² bins).
    pub max_decel_hist: Histogram,
}

/// Bucket layout of [`AggregateMetrics::max_decel_hist`].
pub fn max_decel_histogram() -> Histogram {
    Histogram::new(0.0, 10.0, 20)
}

impl AggregateMetrics {
    /// Empty aggregate with the standard histogram layout.
    pub fn new() -> Self {
        AggregateMetrics {
            verdicts: BTreeMap::new(),
            kernel: KernelCounters::default(),
            frames: FrameBreakdown::default(),
            collisions_total: 0,
            max_decel_hist: max_decel_histogram(),
        }
    }

    /// Folds one experiment into the aggregate.
    pub fn fold(&mut self, exp: &ExperimentMetrics) {
        *self.verdicts.entry(exp.classification.clone()).or_insert(0) += 1;
        self.kernel.add(&exp.kernel);
        self.frames.add(&exp.frames);
        self.collisions_total += exp.collisions;
        self.max_decel_hist.record(exp.max_decel_mps2);
    }
}

impl Default for AggregateMetrics {
    fn default() -> Self {
        AggregateMetrics::new()
    }
}

/// The `metrics.json` artifact: per-experiment rows plus aggregates.
///
/// Contains only sim-derived values, so the serialized bytes are identical
/// for `PrefixFork` and `FromScratch` execution and for any worker-thread
/// count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignMetrics {
    /// Schema version ([`METRICS_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Number of experiments in the campaign.
    pub experiments: usize,
    /// Golden (fault-free) run metrics, when collected.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub golden: Option<ExperimentMetrics>,
    /// Campaign-wide aggregates.
    pub aggregate: AggregateMetrics,
    /// One row per experiment, in campaign expansion order.
    pub per_experiment: Vec<ExperimentMetrics>,
}

impl CampaignMetrics {
    /// Builds the artifact from per-experiment rows (any order; sorted by
    /// index here) and an optional golden-run row.
    pub fn build(
        mut per_experiment: Vec<ExperimentMetrics>,
        golden: Option<ExperimentMetrics>,
    ) -> Self {
        per_experiment.sort_by_key(|e| e.index);
        let mut aggregate = AggregateMetrics::new();
        for exp in &per_experiment {
            aggregate.fold(exp);
        }
        CampaignMetrics {
            schema_version: METRICS_SCHEMA_VERSION,
            experiments: per_experiment.len(),
            golden,
            aggregate,
            per_experiment,
        }
    }

    /// Serializes the artifact to its canonical byte form: pretty JSON with
    /// sorted maps (`BTreeMap` throughout) and a trailing newline. Same
    /// metrics in, same bytes out.
    pub fn to_json_bytes(&self) -> Vec<u8> {
        let mut bytes = serde_json::to_vec_pretty(self).unwrap_or_else(|_| b"{}".to_vec());
        bytes.push(b'\n');
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(index: usize, class: &str, decel: f64) -> ExperimentMetrics {
        ExperimentMetrics {
            index,
            classification: class.to_string(),
            max_decel_mps2: decel,
            collisions: u64::from(class == "Collision"),
            kernel: KernelCounters {
                scheduled: 10,
                delivered: 8,
                cancelled: 1,
                pending_at_end: 1,
            },
            frames: FrameBreakdown {
                transmissions: 4,
                links_planned: 12,
                received: 9,
                lost_snir: 2,
                lost_sensitivity: 1,
                ..FrameBreakdown::default()
            },
            counters: BTreeMap::new(),
        }
    }

    #[test]
    fn aggregate_folds_experiments() {
        let metrics = CampaignMetrics::build(
            vec![exp(1, "Collision", 8.0), exp(0, "NoEffect", 1.0)],
            None,
        );
        assert_eq!(metrics.experiments, 2);
        // Sorted by index regardless of input order.
        assert_eq!(metrics.per_experiment[0].index, 0);
        assert_eq!(metrics.aggregate.verdicts["Collision"], 1);
        assert_eq!(metrics.aggregate.verdicts["NoEffect"], 1);
        assert_eq!(metrics.aggregate.kernel.scheduled, 20);
        assert_eq!(metrics.aggregate.frames.links_planned, 24);
        assert_eq!(metrics.aggregate.collisions_total, 1);
        assert_eq!(metrics.aggregate.max_decel_hist.total(), 2);
    }

    #[test]
    fn breakdown_not_delivered() {
        let f = FrameBreakdown {
            links_planned: 10,
            received: 7,
            ..FrameBreakdown::default()
        };
        assert_eq!(f.not_delivered(), 3);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn breakdown_underflow_is_not_silently_clamped() {
        // received > links_planned: the old saturating_sub read "0 not
        // delivered"; now the condition stays visible.
        let f = FrameBreakdown {
            links_planned: 5,
            received: 7,
            ..FrameBreakdown::default()
        };
        assert_eq!(f.not_delivered(), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "frame-fate underflow")]
    fn breakdown_underflow_trips_the_sim_sanitizer() {
        let f = FrameBreakdown {
            links_planned: 5,
            received: 7,
            ..FrameBreakdown::default()
        };
        let _ = f.not_delivered();
    }

    #[test]
    fn breakdown_add_sums_accounting_underflow() {
        let mut a = FrameBreakdown {
            accounting_underflow: 1,
            ..FrameBreakdown::default()
        };
        a.add(&FrameBreakdown {
            accounting_underflow: 2,
            ..FrameBreakdown::default()
        });
        assert_eq!(a.accounting_underflow, 3);
    }

    #[test]
    fn json_bytes_are_stable_and_round_trip() {
        let metrics = CampaignMetrics::build(vec![exp(0, "FalseBraking", 4.2)], None);
        let a = metrics.to_json_bytes();
        let b = metrics.to_json_bytes();
        assert_eq!(a, b);
        assert_eq!(a.last(), Some(&b'\n'));
        let back: CampaignMetrics = serde_json::from_slice(&a).expect("round trip");
        assert_eq!(back, metrics);
    }
}
