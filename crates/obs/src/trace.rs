//! Sim-time-stamped trace events and chrome://tracing export.
//!
//! A [`TraceEvent`] marks one point (or span edge) on a simulation
//! timeline: a beacon leaving a MAC, a frame surviving the SNIR decider, a
//! collision. Events carry [`SimTime`] — never host time — so a recorded
//! trace is as deterministic as the run that produced it.
//!
//! [`chrome_trace_json`] renders a slice of events in the Trace Event
//! Format understood by `chrome://tracing` and <https://ui.perfetto.dev>:
//! each world track (vehicle, jammer, kernel) becomes one timeline row.

use std::borrow::Cow;

use serde::{Deserialize, Serialize};

use comfase_des::time::SimTime;

/// What kind of timeline mark an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A single point on the timeline (phase `i` in the trace format).
    Mark,
    /// Opens a span on its track (phase `B`).
    Begin,
    /// Closes the most recent open span on its track (phase `E`).
    End,
}

impl TraceKind {
    /// The Trace Event Format phase letter.
    pub fn phase(self) -> &'static str {
        match self {
            TraceKind::Mark => "i",
            TraceKind::Begin => "B",
            TraceKind::End => "E",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub time: SimTime,
    /// Timeline row the event belongs to (vehicle id, jammer id, or a
    /// reserved track such as [`TRACK_KERNEL`]).
    pub track: u32,
    /// Event name (static in the instrumented code; owned after a
    /// serde round-trip).
    pub name: Cow<'static, str>,
    /// Point or span edge.
    pub kind: TraceKind,
}

/// Track id used for world-level events (attack windows, kernel marks)
/// that belong to no single vehicle.
pub const TRACK_KERNEL: u32 = u32::MAX;

/// Renders events as a chrome://tracing JSON document.
///
/// Timestamps are microseconds (the format's unit) with nanosecond
/// fractions preserved. Tracks map to thread ids under a single process.
/// The output for a given event slice is byte-stable: same events in, same
/// bytes out.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts_us = format_micros(e.time.as_nanos());
        let name = json_escape(e.name.as_ref());
        out.push_str(&format!(
            "{{\"name\":{name},\"cat\":\"sim\",\"ph\":\"{}\",\"ts\":{ts_us},\
             \"pid\":0,\"tid\":{}{}}}",
            e.kind.phase(),
            e.track,
            if e.kind == TraceKind::Mark {
                ",\"s\":\"t\""
            } else {
                ""
            },
        ));
    }
    out.push_str("]}\n");
    out
}

/// Renders a nanosecond count as a microsecond JSON number in the integer
/// domain: the whole-µs part is a plain `i64` division and only the 0–999 ns
/// remainder is rendered as a decimal fraction (trailing zeros trimmed, so
/// 1500 ns stays `1.5`). Going through `f64` instead would lose integer
/// precision past 2^53 ns (~104 sim-days) and could misorder adjacent
/// events in Perfetto.
fn format_micros(nanos: i64) -> String {
    let sign = if nanos < 0 { "-" } else { "" };
    let abs = nanos.unsigned_abs();
    let us = abs / 1000;
    let frac = abs % 1000;
    if frac == 0 {
        format!("{sign}{us}")
    } else {
        let digits = format!("{frac:03}");
        format!("{sign}{us}.{}", digits.trim_end_matches('0'))
    }
}

/// Renders `s` as a quoted JSON string (escaping quotes, backslashes, and
/// control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: i64, track: u32, name: &'static str, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(ns),
            track,
            name: Cow::Borrowed(name),
            kind,
        }
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let events = vec![
            ev(1_500, 1, "tx", TraceKind::Mark),
            ev(2_000, 2, "attack", TraceKind::Begin),
            ev(9_000, 2, "attack", TraceKind::End),
        ];
        let json = chrome_trace_json(&events);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let list = v["traceEvents"].as_array().expect("traceEvents array");
        assert_eq!(list.len(), 3);
        assert_eq!(list[0]["ph"], "i");
        assert_eq!(list[0]["ts"], 1.5);
        assert_eq!(list[1]["ph"], "B");
        assert_eq!(list[2]["ph"], "E");
        assert_eq!(list[0]["tid"], 1);
    }

    #[test]
    fn large_sim_times_keep_integer_precision() {
        // Past 2^53 ns an f64 µs conversion collapses adjacent nanosecond
        // timestamps onto the same value (and can even swap their order
        // after rounding). The integer-domain renderer must keep them
        // distinct and exact.
        let base: i64 = 9_007_199_254_741_001; // > 2^53 ns, ends in …001
        let events = vec![
            ev(base, 1, "a", TraceKind::Mark),
            ev(base + 1, 1, "b", TraceKind::Mark),
        ];
        let json = chrome_trace_json(&events);
        let us = base / 1000;
        let expected_a = format!("\"ts\":{us}.001");
        let expected_b = format!("\"ts\":{us}.002");
        assert!(json.contains(&expected_a), "missing {expected_a} in {json}");
        assert!(json.contains(&expected_b), "missing {expected_b} in {json}");
    }

    #[test]
    fn fractional_micros_trim_trailing_zeros() {
        assert_eq!(format_micros(0), "0");
        assert_eq!(format_micros(1_500), "1.5");
        assert_eq!(format_micros(1_050), "1.05");
        assert_eq!(format_micros(1_005), "1.005");
        assert_eq!(format_micros(2_000), "2");
        assert_eq!(format_micros(-1_500), "-1.5");
    }

    #[test]
    fn export_is_byte_stable() {
        let events = vec![ev(42, 7, "x", TraceKind::Mark)];
        assert_eq!(chrome_trace_json(&events), chrome_trace_json(&events));
    }

    #[test]
    fn empty_trace_is_still_a_document() {
        let json = chrome_trace_json(&[]);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(v["traceEvents"].as_array().expect("array").is_empty());
    }

    #[test]
    fn events_round_trip_through_serde() {
        let e = ev(10, 3, "rx.ok", TraceKind::Mark);
        let json = serde_json::to_string(&e).expect("serialize");
        let back: TraceEvent = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, e);
    }
}
