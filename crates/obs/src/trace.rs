//! Sim-time-stamped trace events and chrome://tracing export.
//!
//! A [`TraceEvent`] marks one point (or span edge) on a simulation
//! timeline: a beacon leaving a MAC, a frame surviving the SNIR decider, a
//! collision. Events carry [`SimTime`] — never host time — so a recorded
//! trace is as deterministic as the run that produced it.
//!
//! [`chrome_trace_json`] renders a slice of events in the Trace Event
//! Format understood by `chrome://tracing` and <https://ui.perfetto.dev>:
//! each world track (vehicle, jammer, kernel) becomes one timeline row.

use std::borrow::Cow;

use serde::{Deserialize, Serialize};

use comfase_des::time::SimTime;

/// What kind of timeline mark an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A single point on the timeline (phase `i` in the trace format).
    Mark,
    /// Opens a span on its track (phase `B`).
    Begin,
    /// Closes the most recent open span on its track (phase `E`).
    End,
}

impl TraceKind {
    /// The Trace Event Format phase letter.
    pub fn phase(self) -> &'static str {
        match self {
            TraceKind::Mark => "i",
            TraceKind::Begin => "B",
            TraceKind::End => "E",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub time: SimTime,
    /// Timeline row the event belongs to (vehicle id, jammer id, or a
    /// reserved track such as [`TRACK_KERNEL`]).
    pub track: u32,
    /// Event name (static in the instrumented code; owned after a
    /// serde round-trip).
    pub name: Cow<'static, str>,
    /// Point or span edge.
    pub kind: TraceKind,
}

/// Track id used for world-level events (attack windows, kernel marks)
/// that belong to no single vehicle.
pub const TRACK_KERNEL: u32 = u32::MAX;

/// Renders events as a chrome://tracing JSON document.
///
/// Timestamps are microseconds (the format's unit) with nanosecond
/// fractions preserved. Tracks map to thread ids under a single process.
/// The output for a given event slice is byte-stable: same events in, same
/// bytes out.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts_us = e.time.as_nanos() as f64 / 1000.0;
        let name = json_escape(e.name.as_ref());
        out.push_str(&format!(
            "{{\"name\":{name},\"cat\":\"sim\",\"ph\":\"{}\",\"ts\":{ts_us},\
             \"pid\":0,\"tid\":{}{}}}",
            e.kind.phase(),
            e.track,
            if e.kind == TraceKind::Mark {
                ",\"s\":\"t\""
            } else {
                ""
            },
        ));
    }
    out.push_str("]}\n");
    out
}

/// Renders `s` as a quoted JSON string (escaping quotes, backslashes, and
/// control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: i64, track: u32, name: &'static str, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(ns),
            track,
            name: Cow::Borrowed(name),
            kind,
        }
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let events = vec![
            ev(1_500, 1, "tx", TraceKind::Mark),
            ev(2_000, 2, "attack", TraceKind::Begin),
            ev(9_000, 2, "attack", TraceKind::End),
        ];
        let json = chrome_trace_json(&events);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let list = v["traceEvents"].as_array().expect("traceEvents array");
        assert_eq!(list.len(), 3);
        assert_eq!(list[0]["ph"], "i");
        assert_eq!(list[0]["ts"], 1.5);
        assert_eq!(list[1]["ph"], "B");
        assert_eq!(list[2]["ph"], "E");
        assert_eq!(list[0]["tid"], 1);
    }

    #[test]
    fn export_is_byte_stable() {
        let events = vec![ev(42, 7, "x", TraceKind::Mark)];
        assert_eq!(chrome_trace_json(&events), chrome_trace_json(&events));
    }

    #[test]
    fn empty_trace_is_still_a_document() {
        let json = chrome_trace_json(&[]);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(v["traceEvents"].as_array().expect("array").is_empty());
    }

    #[test]
    fn events_round_trip_through_serde() {
        let e = ev(10, 3, "rx.ok", TraceKind::Mark);
        let json = serde_json::to_string(&e).expect("serialize");
        let back: TraceEvent = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, e);
    }
}
