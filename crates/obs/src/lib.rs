//! # comfase-obs — deterministic observability for ComFASE-RS
//!
//! A telemetry layer for the simulation stack, split along one hard line:
//!
//! - **Sim-side** ([`recorder`], [`trace`], [`metrics`]): everything stamped
//!   with [`SimTime`](comfase_des::time::SimTime) and recorded *inside* a
//!   simulation. These values are part of the deterministic run state — a
//!   forked run and a from-scratch run record byte-identical metrics, and
//!   worker-thread count never changes them. Nothing here may touch the host
//!   clock; the `comfase-lint` auditor enforces this (this crate is inside
//!   its workspace scope).
//! - **Host-side** ([`hostprof`]): wall-clock phase profiling of the
//!   campaign *runner* (how long the golden run took, not what happened in
//!   it). This is the only module allowed to read the host clock, under
//!   explicit per-site `wall-clock` waivers each carrying its reason, and
//!   its output is kept out of the deterministic `metrics.json` artifact.
//!
//! The central abstraction is the [`Recorder`](recorder::Recorder) trait
//! with two implementations: [`MemRecorder`](recorder::MemRecorder)
//! (counters + fixed-bucket histograms + a bounded trace-event buffer) and
//! the zero-cost [`NullRecorder`](recorder::NullRecorder). Simulation state
//! holds the `Clone`-able [`SimRecorder`](recorder::SimRecorder) handle so
//! snapshot/fork execution carries recorded telemetry along with the rest of
//! the world state.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataset;
pub mod hostprof;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use dataset::{
    render_experiment, DatasetCapture, DatasetHeader, DatasetSink, DirSink, ExperimentExport,
    ExperimentLabel, FrameFate, FrameRecord, NullSink, StepRecord, DATASET_SCHEMA_VERSION,
};
pub use hostprof::{HostProfiler, WallDeadline};
pub use metrics::{
    AggregateMetrics, CampaignMetrics, ExperimentMetrics, FrameBreakdown, KernelCounters,
    SUBSTRATE_COUNTER_PREFIXES,
};
pub use recorder::{
    HistSpec, MemRecorder, MetricsSnapshot, NullRecorder, ObsConfig, Recorder, SimRecorder,
};
pub use trace::{chrome_trace_json, TraceEvent, TraceKind};
