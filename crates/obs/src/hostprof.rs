// comfase-lint: host-region(reason = "host profiler: measures the runner's wall time on this machine, never sim state; results go to profile.json, not metrics.json")

//! Host-side wall-clock profiling of the campaign *runner*.
//!
//! This is the one module in the workspace's simulation scope that is
//! allowed to read the host clock — under a file-scope `host-region`
//! marker — because it measures the machine, not the simulation: how
//! long the golden run, prefix building, and experiment phases took on
//! this host, at this thread count.
//!
//! None of these numbers may leak into `metrics.json`
//! ([`crate::metrics::CampaignMetrics`] has no field to put them in); they
//! are reported separately (the `repro` binary writes them to
//! `results/profile.json`), so the deterministic artifact stays
//! byte-identical across hosts, modes, and thread counts.

use std::sync::Mutex;
use std::time::Instant;

/// Wall-clock stopwatch over named runner phases.
///
/// Interior mutability (`Mutex`) so the campaign runner can drive it
/// through `&self` observer hooks from worker threads. Lock contention is
/// irrelevant: it is taken a handful of times per campaign (phase edges
/// and per-experiment ticks), never inside simulation code.
#[derive(Debug, Default)]
pub struct HostProfiler {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    open: Vec<(String, Instant)>,
    finished: Vec<(String, f64)>,
}

impl HostProfiler {
    /// Creates an idle profiler.
    pub fn new() -> Self {
        HostProfiler::default()
    }

    /// Marks the start of a named phase.
    pub fn begin(&self, name: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.open.push((name.to_string(), Instant::now()));
    }

    /// Marks the end of the named phase; records its elapsed seconds.
    /// Ending a phase that was never begun is a no-op.
    pub fn end(&self, name: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = inner.open.iter().rposition(|(n, _)| n == name) {
            let (name, started) = inner.open.remove(pos);
            let secs = started.elapsed().as_secs_f64();
            inner.finished.push((name, secs));
        }
    }

    /// Elapsed seconds of a still-open phase (most recently begun with
    /// `name`), without ending it. `None` if no such phase is open.
    ///
    /// This is the clock primitive behind [`WallDeadline`]: the read uses
    /// the start stamp taken by [`HostProfiler::begin`], keeping every
    /// wall-clock access inside this sanctioned module.
    pub fn open_elapsed_seconds(&self, name: &str) -> Option<f64> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .open
            .iter()
            .rfind(|(n, _)| n == name)
            .map(|(_, started)| started.elapsed().as_secs_f64())
    }

    /// Finished phases in completion order, as `(name, seconds)`.
    pub fn report(&self) -> Vec<(String, f64)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.finished.clone()
    }

    /// Total seconds across all finished phases.
    pub fn total_seconds(&self) -> f64 {
        self.report().iter().map(|(_, s)| s).sum()
    }
}

/// Host wall-clock deadline for preempting a long campaign run.
///
/// **Not deterministic** — this measures the machine, like everything in
/// this module, and expiry depends on host load. It exists for operational
/// protection (CI time limits, shared clusters): an expired deadline makes
/// the campaign runner stop claiming new experiments and lean on its
/// journal for resume. The *reproducible* watchdog is the sim-side event
/// budget (`comfase_des::EventBudget`), which trips identically on every
/// host and thread count.
///
/// Built on [`HostProfiler`] so the wall-clock reads stay inside the one
/// sanctioned clock module.
#[derive(Debug)]
pub struct WallDeadline {
    clock: HostProfiler,
    budget_s: f64,
}

/// Phase name the deadline stopwatch runs under.
const DEADLINE_PHASE: &str = "wall-deadline";

impl WallDeadline {
    /// Starts a deadline expiring `budget_s` wall-clock seconds from now.
    pub fn after_secs(budget_s: f64) -> Self {
        let clock = HostProfiler::new();
        clock.begin(DEADLINE_PHASE);
        WallDeadline { clock, budget_s }
    }

    /// The configured budget in seconds.
    pub fn budget_seconds(&self) -> f64 {
        self.budget_s
    }

    /// Wall-clock seconds elapsed since the deadline was started.
    pub fn elapsed_seconds(&self) -> f64 {
        self.clock
            .open_elapsed_seconds(DEADLINE_PHASE)
            .unwrap_or(0.0)
    }

    /// `true` once the budget has elapsed.
    pub fn expired(&self) -> bool {
        self.elapsed_seconds() >= self.budget_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_nest_and_report_in_completion_order() {
        let p = HostProfiler::new();
        p.begin("campaign");
        p.begin("golden");
        p.end("golden");
        p.begin("experiments");
        p.end("experiments");
        p.end("campaign");
        let report = p.report();
        let names: Vec<&str> = report.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["golden", "experiments", "campaign"]);
        assert!(report.iter().all(|&(_, s)| s >= 0.0));
        assert!(p.total_seconds() >= 0.0);
    }

    #[test]
    fn ending_unknown_phase_is_a_noop() {
        let p = HostProfiler::new();
        p.end("never-started");
        assert!(p.report().is_empty());
    }

    #[test]
    fn profiler_is_sync_for_worker_threads() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<HostProfiler>();
        assert_sync::<WallDeadline>();
    }

    #[test]
    fn open_phase_elapsed_is_readable_without_ending_it() {
        let p = HostProfiler::new();
        assert_eq!(p.open_elapsed_seconds("campaign"), None);
        p.begin("campaign");
        let secs = p.open_elapsed_seconds("campaign").unwrap();
        assert!(secs >= 0.0);
        // Still open: nothing finished yet.
        assert!(p.report().is_empty());
    }

    #[test]
    fn generous_deadline_does_not_expire() {
        let d = WallDeadline::after_secs(3600.0);
        assert_eq!(d.budget_seconds(), 3600.0);
        assert!(!d.expired());
        assert!(d.elapsed_seconds() < 3600.0);
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let d = WallDeadline::after_secs(0.0);
        assert!(d.expired());
    }
}
