//! Host-side wall-clock profiling of the campaign *runner*.
//!
//! This is the one module in the workspace's simulation scope that is
//! allowed to read the host clock — under explicit per-site `wall-clock`
//! waivers, each carrying its reason — because it measures the machine,
//! not the simulation: how long the golden run, prefix building, and
//! experiment phases took on this host, at this thread count.
//!
//! None of these numbers may leak into `metrics.json`
//! ([`crate::metrics::CampaignMetrics`] has no field to put them in); they
//! are reported separately (the `repro` binary writes them to
//! `results/profile.json`), so the deterministic artifact stays
//! byte-identical across hosts, modes, and thread counts.

use std::sync::Mutex;
// comfase-lint: allow(wall-clock, reason = "host-side profiler; measures runner phases, never sim state")
use std::time::Instant;

/// Wall-clock stopwatch over named runner phases.
///
/// Interior mutability (`Mutex`) so the campaign runner can drive it
/// through `&self` observer hooks from worker threads. Lock contention is
/// irrelevant: it is taken a handful of times per campaign (phase edges
/// and per-experiment ticks), never inside simulation code.
#[derive(Debug, Default)]
pub struct HostProfiler {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    // comfase-lint: allow(wall-clock, reason = "host-side profiler; open phase start stamps")
    open: Vec<(String, Instant)>,
    finished: Vec<(String, f64)>,
}

impl HostProfiler {
    /// Creates an idle profiler.
    pub fn new() -> Self {
        HostProfiler::default()
    }

    /// Marks the start of a named phase.
    pub fn begin(&self, name: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // comfase-lint: allow(wall-clock, reason = "host-side profiler; the one sanctioned clock read")
        inner.open.push((name.to_string(), Instant::now()));
    }

    /// Marks the end of the named phase; records its elapsed seconds.
    /// Ending a phase that was never begun is a no-op.
    pub fn end(&self, name: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = inner.open.iter().rposition(|(n, _)| n == name) {
            let (name, started) = inner.open.remove(pos);
            let secs = started.elapsed().as_secs_f64();
            inner.finished.push((name, secs));
        }
    }

    /// Finished phases in completion order, as `(name, seconds)`.
    pub fn report(&self) -> Vec<(String, f64)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.finished.clone()
    }

    /// Total seconds across all finished phases.
    pub fn total_seconds(&self) -> f64 {
        self.report().iter().map(|(_, s)| s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_nest_and_report_in_completion_order() {
        let p = HostProfiler::new();
        p.begin("campaign");
        p.begin("golden");
        p.end("golden");
        p.begin("experiments");
        p.end("experiments");
        p.end("campaign");
        let report = p.report();
        let names: Vec<&str> = report.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["golden", "experiments", "campaign"]);
        assert!(report.iter().all(|&(_, s)| s >= 0.0));
        assert!(p.total_seconds() >= 0.0);
    }

    #[test]
    fn ending_unknown_phase_is_a_noop() {
        let p = HostProfiler::new();
        p.end("never-started");
        assert!(p.report().is_empty());
    }

    #[test]
    fn profiler_is_sync_for_worker_threads() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<HostProfiler>();
    }
}
