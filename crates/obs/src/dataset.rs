// comfase-lint: host-region(reason = "dataset sinks write JSONL shards to disk; the record/capture types above the sink boundary are pure sim state and stay under the full rule set")
//! Streaming attack-labeled dataset export.
//!
//! Campaign execution is a data factory: every PHY frame decision and every
//! control step is a labeled training example for downstream ML pipelines
//! (Iqbal et al., "Simulating Malicious Attacks on VANETs"). This module
//! turns the existing [`Recorder`](crate::recorder::Recorder) frame-fate
//! instrumentation into that dataset:
//!
//! - **Sim-side capture** — [`FrameRecord`] / [`StepRecord`] rows collected
//!   into a bounded [`DatasetCapture`] carried inside the recorder. Capture
//!   is part of deterministic run state: it clones with the world on
//!   snapshot forks, so a forked run and a from-scratch run capture
//!   byte-identical rows. Rows are label-free — the attack/verdict labels
//!   are only known at the campaign layer and are stamped at export time.
//! - **Host-side export** — a [`DatasetSink`] receives one
//!   `(label, capture)` pair per finished experiment and writes it as a
//!   length-delimited JSON-lines shard (`exp-<index>.jsonl`) via atomic
//!   temp+rename publication, so concurrent workers (including steal
//!   re-executions of the same experiment) can export into one directory
//!   without coordination: identical inputs render identical bytes, and a
//!   re-published shard simply replaces itself.
//!
//! Every shard opens with a schema header stamped with the campaign
//! fingerprint (the same identity the journal header carries), so a merge
//! can refuse shards from a foreign campaign. The line format is
//! `<payload-byte-length>\t<json>\n`: a reader can skip records without
//! parsing them, and the rendered bytes for a given experiment are a pure
//! function of `(fingerprint, seed, total, label, capture)` — which is what
//! makes the merged corpus byte-identical regardless of worker count,
//! execution mode, or steal events.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Version of the dataset record schema. Bump on any change to the
/// rendered line shapes.
pub const DATASET_SCHEMA_VERSION: u32 = 1;

/// Cap on captured frame rows per experiment; later frames only bump
/// [`DatasetCapture::frames_dropped`].
pub const FRAMES_CAP: usize = 1 << 20;

/// Cap on captured step rows per experiment; later steps only bump
/// [`DatasetCapture::steps_dropped`].
pub const STEPS_CAP: usize = 1 << 20;

/// How a PHY frame's reception ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FrameFate {
    /// Decoded successfully (SNIR above threshold).
    Received,
    /// Lost to interference/noise (SNIR below threshold).
    LostSnir,
    /// Arrived below the receiver sensitivity floor.
    LostSensitivity,
    /// Discarded by the first-fault-wins numeric guard.
    NumericFault,
    /// The receiver was inactive (crashed/removed) or had no radio.
    RxInactive,
}

/// One PHY frame reception decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameRecord {
    /// Sim time the reception was decided, in nanoseconds.
    pub time_ns: i64,
    /// Transmitting node id.
    pub tx: u32,
    /// Receiving node id.
    pub rx: u32,
    /// End-to-end delay from WSM creation to reception decision, in
    /// nanoseconds.
    pub delay_ns: i64,
    /// Decider SNIR in dB (present only for decided receptions that
    /// computed one).
    pub snir_db: Option<f64>,
    /// How the reception ended.
    pub fate: FrameFate,
    /// `true` while an attack interceptor was installed on the medium.
    pub attack_active: bool,
}

/// One control-loop step of one vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Sim time of the step, in nanoseconds.
    pub time_ns: i64,
    /// Vehicle id.
    pub vehicle: u32,
    /// Longitudinal position in metres.
    pub pos_m: f64,
    /// Speed in m/s.
    pub speed_mps: f64,
    /// Acceleration actually applied this step, in m/s².
    pub accel_mps2: f64,
    /// Radar-observed leader vehicle id, if any.
    pub leader: Option<u32>,
    /// Radar gap to the leader in metres, if any.
    pub gap_m: Option<f64>,
    /// `true` if the applied deceleration crossed the hard-braking
    /// threshold (monitor intervention or ≤ −5 m/s², the paper's
    /// comfortable-deceleration boundary).
    pub hard_braking: bool,
    /// `true` if this vehicle collided this step.
    pub collision: bool,
    /// `true` while an attack interceptor was installed on the medium.
    pub attack_active: bool,
}

/// Label-free dataset rows captured inside one simulation run.
///
/// Lives in the recorder (and therefore in cloned/forked world state), so
/// capture inherits the engine's determinism guarantees. The campaign
/// layer moves it out of the run log and pairs it with an
/// [`ExperimentLabel`] at export time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DatasetCapture {
    /// Per-frame reception rows, in decision order.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub frames: Vec<FrameRecord>,
    /// Per-vehicle control-step rows, in step order.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub steps: Vec<StepRecord>,
    /// Frame rows discarded after [`FRAMES_CAP`].
    #[serde(default)]
    pub frames_dropped: u64,
    /// Step rows discarded after [`STEPS_CAP`].
    #[serde(default)]
    pub steps_dropped: u64,
}

impl DatasetCapture {
    /// Appends a frame row (bounded by [`FRAMES_CAP`]).
    pub fn push_frame(&mut self, f: FrameRecord) {
        self.push_frame_capped(f, FRAMES_CAP);
    }

    fn push_frame_capped(&mut self, f: FrameRecord, cap: usize) {
        if self.frames.len() < cap {
            self.frames.push(f);
        } else {
            self.frames_dropped += 1;
        }
    }

    /// Appends a step row (bounded by [`STEPS_CAP`]).
    pub fn push_step(&mut self, s: StepRecord) {
        self.push_step_capped(s, STEPS_CAP);
    }

    fn push_step_capped(&mut self, s: StepRecord, cap: usize) {
        if self.steps.len() < cap {
            self.steps.push(s);
        } else {
            self.steps_dropped += 1;
        }
    }

    /// `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
            && self.steps.is_empty()
            && self.frames_dropped == 0
            && self.steps_dropped == 0
    }
}

/// Campaign-level labels stamped onto an experiment's rows at export time.
///
/// The sim capture is label-free; the campaign runner knows the attack
/// specification and the classified verdict and supplies them here.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentLabel {
    /// Campaign experiment index.
    pub index: usize,
    /// Attack model name (`"delay"`, `"dos"`, …); `None` for a golden run.
    pub attack_model: Option<String>,
    /// Targeted message field, if the model falsifies one.
    pub attack_parameter: Option<String>,
    /// Attack intensity value.
    pub attack_value: Option<f64>,
    /// Attack window start, seconds.
    pub attack_start_s: Option<f64>,
    /// Attack window duration, seconds.
    pub attack_duration_s: Option<f64>,
    /// Attacked vehicle ids.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub targets: Vec<u32>,
    /// Classified verdict (`"severe"`, `"benign"`, …).
    pub verdict: String,
    /// Maximum deceleration observed, m/s².
    pub max_decel_mps2: f64,
    /// Number of collisions in the run.
    pub nr_collisions: usize,
}

/// Identity of the campaign a shard belongs to; mirrored from the journal
/// header so merges can reject foreign shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetHeader {
    /// [`DATASET_SCHEMA_VERSION`] at write time.
    pub dataset_schema_version: u32,
    /// Campaign fingerprint (canonical-JSON FNV-1a 64).
    pub fingerprint: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Total number of experiments in the campaign.
    pub total: usize,
}

/// One fully labeled experiment ready for export.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentExport {
    /// Campaign identity stamped into the shard header.
    pub header: DatasetHeader,
    /// Campaign-level labels for this experiment.
    pub label: ExperimentLabel,
    /// The captured rows.
    pub capture: DatasetCapture,
}

/// Appends one length-delimited line: `<payload-len>\t<payload>\n`.
fn push_line(out: &mut String, payload: &str) {
    let _ = write!(out, "{}\t{payload}\n", payload.len());
}

/// Appends a JSON string literal with the escapes JSON requires
/// (quote, backslash, control characters).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for a finite float (shortest round-trip decimal,
/// never exponent notation). Non-finite values cannot be represented in
/// JSON; they render as `null` (and trip the sim sanitizer — the numeric
/// fault guards upstream are supposed to keep them out of captured rows).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        debug_assert!(false, "non-finite value {v} reached the dataset renderer");
        out.push_str("null");
    }
}

fn push_json_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_json_f64(out, v),
        None => out.push_str("null"),
    }
}

impl FrameFate {
    /// The snake_case wire tag used in rendered rows (matches the serde
    /// `rename_all` on the enum).
    pub fn wire_tag(self) -> &'static str {
        match self {
            FrameFate::Received => "received",
            FrameFate::LostSnir => "lost_snir",
            FrameFate::LostSensitivity => "lost_sensitivity",
            FrameFate::NumericFault => "numeric_fault",
            FrameFate::RxInactive => "rx_inactive",
        }
    }
}

// The line payloads below are rendered by hand rather than through a JSON
// library: the merged corpus must be byte-identical across worker counts,
// execution modes and toolchain versions, so the exact byte format is
// owned by this module and pinned by the golden tests at the bottom of the
// file. Field order is fixed; floats use Rust's shortest round-trip
// `Display` form.

fn render_header_payload(out: &mut String, header: &DatasetHeader, label: &ExperimentLabel) {
    let _ = write!(
        out,
        "{{\"dataset_schema_version\":{},\"fingerprint\":{},\"seed\":{},\"total\":{},\
         \"experiment\":{{\"index\":{}",
        header.dataset_schema_version, header.fingerprint, header.seed, header.total, label.index
    );
    out.push_str(",\"attack_model\":");
    match &label.attack_model {
        Some(m) => push_json_str(out, m),
        None => out.push_str("null"),
    }
    out.push_str(",\"attack_parameter\":");
    match &label.attack_parameter {
        Some(p) => push_json_str(out, p),
        None => out.push_str("null"),
    }
    out.push_str(",\"attack_value\":");
    push_json_opt_f64(out, label.attack_value);
    out.push_str(",\"attack_start_s\":");
    push_json_opt_f64(out, label.attack_start_s);
    out.push_str(",\"attack_duration_s\":");
    push_json_opt_f64(out, label.attack_duration_s);
    out.push_str(",\"targets\":[");
    for (i, t) in label.targets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{t}");
    }
    out.push_str("],\"verdict\":");
    push_json_str(out, &label.verdict);
    out.push_str(",\"max_decel_mps2\":");
    push_json_f64(out, label.max_decel_mps2);
    let _ = write!(out, ",\"nr_collisions\":{}}}}}", label.nr_collisions);
}

fn render_frame_payload(out: &mut String, f: &FrameRecord) {
    let _ = write!(
        out,
        "{{\"kind\":\"frame\",\"time_ns\":{},\"tx\":{},\"rx\":{},\"delay_ns\":{},\"snir_db\":",
        f.time_ns, f.tx, f.rx, f.delay_ns
    );
    push_json_opt_f64(out, f.snir_db);
    let _ = write!(
        out,
        ",\"fate\":\"{}\",\"attack_active\":{}}}",
        f.fate.wire_tag(),
        f.attack_active
    );
}

fn render_step_payload(out: &mut String, s: &StepRecord) {
    let _ = write!(
        out,
        "{{\"kind\":\"step\",\"time_ns\":{},\"vehicle\":{},\"pos_m\":",
        s.time_ns, s.vehicle
    );
    push_json_f64(out, s.pos_m);
    out.push_str(",\"speed_mps\":");
    push_json_f64(out, s.speed_mps);
    out.push_str(",\"accel_mps2\":");
    push_json_f64(out, s.accel_mps2);
    out.push_str(",\"leader\":");
    match s.leader {
        Some(l) => {
            let _ = write!(out, "{l}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"gap_m\":");
    push_json_opt_f64(out, s.gap_m);
    let _ = write!(
        out,
        ",\"hard_braking\":{},\"collision\":{},\"attack_active\":{}}}",
        s.hard_braking, s.collision, s.attack_active
    );
}

/// Renders one experiment's shard bytes: header line, then frame lines,
/// then step lines, then (only when rows were dropped) a truncation
/// trailer — each length-delimited.
///
/// This is a pure function of its input — same export in, same bytes out —
/// which is the keystone of the merge's byte-identity guarantee: shards
/// rendered by different workers, threads, or execution modes for the same
/// experiment are identical, so assembly order is the only thing the merge
/// has to fix (it sorts by index).
pub fn render_experiment(export: &ExperimentExport) -> Vec<u8> {
    let mut out = String::with_capacity(
        256 + export.capture.frames.len() * 160 + export.capture.steps.len() * 224,
    );
    let mut line = String::with_capacity(512);
    render_header_payload(&mut line, &export.header, &export.label);
    push_line(&mut out, &line);
    for f in &export.capture.frames {
        line.clear();
        render_frame_payload(&mut line, f);
        push_line(&mut out, &line);
    }
    for s in &export.capture.steps {
        line.clear();
        render_step_payload(&mut line, s);
        push_line(&mut out, &line);
    }
    if export.capture.frames_dropped > 0 || export.capture.steps_dropped > 0 {
        line.clear();
        let _ = write!(
            line,
            "{{\"kind\":\"dropped\",\"frames_dropped\":{},\"steps_dropped\":{}}}",
            export.capture.frames_dropped, export.capture.steps_dropped
        );
        push_line(&mut out, &line);
    }
    out.into_bytes()
}

/// Parses one length-delimited line, returning `(payload, rest)`.
///
/// Returns `None` on a malformed or torn line (missing delimiter, length
/// mismatch, missing trailing newline).
pub fn split_line(bytes: &[u8]) -> Option<(&str, &[u8])> {
    let tab = bytes.iter().position(|&b| b == b'\t')?;
    let len: usize = std::str::from_utf8(&bytes[..tab]).ok()?.parse().ok()?;
    let start = tab + 1;
    let end = start.checked_add(len)?;
    if bytes.len() <= end || bytes[end] != b'\n' {
        return None;
    }
    let payload = std::str::from_utf8(&bytes[start..end]).ok()?;
    Some((payload, &bytes[end + 1..]))
}

/// Extracts the first `"key":<digits>` occurrence from a rendered payload.
///
/// Sound on header lines because the renderer emits every numeric identity
/// field *before* any free-form string value, so the first occurrence is
/// always the real field, never text inside a label string.
fn u64_field(payload: &str, key: &str) -> Option<u64> {
    let mut needle = String::with_capacity(key.len() + 3);
    needle.push('"');
    needle.push_str(key);
    needle.push_str("\":");
    let at = payload.find(&needle)? + needle.len();
    let rest = &payload[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a shard's header line (the first line of the file), returning
/// the campaign identity and the experiment index the shard holds.
pub fn parse_header(bytes: &[u8]) -> Option<(DatasetHeader, usize)> {
    let (payload, _) = split_line(bytes)?;
    if !payload.starts_with("{\"dataset_schema_version\":") {
        return None;
    }
    let header = DatasetHeader {
        dataset_schema_version: u32::try_from(u64_field(payload, "dataset_schema_version")?)
            .ok()?,
        fingerprint: u64_field(payload, "fingerprint")?,
        seed: u64_field(payload, "seed")?,
        total: usize::try_from(u64_field(payload, "total")?).ok()?,
    };
    let index = usize::try_from(u64_field(payload, "index")?).ok()?;
    Some((header, index))
}

/// Shard filename for an experiment index (zero-padded so lexicographic
/// directory order matches index order).
pub fn shard_file_name(index: usize) -> String {
    format!("exp-{index:06}.jsonl")
}

/// Destination for exported experiments.
///
/// Implementations must be safe to call from multiple worker threads and
/// must tolerate the same experiment being exported more than once with
/// identical bytes (steal re-execution, cache replay after a resume).
pub trait DatasetSink: Send + Sync + std::fmt::Debug {
    /// Exports one labeled experiment. Called once per finished
    /// experiment, before its journal row is appended, so a resumed
    /// campaign never leaves a journaled row without its shard.
    fn export(&self, export: &ExperimentExport) -> io::Result<()>;
}

/// The no-op sink: accepts and discards every export.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl DatasetSink for NullSink {
    fn export(&self, _export: &ExperimentExport) -> io::Result<()> {
        Ok(())
    }
}

/// Sink writing one `exp-<index>.jsonl` shard per experiment into a
/// directory, via atomic temp+rename publication (the same idempotent
/// pattern the result cache uses), so any number of workers can export
/// into the same directory concurrently.
#[derive(Debug)]
pub struct DirSink {
    root: PathBuf,
    seq: AtomicU64,
}

impl DirSink {
    /// Opens (creating if needed) a dataset directory.
    pub fn create(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DirSink {
            root,
            seq: AtomicU64::new(0),
        })
    }

    /// The directory shards are written into.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

impl DatasetSink for DirSink {
    fn export(&self, export: &ExperimentExport) -> io::Result<()> {
        let bytes = render_experiment(export);
        let dest = self.root.join(shard_file_name(export.label.index));
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self.root.join(format!(".tmp-{}-{seq}", std::process::id()));
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
        }
        match std::fs::rename(&tmp, &dest) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_export(index: usize) -> ExperimentExport {
        ExperimentExport {
            header: DatasetHeader {
                dataset_schema_version: DATASET_SCHEMA_VERSION,
                fingerprint: 0xDEAD_BEEF,
                seed: 42,
                total: 8,
            },
            label: ExperimentLabel {
                index,
                attack_model: Some("delay".into()),
                attack_parameter: None,
                attack_value: Some(2.0),
                attack_start_s: Some(17.0),
                attack_duration_s: Some(6.0),
                targets: vec![2],
                verdict: "severe".into(),
                max_decel_mps2: 7.25,
                nr_collisions: 1,
            },
            capture: DatasetCapture {
                frames: vec![FrameRecord {
                    time_ns: 1_500_000_000,
                    tx: 0,
                    rx: 1,
                    delay_ns: 501_000,
                    snir_db: Some(23.5),
                    fate: FrameFate::Received,
                    attack_active: false,
                }],
                steps: vec![StepRecord {
                    time_ns: 1_500_000_000,
                    vehicle: 1,
                    pos_m: 35.0,
                    speed_mps: 23.0,
                    accel_mps2: -0.25,
                    leader: Some(0),
                    gap_m: Some(16.5),
                    hard_braking: false,
                    collision: false,
                    attack_active: false,
                }],
                frames_dropped: 0,
                steps_dropped: 0,
            },
        }
    }

    #[test]
    fn render_is_byte_stable_and_length_delimited() {
        let export = sample_export(3);
        let a = render_experiment(&export);
        let b = render_experiment(&export);
        assert_eq!(a, b);
        // Every line parses back out through the length-delimited reader
        // and carries a JSON object payload.
        let mut rest = a.as_slice();
        let mut lines = 0;
        while !rest.is_empty() {
            let (payload, tail) = split_line(rest).expect("well-formed line");
            assert!(payload.starts_with('{') && payload.ends_with('}'));
            rest = tail;
            lines += 1;
        }
        assert_eq!(lines, 3); // header + 1 frame + 1 step
    }

    #[test]
    fn rendered_lines_match_the_pinned_schema() {
        // Golden bytes: any change here is a schema change and must bump
        // DATASET_SCHEMA_VERSION.
        let bytes = render_experiment(&sample_export(3));
        let text = std::str::from_utf8(&bytes).unwrap();
        let mut lines = Vec::new();
        let mut rest = bytes.as_slice();
        while !rest.is_empty() {
            let (payload, tail) = split_line(rest).unwrap();
            lines.push(payload.to_string());
            rest = tail;
        }
        assert_eq!(
            lines[0],
            "{\"dataset_schema_version\":1,\"fingerprint\":3735928559,\"seed\":42,\"total\":8,\
             \"experiment\":{\"index\":3,\"attack_model\":\"delay\",\"attack_parameter\":null,\
             \"attack_value\":2,\"attack_start_s\":17,\"attack_duration_s\":6,\"targets\":[2],\
             \"verdict\":\"severe\",\"max_decel_mps2\":7.25,\"nr_collisions\":1}}"
        );
        assert_eq!(
            lines[1],
            "{\"kind\":\"frame\",\"time_ns\":1500000000,\"tx\":0,\"rx\":1,\"delay_ns\":501000,\
             \"snir_db\":23.5,\"fate\":\"received\",\"attack_active\":false}"
        );
        assert_eq!(
            lines[2],
            "{\"kind\":\"step\",\"time_ns\":1500000000,\"vehicle\":1,\"pos_m\":35,\
             \"speed_mps\":23,\"accel_mps2\":-0.25,\"leader\":0,\"gap_m\":16.5,\
             \"hard_braking\":false,\"collision\":false,\"attack_active\":false}"
        );
        // Each line is delimited as `<payload-len>\t<payload>\n`.
        assert!(text.starts_with(&format!("{}\t{{", lines[0].len())));
    }

    #[test]
    fn header_round_trips() {
        let export = sample_export(5);
        let bytes = render_experiment(&export);
        let (header, index) = parse_header(&bytes).expect("header parses");
        assert_eq!(header, export.header);
        assert_eq!(index, 5);
        // A label string containing a decoy numeric field must not confuse
        // the extractor: identity fields render before any string value.
        let mut decoy = export;
        decoy.label.verdict = "\"total\":999".into();
        let bytes = render_experiment(&decoy);
        let (header, index) = parse_header(&bytes).expect("header parses");
        assert_eq!(header.total, 8);
        assert_eq!(index, 5);
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\u000ad\"");
    }

    #[test]
    fn torn_lines_are_rejected() {
        let export = sample_export(0);
        let bytes = render_experiment(&export);
        // Truncate inside the first line: the length prefix promises more
        // bytes than are present, so the reader must refuse, not misparse.
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        assert!(split_line(&bytes[..first_nl]).is_none());
        assert!(split_line(&bytes[..first_nl - 3]).is_none());
        assert!(split_line(b"notanumber\t{}\n").is_none());
        assert!(split_line(b"2\t{}").is_none()); // missing newline
    }

    #[test]
    fn capture_is_bounded_with_dropped_counters() {
        let mut c = DatasetCapture::default();
        let f = sample_export(0).capture.frames[0];
        let s = sample_export(0).capture.steps[0];
        for _ in 0..5 {
            c.push_frame_capped(f, 3);
            c.push_step_capped(s, 2);
        }
        assert_eq!(c.frames.len(), 3);
        assert_eq!(c.frames_dropped, 2);
        assert_eq!(c.steps.len(), 2);
        assert_eq!(c.steps_dropped, 3);
        assert!(!c.is_empty());
        assert!(DatasetCapture::default().is_empty());
    }

    #[test]
    fn dropped_trailer_appears_only_when_rows_were_dropped() {
        let mut export = sample_export(0);
        assert!(!String::from_utf8(render_experiment(&export))
            .unwrap()
            .contains("\"kind\":\"dropped\""));
        export.capture.frames_dropped = 7;
        assert!(String::from_utf8(render_experiment(&export))
            .unwrap()
            .contains("\"kind\":\"dropped\""));
    }

    #[test]
    fn dir_sink_publishes_idempotently() {
        let dir = std::env::temp_dir().join(format!("comfase-dataset-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = DirSink::create(&dir).expect("sink opens");
        let export = sample_export(2);
        sink.export(&export).expect("first export");
        let first = std::fs::read(dir.join(shard_file_name(2))).expect("shard exists");
        // Re-export (steal re-execution) replaces the shard with the same
        // bytes and leaves no temp files behind.
        sink.export(&export).expect("second export");
        let second = std::fs::read(dir.join(shard_file_name(2))).expect("shard exists");
        assert_eq!(first, second);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("readable")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
