//! The [`Recorder`] trait and its implementations.
//!
//! Instrumentation points in the simulation stack talk to a recorder
//! through three primitives:
//!
//! - **counters** — monotone `u64` values under `'static` dotted names
//!   (`"kernel.dispatch.rx_end"`, `"phy.rx.lost_snir"`);
//! - **fixed-bucket histograms** — every observation site supplies its
//!   bucket layout ([`HistSpec`]) so the histogram shape is a property of
//!   the code, not of the data;
//! - **trace events** — sim-time-stamped timeline marks collected into a
//!   bounded, pre-sized buffer (see [`ObsConfig::trace_capacity`]); once
//!   the cap is hit further events are counted in `dropped_events` instead
//!   of growing memory without bound.
//!
//! Everything recorded here is part of deterministic run state: values
//! depend only on the seed and the configuration, never on wall time,
//! thread count, or execution mode (fork vs. scratch).

use std::borrow::Cow;
use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use comfase_des::stats::Histogram;
use comfase_des::time::SimTime;

use crate::dataset::{DatasetCapture, FrameRecord, StepRecord};
use crate::trace::{TraceEvent, TraceKind};

/// Bucket layout of a fixed-bucket histogram: `bins` equal-width bins over
/// `[lo, hi)` (out-of-range observations land in underflow/overflow).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSpec {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge.
    pub hi: f64,
    /// Number of equal-width bins.
    pub bins: usize,
}

impl HistSpec {
    /// Builds the empty histogram for this layout.
    pub fn build(&self) -> Histogram {
        Histogram::new(self.lo, self.hi, self.bins)
    }
}

/// Telemetry sink for one simulation run.
///
/// Object-safe so worlds can hold `&mut dyn Recorder` where convenient;
/// the concrete [`SimRecorder`] enum is what simulation state stores (it
/// stays `Clone` for snapshot/fork execution).
pub trait Recorder {
    /// `true` if counters/histograms are being kept. Callers may use this
    /// to skip building expensive observation values.
    fn enabled(&self) -> bool {
        false
    }

    /// `true` if trace events are being kept.
    fn trace_enabled(&self) -> bool {
        false
    }

    /// Adds `n` to the named counter.
    fn add(&mut self, _key: &'static str, _n: u64) {}

    /// Increments the named counter by one.
    fn inc(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Records one observation into the named fixed-bucket histogram.
    /// The first observation of a key fixes its layout from `spec`.
    fn observe(&mut self, _key: &'static str, _spec: HistSpec, _value: f64) {}

    /// Records a timeline event (kept only while the bounded buffer has
    /// room; see [`MemRecorder::dropped_events`]).
    fn trace_event(&mut self, _time: SimTime, _track: u32, _name: &'static str, _kind: TraceKind) {}

    /// `true` if dataset rows are being captured. Instrumentation sites
    /// guard on this before assembling a record, so disabled runs pay one
    /// branch and zero allocation on the frame path.
    fn dataset_enabled(&self) -> bool {
        false
    }

    /// Captures one per-frame dataset row (bounded; see
    /// [`crate::dataset::FRAMES_CAP`]).
    fn record_frame(&mut self, _f: FrameRecord) {}

    /// Captures one per-control-step dataset row (bounded; see
    /// [`crate::dataset::STEPS_CAP`]).
    fn record_step(&mut self, _s: StepRecord) {}
}

/// The zero-cost recorder: every method is a no-op the optimiser removes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// Observability configuration of one world/engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsConfig {
    /// Keep counters and histograms.
    pub metrics: bool,
    /// Keep up to this many trace events (0 disables tracing). The event
    /// buffer is pre-sized to this cap (clamped for sanity) and never
    /// reallocates; events past the cap only bump `dropped_events`.
    pub trace_capacity: usize,
    /// Capture per-frame/per-step dataset rows (see [`crate::dataset`]).
    /// Folded into campaign fingerprints and cache config hashes: a
    /// capture-on run is a different campaign identity than a capture-off
    /// run, because its run logs carry extra state.
    pub dataset: bool,
}

/// Default trace-event cap used by [`ObsConfig::with_trace`]: enough for a
/// 60 s paper run at full beacon rate, small enough to stay cheap.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Pre-sizing clamp: a pathological cap (`usize::MAX`) must not turn into
/// a pathological allocation.
const PRESIZE_CLAMP: usize = 1 << 20;

/// Counter bumped when an observation arrives with a [`HistSpec`] that
/// conflicts with the layout fixed by the key's first observation.
pub const SPEC_CONFLICTS: &str = "obs.spec_conflicts";

impl ObsConfig {
    /// Everything off — the default, with zero recording cost.
    pub fn disabled() -> Self {
        ObsConfig::default()
    }

    /// Counters and histograms on, tracing off. This is what campaign
    /// metrics collection uses.
    pub fn metrics_only() -> Self {
        ObsConfig {
            metrics: true,
            trace_capacity: 0,
            dataset: false,
        }
    }

    /// Counters, histograms, and a bounded trace buffer
    /// ([`DEFAULT_TRACE_CAPACITY`] events).
    pub fn with_trace() -> Self {
        ObsConfig {
            metrics: true,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            dataset: false,
        }
    }

    /// This configuration with dataset capture switched on.
    pub fn with_dataset(mut self) -> Self {
        self.dataset = true;
        self
    }

    /// `true` if this configuration records nothing at all.
    pub fn is_disabled(&self) -> bool {
        !self.metrics && self.trace_capacity == 0 && !self.dataset
    }
}

/// In-memory recorder: counters, histograms, and a bounded event buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct MemRecorder {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, (HistSpec, Histogram)>,
    events: Vec<TraceEvent>,
    trace_capacity: usize,
    dropped_events: u64,
    metrics: bool,
    dataset: Option<Box<DatasetCapture>>,
}

impl MemRecorder {
    /// Creates a recorder for the given configuration. The event buffer is
    /// allocated once, up front, at the configured cap.
    pub fn new(config: ObsConfig) -> Self {
        MemRecorder {
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            events: Vec::with_capacity(config.trace_capacity.min(PRESIZE_CLAMP)),
            trace_capacity: config.trace_capacity,
            dropped_events: 0,
            metrics: config.metrics,
            dataset: config.dataset.then(|| Box::new(DatasetCapture::default())),
        }
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The recorded events, oldest first (the buffer keeps the *first*
    /// `trace_capacity` events of the run; later ones are dropped so the
    /// timeline start — where attacks are injected — is always complete).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of trace events discarded after the buffer filled up.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Freezes the recorded state into a serializable snapshot.
    pub fn into_snapshot(self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            histograms: self
                .histograms
                .into_iter()
                .map(|(k, (_spec, v))| (k.to_string(), v))
                .collect(),
            events: self.events,
            dropped_events: self.dropped_events,
            dataset: self.dataset.map(|b| *b),
        }
    }
}

impl Recorder for MemRecorder {
    fn enabled(&self) -> bool {
        self.metrics
    }

    fn trace_enabled(&self) -> bool {
        self.trace_capacity > 0
    }

    fn add(&mut self, key: &'static str, n: u64) {
        if self.metrics {
            *self.counters.entry(key).or_insert(0) += n;
        }
    }

    fn observe(&mut self, key: &'static str, spec: HistSpec, value: f64) {
        if !self.metrics {
            return;
        }
        let (stored, hist) = self
            .histograms
            .entry(key)
            .or_insert_with(|| (spec, spec.build()));
        if *stored != spec {
            // A histogram's layout is fixed by its first observation. A
            // later observation arriving with a different spec would be
            // silently misbucketed; keep the original layout but make the
            // conflict visible in the snapshot, and fail fast in
            // sim-sanitizer builds.
            debug_assert!(
                false,
                "histogram {key:?} observed with conflicting spec {spec:?} (layout fixed as {stored:?})"
            );
            *self.counters.entry(SPEC_CONFLICTS).or_insert(0) += 1;
        }
        hist.record(value);
    }

    fn trace_event(&mut self, time: SimTime, track: u32, name: &'static str, kind: TraceKind) {
        if self.trace_capacity == 0 {
            return;
        }
        if self.events.len() >= self.trace_capacity {
            self.dropped_events += 1;
            return;
        }
        self.events.push(TraceEvent {
            time,
            track,
            name: Cow::Borrowed(name),
            kind,
        });
    }

    fn dataset_enabled(&self) -> bool {
        self.dataset.is_some()
    }

    fn record_frame(&mut self, f: FrameRecord) {
        if let Some(capture) = &mut self.dataset {
            capture.push_frame(f);
        }
    }

    fn record_step(&mut self, s: StepRecord) {
        if let Some(capture) = &mut self.dataset {
            capture.push_step(s);
        }
    }
}

/// The recorder handle simulation state owns.
///
/// A two-variant enum instead of a boxed trait object so that:
///
/// - the world stays `Clone` (snapshot/fork execution clones recorded
///   telemetry along with the rest of the state);
/// - the disabled path is one branch on a discriminant — cheap enough to
///   leave instrumentation unconditionally compiled in.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum SimRecorder {
    /// Recording disabled (the default).
    #[default]
    Null,
    /// Recording into an in-memory [`MemRecorder`].
    Mem(Box<MemRecorder>),
}

impl SimRecorder {
    /// Builds the right variant for a configuration: [`SimRecorder::Null`]
    /// when everything is off, so disabled runs pay nothing.
    pub fn new(config: ObsConfig) -> Self {
        if config.is_disabled() {
            SimRecorder::Null
        } else {
            SimRecorder::Mem(Box::new(MemRecorder::new(config)))
        }
    }

    /// Freezes recorded state into a snapshot (empty for
    /// [`SimRecorder::Null`]).
    pub fn into_snapshot(self) -> MetricsSnapshot {
        match self {
            SimRecorder::Null => MetricsSnapshot::default(),
            SimRecorder::Mem(m) => m.into_snapshot(),
        }
    }
}

impl Recorder for SimRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        match self {
            SimRecorder::Null => false,
            SimRecorder::Mem(m) => m.enabled(),
        }
    }

    #[inline]
    fn trace_enabled(&self) -> bool {
        match self {
            SimRecorder::Null => false,
            SimRecorder::Mem(m) => m.trace_enabled(),
        }
    }

    #[inline]
    fn add(&mut self, key: &'static str, n: u64) {
        if let SimRecorder::Mem(m) = self {
            m.add(key, n);
        }
    }

    #[inline]
    fn observe(&mut self, key: &'static str, spec: HistSpec, value: f64) {
        if let SimRecorder::Mem(m) = self {
            m.observe(key, spec, value);
        }
    }

    #[inline]
    fn trace_event(&mut self, time: SimTime, track: u32, name: &'static str, kind: TraceKind) {
        if let SimRecorder::Mem(m) = self {
            m.trace_event(time, track, name, kind);
        }
    }

    #[inline]
    fn dataset_enabled(&self) -> bool {
        match self {
            SimRecorder::Null => false,
            SimRecorder::Mem(m) => m.dataset_enabled(),
        }
    }

    #[inline]
    fn record_frame(&mut self, f: FrameRecord) {
        if let SimRecorder::Mem(m) = self {
            m.record_frame(f);
        }
    }

    #[inline]
    fn record_step(&mut self, s: StepRecord) {
        if let SimRecorder::Mem(m) = self {
            m.record_step(s);
        }
    }
}

/// Frozen, serializable telemetry of one run. Lives inside the run log, so
/// it participates in the fork-vs-scratch bit-identity assertions like any
/// other run state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Recorded trace events (empty unless tracing was enabled).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub events: Vec<TraceEvent>,
    /// Trace events dropped by the buffer cap.
    #[serde(default)]
    pub dropped_events: u64,
    /// Captured dataset rows (present only when [`ObsConfig::dataset`] was
    /// on, so existing artifacts serialize byte-identically).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dataset: Option<DatasetCapture>,
}

impl MetricsSnapshot {
    /// Value of a counter (0 if absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
            && self.dataset.as_ref().is_none_or(|d| d.is_empty())
    }

    /// Moves the captured dataset rows out of the snapshot (leaving
    /// `None`), so the campaign layer can export them without cloning.
    pub fn take_dataset(&mut self) -> Option<DatasetCapture> {
        self.dataset.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(r: &mut impl Recorder, ns: i64) {
        r.trace_event(SimTime::from_nanos(ns), 1, "e", TraceKind::Mark);
    }

    #[test]
    fn null_recorder_records_nothing() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        assert!(!r.trace_enabled());
        r.inc("x");
        r.observe(
            "h",
            HistSpec {
                lo: 0.0,
                hi: 1.0,
                bins: 4,
            },
            0.5,
        );
        mark(&mut r, 1);
    }

    #[test]
    fn mem_recorder_counts_and_observes() {
        let mut r = MemRecorder::new(ObsConfig::metrics_only());
        assert!(r.enabled());
        r.inc("a.b");
        r.add("a.b", 2);
        r.inc("z");
        let spec = HistSpec {
            lo: 0.0,
            hi: 10.0,
            bins: 5,
        };
        r.observe("h", spec, 3.0);
        r.observe("h", spec, 7.0);
        assert_eq!(r.counter("a.b"), 3);
        assert_eq!(r.counter("missing"), 0);
        let snap = r.into_snapshot();
        assert_eq!(snap.counter("a.b"), 3);
        assert_eq!(snap.counter("z"), 1);
        assert_eq!(snap.histograms["h"].total(), 2);
    }

    #[test]
    fn event_buffer_is_bounded_with_dropped_counter() {
        let mut r = MemRecorder::new(ObsConfig {
            metrics: false,
            trace_capacity: 3,
            dataset: false,
        });
        assert!(r.trace_enabled());
        for i in 0..10 {
            mark(&mut r, i);
        }
        assert_eq!(r.events().len(), 3);
        assert_eq!(r.dropped_events(), 7);
        // The kept events are the earliest ones.
        assert_eq!(r.events()[0].time, SimTime::from_nanos(0));
        assert_eq!(r.events()[2].time, SimTime::from_nanos(2));
        let snap = r.into_snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.dropped_events, 7);
    }

    #[test]
    fn event_buffer_is_presized_and_never_grows() {
        let r = MemRecorder::new(ObsConfig {
            metrics: false,
            trace_capacity: 100,
            dataset: false,
        });
        assert!(r.events.capacity() >= 100);
        // A pathological cap must not cause a pathological allocation.
        let big = MemRecorder::new(ObsConfig {
            metrics: false,
            trace_capacity: usize::MAX,
            dataset: false,
        });
        assert!(big.events.capacity() <= super::PRESIZE_CLAMP);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn conflicting_hist_specs_are_counted_not_misbucketed() {
        let mut r = MemRecorder::new(ObsConfig::metrics_only());
        let spec = HistSpec {
            lo: 0.0,
            hi: 10.0,
            bins: 5,
        };
        let other = HistSpec {
            lo: 0.0,
            hi: 100.0,
            bins: 5,
        };
        r.observe("h", spec, 3.0);
        r.observe("h", other, 7.0); // conflicting layout
        assert_eq!(r.counter(SPEC_CONFLICTS), 1);
        // The layout fixed by the first observation stays in force.
        let snap = r.into_snapshot();
        assert_eq!(snap.histograms["h"].total(), 2);
        assert_eq!(snap.counter(SPEC_CONFLICTS), 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "conflicting spec")]
    fn conflicting_hist_specs_trip_the_sim_sanitizer() {
        let mut r = MemRecorder::new(ObsConfig::metrics_only());
        r.observe(
            "h",
            HistSpec {
                lo: 0.0,
                hi: 10.0,
                bins: 5,
            },
            3.0,
        );
        r.observe(
            "h",
            HistSpec {
                lo: 0.0,
                hi: 100.0,
                bins: 5,
            },
            7.0,
        );
    }

    #[test]
    fn dataset_capture_follows_config_and_clones_with_forks() {
        use crate::dataset::FrameRecord;
        let frame = FrameRecord {
            time_ns: 1_000,
            tx: 0,
            rx: 1,
            delay_ns: 500,
            snir_db: Some(20.0),
            fate: crate::dataset::FrameFate::Received,
            attack_active: false,
        };
        // Capture off: record_frame is a no-op and the snapshot omits the
        // dataset block entirely.
        let mut off = SimRecorder::new(ObsConfig::metrics_only());
        assert!(!off.dataset_enabled());
        off.record_frame(frame);
        assert!(off.into_snapshot().dataset.is_none());
        // Capture on: rows accumulate and fork clones carry them.
        let mut on = SimRecorder::new(ObsConfig::metrics_only().with_dataset());
        assert!(on.dataset_enabled());
        on.record_frame(frame);
        let mut fork = on.clone();
        fork.record_frame(frame);
        on.record_frame(frame);
        assert_eq!(on.into_snapshot(), fork.into_snapshot());
    }

    #[test]
    fn sim_recorder_null_for_disabled_config() {
        let r = SimRecorder::new(ObsConfig::disabled());
        assert_eq!(r, SimRecorder::Null);
        assert!(r.into_snapshot().is_empty());
        let r = SimRecorder::new(ObsConfig::metrics_only());
        assert!(matches!(r, SimRecorder::Mem(_)));
    }

    #[test]
    fn sim_recorder_clones_carry_recorded_state() {
        let mut r = SimRecorder::new(ObsConfig::metrics_only());
        r.inc("x");
        let mut fork = r.clone();
        fork.inc("x");
        r.inc("x");
        // Diverged after the fork point, identically.
        assert_eq!(r.into_snapshot(), fork.into_snapshot());
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let mut r = MemRecorder::new(ObsConfig::with_trace());
        r.inc("k");
        mark(&mut r, 5);
        let snap = r.into_snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snap);
    }
}
