//! # comfase-des — discrete-event simulation kernel
//!
//! The OMNeT++ substrate of ComFASE-RS: a small, deterministic
//! discrete-event simulation kernel that the rest of the stack (traffic,
//! wireless, platooning, and the ComFASE engine itself) is built on.
//!
//! The kernel provides exactly what OMNeT++ provides to Veins:
//!
//! - [`time::SimTime`] / [`time::SimDuration`] — fixed-point simulation time
//!   (integer nanoseconds), so event ordering is exact and reproducible;
//! - [`queue::EventQueue`] — the future event set with OMNeT++'s
//!   `(time, priority, insertion order)` delivery semantics and O(1) lazy
//!   cancellation;
//! - [`sim::Simulator`] — the kernel proper: clock + event queue + seeded
//!   RNG streams, driven by the owner via [`sim::Simulator::pop_due`];
//! - [`rng::RngStream`] — per-component deterministic random streams
//!   (xoshiro256++ seeded via SplitMix64), platform-independent;
//! - [`stats`] — OMNeT++-style result recording (scalars, output vectors,
//!   histograms) used for vehicle traces and experiment logs;
//! - [`log::EventLog`] — a bounded in-memory event log for debugging runs.
//!
//! # Example
//!
//! A tiny two-node ping simulation:
//!
//! ```
//! use comfase_des::sim::Simulator;
//! use comfase_des::time::{SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev {
//!     Ping,
//!     Pong,
//! }
//!
//! let mut sim = Simulator::new(1);
//! sim.schedule_in(SimDuration::from_millis(1), Ev::Ping);
//! let mut pongs = 0;
//! while let Some((_, ev)) = sim.pop_due(SimTime::from_secs(1)) {
//!     match ev {
//!         Ev::Ping => {
//!             sim.schedule_in(SimDuration::from_millis(1), Ev::Pong);
//!         }
//!         Ev::Pong => pongs += 1,
//!     }
//! }
//! assert_eq!(pongs, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod log;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;

pub use queue::{EventId, EventQueue};
pub use rng::{RngStream, StreamId};
pub use sim::{BreachKind, BudgetBreach, EventBudget, Simulator};
pub use stats::{Recorder, RunningStats, TimeSeries};
pub use time::{SimDuration, SimTime};
