//! The simulation kernel: current time plus the future event set.
//!
//! [`Simulator`] is deliberately minimal — it owns the clock and the event
//! queue, and hands out deterministic RNG streams. Higher layers (the
//! co-simulation "world" in the `comfase` crate) own all model state and
//! drive the kernel with [`Simulator::pop_due`], which fits Rust ownership:
//!
//! ```
//! use comfase_des::sim::Simulator;
//! use comfase_des::time::{SimTime, SimDuration};
//!
//! #[derive(Debug)]
//! enum Ev { Tick }
//!
//! let mut sim = Simulator::new(42);
//! sim.schedule_in(SimDuration::from_millis(10), Ev::Tick);
//! let mut ticks = 0;
//! while let Some((_t, _ev)) = sim.pop_due(SimTime::from_secs(1)) {
//!     ticks += 1;
//! }
//! sim.advance_to(SimTime::from_secs(1));
//! assert_eq!(ticks, 1);
//! assert_eq!(sim.now(), SimTime::from_secs(1));
//! ```

use crate::queue::{EventId, EventPriority, EventQueue};
use crate::rng::{RngStream, StreamId};
use crate::time::{SimDuration, SimTime};

/// Resource budget enforced by the kernel — the deterministic watchdog.
///
/// Both limits are measured in *simulation* quantities (events delivered
/// since t = 0, kernel clock), never host time, so a breach happens at the
/// exact same event on every worker-thread count and in both snapshot/fork
/// and from-scratch execution. The default is unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventBudget {
    /// Maximum events the kernel may deliver (counted from t = 0, so a
    /// forked run and a from-scratch run agree — the delivered counter is
    /// part of the snapshot state).
    pub max_delivered: Option<u64>,
    /// Latest kernel-clock timestamp an event may be delivered at.
    pub max_sim_time: Option<SimTime>,
}

impl EventBudget {
    /// No limits (the default).
    pub const UNLIMITED: EventBudget = EventBudget {
        max_delivered: None,
        max_sim_time: None,
    };

    /// True when no limit is configured.
    pub fn is_unlimited(&self) -> bool {
        self.max_delivered.is_none() && self.max_sim_time.is_none()
    }
}

/// Which budget dimension was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreachKind {
    /// [`EventBudget::max_delivered`] was reached.
    Delivered,
    /// [`EventBudget::max_sim_time`] was reached.
    SimTime,
}

/// Sticky record of a budget breach.
///
/// A breach is detected lazily: only when a due event *would* exceed the
/// budget does [`Simulator::pop_due`] refuse to deliver it and record the
/// breach. A run that simply finishes under budget never breaches, and the
/// recorded fields are pure simulation state — identical across execution
/// modes and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetBreach {
    /// Exhausted dimension.
    pub kind: BreachKind,
    /// Timestamp of the due event that was refused delivery.
    pub at: SimTime,
    /// Events delivered when the breach was detected.
    pub delivered: u64,
}

/// Discrete-event simulation kernel over event payload type `E`.
///
/// When `E: Clone` the kernel is `Clone`: a clone is a bit-exact snapshot of
/// clock, pending events, and seed, so execution resumed from the clone is
/// indistinguishable from the original continuing (RNG streams are derived
/// statelessly from the seed and are unaffected by snapshotting).
#[derive(Debug, Clone)]
pub struct Simulator<E> {
    now: SimTime,
    queue: EventQueue<E>,
    seed: u64,
    budget: EventBudget,
    breach: Option<BudgetBreach>,
}

impl<E> Simulator<E> {
    /// Creates a kernel at t = 0 with the given base RNG seed.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            seed,
            budget: EventBudget::UNLIMITED,
            breach: None,
        }
    }

    /// Installs a resource budget. Replaces any previous budget; does not
    /// clear an already-recorded breach.
    pub fn set_budget(&mut self, budget: EventBudget) {
        self.budget = budget;
    }

    /// The currently installed budget.
    pub fn budget(&self) -> EventBudget {
        self.budget
    }

    /// The recorded budget breach, if one happened.
    pub fn breach(&self) -> Option<BudgetBreach> {
        self.breach
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The base RNG seed this kernel was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives the deterministic RNG stream with the given id.
    ///
    /// Equal `(seed, id)` always yields the same sequence; see
    /// [`RngStream::derive`].
    pub fn rng(&self, id: StreamId) -> RngStream {
        RngStream::derive(self.seed, id)
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (before [`Simulator::now`]).
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        self.queue.schedule(time, event)
    }

    /// Schedules an event after a relative delay (which must be >= 0).
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        assert!(!delay.is_negative(), "negative delay: {delay}");
        self.queue.schedule(self.now + delay, event)
    }

    /// Schedules with an explicit same-time delivery priority
    /// (lower delivers first).
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn schedule_at_with_priority(
        &mut self,
        time: SimTime,
        priority: EventPriority,
        event: E,
    ) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        self.queue.schedule_with_priority(time, priority, event)
    }

    /// Cancels a pending event; returns `true` if it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Pops the next event due at or before `limit`, advancing the clock to
    /// its timestamp. Returns `None` when no event is due by `limit`
    /// (the clock is then left untouched; call [`Simulator::advance_to`]).
    ///
    /// When a budget is installed and the next due event would exceed it,
    /// the event is *not* delivered: the kernel records a sticky
    /// [`BudgetBreach`] (see [`Simulator::breach`]) and this returns `None`
    /// for the rest of the kernel's life.
    pub fn pop_due(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        if self.breach.is_some() {
            return None;
        }
        if !self.budget.is_unlimited() {
            let next = self.queue.peek_time()?;
            if next > limit {
                return None;
            }
            let delivered = self.queue.delivered_total();
            let kind = if self
                .budget
                .max_delivered
                .is_some_and(|max| delivered >= max)
            {
                Some(BreachKind::Delivered)
            } else if self.budget.max_sim_time.is_some_and(|max| next > max) {
                Some(BreachKind::SimTime)
            } else {
                None
            };
            if let Some(kind) = kind {
                self.breach = Some(BudgetBreach {
                    kind,
                    at: next,
                    delivered,
                });
                return None;
            }
        }
        let (t, e) = self.queue.pop_at_or_before(limit)?;
        // Sim sanitizer: the kernel clock must never run backwards, and the
        // queue must honour the limit (either would silently desynchronise
        // forked runs from scratch runs).
        debug_assert!(
            t >= self.now,
            "kernel clock would run backwards: event at {t} while now is {}",
            self.now
        );
        debug_assert!(t <= limit, "event at {t} delivered past the limit {limit}");
        self.now = t;
        Some((t, e))
    }

    /// Advances the clock to `time` without processing events.
    ///
    /// Used to land exactly on a phase boundary (e.g. `attackStartTime`)
    /// after draining all events due before it. Does nothing if `time` is in
    /// the past.
    pub fn advance_to(&mut self, time: SimTime) {
        if time > self.now {
            self.now = time;
        }
    }

    /// Time of the next pending event, if any.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of live pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.queue.delivered_total()
    }

    /// Total events ever scheduled.
    pub fn scheduled(&self) -> u64 {
        self.queue.scheduled_total()
    }

    /// Total events cancelled before delivery.
    pub fn cancelled(&self) -> u64 {
        self.queue.cancelled_total()
    }

    /// Runs the kernel with a handler closure until `limit`, then advances
    /// the clock to `limit`. Returns the number of events processed.
    ///
    /// This is a convenience for self-contained simulations whose state lives
    /// in the closure; composed worlds use [`Simulator::pop_due`] directly.
    pub fn run_until<F>(&mut self, limit: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Simulator<E>, SimTime, E),
    {
        let mut n = 0;
        while let Some((t, e)) = self.pop_due(limit) {
            handler(self, t, e);
            n += 1;
        }
        self.advance_to(limit);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn clock_follows_events() {
        let mut sim = Simulator::new(0);
        sim.schedule_at(SimTime::from_secs(5), Ev::Tick(1));
        sim.schedule_at(SimTime::from_secs(2), Ev::Tick(0));
        let (t, e) = sim.pop_due(SimTime::from_secs(10)).unwrap();
        assert_eq!(t, SimTime::from_secs(2));
        assert_eq!(e, Ev::Tick(0));
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn pop_due_stops_at_limit() {
        let mut sim = Simulator::new(0);
        sim.schedule_at(SimTime::from_secs(5), Ev::Tick(1));
        assert!(sim.pop_due(SimTime::from_secs(4)).is_none());
        assert_eq!(sim.now(), SimTime::ZERO, "clock untouched when nothing due");
        assert!(sim.pop_due(SimTime::from_secs(5)).is_some());
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let mut sim: Simulator<Ev> = Simulator::new(0);
        sim.advance_to(SimTime::from_secs(3));
        sim.advance_to(SimTime::from_secs(1));
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new(0);
        sim.advance_to(SimTime::from_secs(2));
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(0));
    }

    #[test]
    #[should_panic(expected = "negative delay")]
    fn negative_delay_panics() {
        let mut sim = Simulator::new(0);
        sim.schedule_in(SimDuration::from_secs(-1), Ev::Tick(0));
    }

    #[test]
    fn run_until_processes_chain_and_lands_on_limit() {
        let mut sim = Simulator::new(0);
        sim.schedule_in(SimDuration::from_millis(100), Ev::Tick(0));
        let mut count = 0u32;
        let n = sim.run_until(SimTime::from_secs(1), |sim, _t, Ev::Tick(k)| {
            count += 1;
            if k < 20 {
                sim.schedule_in(SimDuration::from_millis(100), Ev::Tick(k + 1));
            }
        });
        // Ticks at 0.1..=1.0s => 10 events; tick 10 schedules one at 1.1s (not due).
        assert_eq!(n, 10);
        assert_eq!(count, 10);
        assert_eq!(sim.now(), SimTime::from_secs(1));
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn cancellation_through_kernel() {
        let mut sim = Simulator::new(0);
        let id = sim.schedule_at(SimTime::from_secs(1), Ev::Tick(9));
        assert!(sim.cancel(id));
        assert!(sim.pop_due(SimTime::from_secs(2)).is_none());
    }

    #[test]
    fn rng_streams_are_stable_per_seed() {
        let sim: Simulator<Ev> = Simulator::new(77);
        let mut a = sim.rng(StreamId(3));
        let mut b = sim.rng(StreamId(3));
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(sim.seed(), 77);
    }

    #[test]
    fn event_budget_breach_is_sticky_and_survives_clone() {
        let mut sim = Simulator::new(0);
        for k in 0..5 {
            sim.schedule_at(SimTime::from_secs(k + 1), Ev::Tick(k as u32));
        }
        sim.set_budget(EventBudget {
            max_delivered: Some(3),
            max_sim_time: None,
        });
        let mut delivered = 0;
        while sim.pop_due(SimTime::from_secs(10)).is_some() {
            delivered += 1;
        }
        assert_eq!(delivered, 3);
        let breach = sim.breach().expect("budget must breach");
        assert_eq!(breach.kind, BreachKind::Delivered);
        assert_eq!(breach.delivered, 3);
        assert_eq!(breach.at, SimTime::from_secs(4));
        // Sticky: further pops return None even though events are pending.
        assert_eq!(sim.pending(), 2);
        assert!(sim.pop_due(SimTime::from_secs(10)).is_none());
        // Clock stayed at the last delivered event.
        assert_eq!(sim.now(), SimTime::from_secs(3));
        // The breach is part of the snapshot state.
        let clone = sim.clone();
        assert_eq!(clone.breach(), sim.breach());
    }

    #[test]
    fn sim_time_budget_refuses_late_events() {
        let mut sim = Simulator::new(0);
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(0));
        sim.schedule_at(SimTime::from_secs(5), Ev::Tick(1));
        sim.set_budget(EventBudget {
            max_delivered: None,
            max_sim_time: Some(SimTime::from_secs(2)),
        });
        assert!(sim.pop_due(SimTime::from_secs(10)).is_some());
        assert!(sim.pop_due(SimTime::from_secs(10)).is_none());
        let breach = sim.breach().expect("sim-time budget must breach");
        assert_eq!(breach.kind, BreachKind::SimTime);
        assert_eq!(breach.at, SimTime::from_secs(5));
        assert_eq!(breach.delivered, 1);
    }

    #[test]
    fn budget_never_breaches_when_run_finishes_under_it() {
        let mut sim = Simulator::new(0);
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(0));
        sim.set_budget(EventBudget {
            max_delivered: Some(1),
            max_sim_time: None,
        });
        assert!(sim.pop_due(SimTime::from_secs(10)).is_some());
        // Counter sits exactly at the limit, but no due event remains, so
        // the run completes without a breach.
        assert!(sim.pop_due(SimTime::from_secs(10)).is_none());
        assert_eq!(sim.breach(), None);
    }

    #[test]
    fn budget_ignores_events_beyond_the_pop_limit() {
        let mut sim = Simulator::new(0);
        sim.schedule_at(SimTime::from_secs(5), Ev::Tick(0));
        sim.set_budget(EventBudget {
            max_delivered: Some(0),
            max_sim_time: None,
        });
        // The only event is past the limit: no delivery attempt, no breach.
        assert!(sim.pop_due(SimTime::from_secs(4)).is_none());
        assert_eq!(sim.breach(), None);
    }

    #[test]
    fn counters() {
        let mut sim = Simulator::new(0);
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(0));
        sim.schedule_at(SimTime::from_secs(2), Ev::Tick(1));
        sim.pop_due(SimTime::from_secs(3));
        assert_eq!(sim.scheduled(), 2);
        assert_eq!(sim.delivered(), 1);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.next_event_time(), Some(SimTime::from_secs(2)));
    }
}
