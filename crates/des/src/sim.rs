//! The simulation kernel: current time plus the future event set.
//!
//! [`Simulator`] is deliberately minimal — it owns the clock and the event
//! queue, and hands out deterministic RNG streams. Higher layers (the
//! co-simulation "world" in the `comfase` crate) own all model state and
//! drive the kernel with [`Simulator::pop_due`], which fits Rust ownership:
//!
//! ```
//! use comfase_des::sim::Simulator;
//! use comfase_des::time::{SimTime, SimDuration};
//!
//! #[derive(Debug)]
//! enum Ev { Tick }
//!
//! let mut sim = Simulator::new(42);
//! sim.schedule_in(SimDuration::from_millis(10), Ev::Tick);
//! let mut ticks = 0;
//! while let Some((_t, _ev)) = sim.pop_due(SimTime::from_secs(1)) {
//!     ticks += 1;
//! }
//! sim.advance_to(SimTime::from_secs(1));
//! assert_eq!(ticks, 1);
//! assert_eq!(sim.now(), SimTime::from_secs(1));
//! ```

use crate::queue::{EventId, EventPriority, EventQueue};
use crate::rng::{RngStream, StreamId};
use crate::time::{SimDuration, SimTime};

/// Discrete-event simulation kernel over event payload type `E`.
///
/// When `E: Clone` the kernel is `Clone`: a clone is a bit-exact snapshot of
/// clock, pending events, and seed, so execution resumed from the clone is
/// indistinguishable from the original continuing (RNG streams are derived
/// statelessly from the seed and are unaffected by snapshotting).
#[derive(Debug, Clone)]
pub struct Simulator<E> {
    now: SimTime,
    queue: EventQueue<E>,
    seed: u64,
}

impl<E> Simulator<E> {
    /// Creates a kernel at t = 0 with the given base RNG seed.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            seed,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The base RNG seed this kernel was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives the deterministic RNG stream with the given id.
    ///
    /// Equal `(seed, id)` always yields the same sequence; see
    /// [`RngStream::derive`].
    pub fn rng(&self, id: StreamId) -> RngStream {
        RngStream::derive(self.seed, id)
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (before [`Simulator::now`]).
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        self.queue.schedule(time, event)
    }

    /// Schedules an event after a relative delay (which must be >= 0).
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        assert!(!delay.is_negative(), "negative delay: {delay}");
        self.queue.schedule(self.now + delay, event)
    }

    /// Schedules with an explicit same-time delivery priority
    /// (lower delivers first).
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn schedule_at_with_priority(
        &mut self,
        time: SimTime,
        priority: EventPriority,
        event: E,
    ) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        self.queue.schedule_with_priority(time, priority, event)
    }

    /// Cancels a pending event; returns `true` if it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Pops the next event due at or before `limit`, advancing the clock to
    /// its timestamp. Returns `None` when no event is due by `limit`
    /// (the clock is then left untouched; call [`Simulator::advance_to`]).
    pub fn pop_due(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop_at_or_before(limit)?;
        // Sim sanitizer: the kernel clock must never run backwards, and the
        // queue must honour the limit (either would silently desynchronise
        // forked runs from scratch runs).
        debug_assert!(
            t >= self.now,
            "kernel clock would run backwards: event at {t} while now is {}",
            self.now
        );
        debug_assert!(t <= limit, "event at {t} delivered past the limit {limit}");
        self.now = t;
        Some((t, e))
    }

    /// Advances the clock to `time` without processing events.
    ///
    /// Used to land exactly on a phase boundary (e.g. `attackStartTime`)
    /// after draining all events due before it. Does nothing if `time` is in
    /// the past.
    pub fn advance_to(&mut self, time: SimTime) {
        if time > self.now {
            self.now = time;
        }
    }

    /// Time of the next pending event, if any.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of live pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.queue.delivered_total()
    }

    /// Total events ever scheduled.
    pub fn scheduled(&self) -> u64 {
        self.queue.scheduled_total()
    }

    /// Total events cancelled before delivery.
    pub fn cancelled(&self) -> u64 {
        self.queue.cancelled_total()
    }

    /// Runs the kernel with a handler closure until `limit`, then advances
    /// the clock to `limit`. Returns the number of events processed.
    ///
    /// This is a convenience for self-contained simulations whose state lives
    /// in the closure; composed worlds use [`Simulator::pop_due`] directly.
    pub fn run_until<F>(&mut self, limit: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Simulator<E>, SimTime, E),
    {
        let mut n = 0;
        while let Some((t, e)) = self.pop_due(limit) {
            handler(self, t, e);
            n += 1;
        }
        self.advance_to(limit);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn clock_follows_events() {
        let mut sim = Simulator::new(0);
        sim.schedule_at(SimTime::from_secs(5), Ev::Tick(1));
        sim.schedule_at(SimTime::from_secs(2), Ev::Tick(0));
        let (t, e) = sim.pop_due(SimTime::from_secs(10)).unwrap();
        assert_eq!(t, SimTime::from_secs(2));
        assert_eq!(e, Ev::Tick(0));
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn pop_due_stops_at_limit() {
        let mut sim = Simulator::new(0);
        sim.schedule_at(SimTime::from_secs(5), Ev::Tick(1));
        assert!(sim.pop_due(SimTime::from_secs(4)).is_none());
        assert_eq!(sim.now(), SimTime::ZERO, "clock untouched when nothing due");
        assert!(sim.pop_due(SimTime::from_secs(5)).is_some());
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let mut sim: Simulator<Ev> = Simulator::new(0);
        sim.advance_to(SimTime::from_secs(3));
        sim.advance_to(SimTime::from_secs(1));
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new(0);
        sim.advance_to(SimTime::from_secs(2));
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(0));
    }

    #[test]
    #[should_panic(expected = "negative delay")]
    fn negative_delay_panics() {
        let mut sim = Simulator::new(0);
        sim.schedule_in(SimDuration::from_secs(-1), Ev::Tick(0));
    }

    #[test]
    fn run_until_processes_chain_and_lands_on_limit() {
        let mut sim = Simulator::new(0);
        sim.schedule_in(SimDuration::from_millis(100), Ev::Tick(0));
        let mut count = 0u32;
        let n = sim.run_until(SimTime::from_secs(1), |sim, _t, Ev::Tick(k)| {
            count += 1;
            if k < 20 {
                sim.schedule_in(SimDuration::from_millis(100), Ev::Tick(k + 1));
            }
        });
        // Ticks at 0.1..=1.0s => 10 events; tick 10 schedules one at 1.1s (not due).
        assert_eq!(n, 10);
        assert_eq!(count, 10);
        assert_eq!(sim.now(), SimTime::from_secs(1));
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn cancellation_through_kernel() {
        let mut sim = Simulator::new(0);
        let id = sim.schedule_at(SimTime::from_secs(1), Ev::Tick(9));
        assert!(sim.cancel(id));
        assert!(sim.pop_due(SimTime::from_secs(2)).is_none());
    }

    #[test]
    fn rng_streams_are_stable_per_seed() {
        let sim: Simulator<Ev> = Simulator::new(77);
        let mut a = sim.rng(StreamId(3));
        let mut b = sim.rng(StreamId(3));
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(sim.seed(), 77);
    }

    #[test]
    fn counters() {
        let mut sim = Simulator::new(0);
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(0));
        sim.schedule_at(SimTime::from_secs(2), Ev::Tick(1));
        sim.pop_due(SimTime::from_secs(3));
        assert_eq!(sim.scheduled(), 2);
        assert_eq!(sim.delivered(), 1);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.next_event_time(), Some(SimTime::from_secs(2)));
    }
}
