//! Lightweight in-memory event log for simulation debugging.
//!
//! Experiments run thousands of head-less simulations; writing to stderr
//! would be both slow and useless. Instead each run can collect a bounded
//! [`EventLog`] that analysis code (or a failing test) inspects afterwards.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Severity of a log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LogLevel {
    /// Fine-grained tracing (frame-level events).
    Trace,
    /// Model-level events (beacons sent, attacks toggled).
    Info,
    /// Unusual but non-fatal conditions (frame lost to interference).
    Warn,
    /// Incidents (vehicle collision, assertion-adjacent conditions).
    Error,
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LogLevel::Trace => "TRACE",
            LogLevel::Info => "INFO",
            LogLevel::Warn => "WARN",
            LogLevel::Error => "ERROR",
        };
        f.write_str(s)
    }
}

/// One recorded log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Simulation time at which the entry was recorded.
    pub time: SimTime,
    /// Entry severity.
    pub level: LogLevel,
    /// Originating component, e.g. `"channel"` or `"veh.2.mac"`.
    pub source: String,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {}",
            self.time, self.level, self.source, self.message
        )
    }
}

/// Bounded in-memory log.
///
/// When the capacity is reached the oldest entries are discarded (keeping the
/// tail, which is where incidents live). A `min_level` filter keeps bulk
/// tracing cheap when disabled.
///
/// # Examples
///
/// ```
/// use comfase_des::log::{EventLog, LogLevel};
/// use comfase_des::time::SimTime;
///
/// let mut log = EventLog::new(LogLevel::Info, 100);
/// log.push(SimTime::ZERO, LogLevel::Trace, "mac", "ignored");
/// log.push(SimTime::ZERO, LogLevel::Error, "traffic", "collision");
/// assert_eq!(log.entries().len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventLog {
    min_level: LogLevel,
    capacity: usize,
    entries: VecDeque<LogEntry>,
    dropped: u64,
}

/// Pre-sizing clamp for [`EventLog::new`]: a huge configured capacity must
/// not turn into a huge up-front allocation.
const PRESIZE_CLAMP: usize = 4096;

impl EventLog {
    /// Creates a log keeping at most `capacity` entries at `min_level` or
    /// above. The ring buffer is pre-sized (up to a clamp) so steady-state
    /// logging neither reallocates nor shifts entries.
    pub fn new(min_level: LogLevel, capacity: usize) -> Self {
        EventLog {
            min_level,
            capacity,
            entries: VecDeque::with_capacity(capacity.min(PRESIZE_CLAMP)),
            dropped: 0,
        }
    }

    /// A log that records nothing (level filter above Error is impossible,
    /// so this uses zero capacity).
    pub fn disabled() -> Self {
        EventLog::new(LogLevel::Error, 0)
    }

    /// Records an entry if it passes the level filter.
    pub fn push(
        &mut self,
        time: SimTime,
        level: LogLevel,
        source: impl Into<String>,
        message: impl Into<String>,
    ) {
        if level < self.min_level || self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(LogEntry {
            time,
            level,
            source: source.into(),
            message: message.into(),
        });
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> &VecDeque<LogEntry> {
        &self.entries
    }

    /// Number of entries discarded due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Entries at `level` or above.
    pub fn at_least(&self, level: LogLevel) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter().filter(move |e| e.level >= level)
    }

    /// Configured minimum level.
    pub fn min_level(&self) -> LogLevel {
        self.min_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_filter() {
        let mut log = EventLog::new(LogLevel::Warn, 10);
        log.push(SimTime::ZERO, LogLevel::Info, "a", "no");
        log.push(SimTime::ZERO, LogLevel::Warn, "a", "yes");
        log.push(SimTime::ZERO, LogLevel::Error, "a", "yes");
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.at_least(LogLevel::Error).count(), 1);
    }

    #[test]
    fn capacity_drops_oldest() {
        let mut log = EventLog::new(LogLevel::Trace, 3);
        for i in 0..5 {
            log.push(SimTime::from_secs(i), LogLevel::Info, "s", format!("m{i}"));
        }
        assert_eq!(log.entries().len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.entries()[0].message, "m2");
        assert_eq!(log.entries()[2].message, "m4");
    }

    #[test]
    fn buffer_is_presized_and_clamped() {
        let log = EventLog::new(LogLevel::Trace, 100);
        assert!(log.entries.capacity() >= 100);
        let huge = EventLog::new(LogLevel::Trace, usize::MAX);
        assert!(huge.entries.capacity() <= 2 * PRESIZE_CLAMP);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::disabled();
        log.push(SimTime::ZERO, LogLevel::Error, "s", "m");
        assert!(log.entries().is_empty());
    }

    #[test]
    fn display_formats() {
        let e = LogEntry {
            time: SimTime::from_secs(1),
            level: LogLevel::Error,
            source: "traffic".into(),
            message: "collision".into(),
        };
        assert_eq!(e.to_string(), "[1.000000s ERROR traffic] collision");
        assert_eq!(LogLevel::Trace.to_string(), "TRACE");
    }
}
