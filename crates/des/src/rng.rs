//! Deterministic random number streams.
//!
//! OMNeT++ gives every module its own RNG stream derived from a global seed,
//! so a simulation is reproducible and components do not perturb each other's
//! random sequences. [`RngStream`] reproduces that: streams are derived from
//! `(campaign_seed, stream_id)` with SplitMix64 and then generated with
//! xoshiro256++, a small, fast, well-tested generator. The implementation is
//! self-contained so sequences are identical on every platform and toolchain.

use serde::{Deserialize, Serialize};

/// Identifies an independent random stream within a simulation.
///
/// Streams with different ids are statistically independent even when the
/// base seed is identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamId(pub u64);

/// A deterministic xoshiro256++ random stream.
///
/// # Examples
///
/// ```
/// use comfase_des::rng::{RngStream, StreamId};
///
/// let mut a = RngStream::derive(42, StreamId(7));
/// let mut b = RngStream::derive(42, StreamId(7));
/// assert_eq!(a.next_u64(), b.next_u64()); // reproducible
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngStream {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngStream {
    /// Creates a stream directly from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        RngStream { s }
    }

    /// Derives an independent stream from a base seed and a stream id.
    ///
    /// This is the constructor simulation components should use: the world
    /// hands each module `derive(campaign_seed, module_stream_id)`.
    pub fn derive(base_seed: u64, stream: StreamId) -> Self {
        // Mix the stream id through SplitMix64 before combining so that
        // consecutive ids produce unrelated seeds.
        let mut sm = stream.0 ^ 0x6A09_E667_F3BC_C909;
        let mixed = splitmix64(&mut sm);
        RngStream::new(base_seed ^ mixed.rotate_left(17))
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` without modulo bias (Lemire's method).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        // Rejection sampling on the 128-bit product keeps the result unbiased.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli trial with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.uniform() < p
    }

    /// Normally distributed value (Box–Muller transform).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Draw u1 from (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = RngStream::derive(1234, StreamId(5));
        let mut b = RngStream::derive(1234, StreamId(5));
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_stream_ids_differ() {
        let mut a = RngStream::derive(1234, StreamId(0));
        let mut b = RngStream::derive(1234, StreamId(1));
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngStream::derive(1, StreamId(0));
        let mut b = RngStream::derive(2, StreamId(0));
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut r = RngStream::new(7);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_near_half() {
        let mut r = RngStream::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_over_small_range() {
        let mut r = RngStream::new(3);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.below(5) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "counts {counts:?}");
        }
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut r = RngStream::new(11);
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn normal_moments() {
        let mut r = RngStream::new(5);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = RngStream::new(17);
        let n = 100_000;
        let mean = (0..n).map(|_| r.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = RngStream::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "overwhelmingly unlikely to be identity"
        );
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        RngStream::new(1).below(0);
    }
}
