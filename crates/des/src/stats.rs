//! Statistics collection, modelled on OMNeT++ signals and result recording.
//!
//! Simulations record two kinds of results: **scalars** (summary statistics
//! of a stream of observations, via [`RunningStats`]) and **vectors** (full
//! time series, via [`TimeSeries`]). A [`Recorder`] groups named metrics for
//! one simulation run, playing the role of OMNeT++'s `.sca`/`.vec` output.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Numerically stable running summary statistics (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use comfase_des::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), Some(1.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
    sum: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:?} max={:?}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// Sample count at which a series chunk is sealed and becomes immutable.
///
/// Sealed chunks are structurally shared (`Arc`) between a snapshot and its
/// forks, so cloning a long series costs one pointer per chunk plus at most
/// one partially filled tail — the copy-on-write substrate behind cheap
/// `World` forking. The boundary depends only on the sample *count*, never
/// on sharing history, so two series with equal samples are structurally
/// equal no matter how they were built.
const CHUNK_SAMPLES: usize = 1024;

/// One sealed, immutable run of samples (always `CHUNK_SAMPLES` long).
#[derive(Debug, PartialEq)]
struct Chunk {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

/// A recorded `(time, value)` series — an OMNeT++ output vector.
///
/// Samples must be appended in non-decreasing time order. Internally the
/// series is a list of sealed [`Arc`]-shared chunks plus a mutable tail:
/// `clone()` is O(chunks), not O(samples), and a clone never mutates
/// through shared storage (appends only touch the private tail). The
/// serialized form stays the flat `{times, values}` pair.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    sealed: Vec<std::sync::Arc<Chunk>>,
    tail_times: Vec<SimTime>,
    tail_values: Vec<f64>,
}

impl PartialEq for TimeSeries {
    fn eq(&self, other: &Self) -> bool {
        // Logical, not structural: chunk layout is a function of sample
        // count, but a clone may share while its twin owns.
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty series with room for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        let cap = n.min(CHUNK_SAMPLES);
        TimeSeries {
            sealed: Vec::new(),
            tail_times: Vec::with_capacity(cap),
            tail_values: Vec::with_capacity(cap),
        }
    }

    /// Appends one sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the previous sample.
    pub fn record(&mut self, time: SimTime, value: f64) {
        if let Some(last) = self.last_time() {
            assert!(
                time >= last,
                "time series must be recorded in order: {time} < {last}"
            );
        }
        self.tail_times.push(time);
        self.tail_values.push(value);
        if self.tail_times.len() == CHUNK_SAMPLES {
            self.seal_tail();
        }
    }

    /// Moves the full tail into a sealed immutable chunk.
    fn seal_tail(&mut self) {
        let times = std::mem::replace(&mut self.tail_times, Vec::with_capacity(CHUNK_SAMPLES));
        let values = std::mem::replace(&mut self.tail_values, Vec::with_capacity(CHUNK_SAMPLES));
        self.sealed
            .push(std::sync::Arc::new(Chunk { times, values }));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sealed.len() * CHUNK_SAMPLES + self.tail_times.len()
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail_times.is_empty()
    }

    /// Time of the most recent sample, if any.
    pub fn last_time(&self) -> Option<SimTime> {
        self.tail_times
            .last()
            .or_else(|| self.sealed.last().and_then(|c| c.times.last()))
            .copied()
    }

    /// Value of the most recent sample, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.tail_values
            .last()
            .or_else(|| self.sealed.last().and_then(|c| c.values.last()))
            .copied()
    }

    /// Iterates over `(time, value)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.sealed
            .iter()
            .flat_map(|c| c.times.iter().copied().zip(c.values.iter().copied()))
            .chain(
                self.tail_times
                    .iter()
                    .copied()
                    .zip(self.tail_values.iter().copied()),
            )
    }

    /// Iterates over the recorded values in time order.
    pub fn iter_values(&self) -> impl Iterator<Item = f64> + '_ {
        self.sealed
            .iter()
            .flat_map(|c| c.values.iter().copied())
            .chain(self.tail_values.iter().copied())
    }

    /// Sample time at logical index `i` (`i < self.len()`).
    fn time_at(&self, i: usize) -> SimTime {
        let chunk = i / CHUNK_SAMPLES;
        if chunk < self.sealed.len() {
            self.sealed[chunk].times[i % CHUNK_SAMPLES]
        } else {
            self.tail_times[i - self.sealed.len() * CHUNK_SAMPLES]
        }
    }

    /// Sample value at logical index `i` (`i < self.len()`).
    fn value_at(&self, i: usize) -> f64 {
        let chunk = i / CHUNK_SAMPLES;
        if chunk < self.sealed.len() {
            self.sealed[chunk].values[i % CHUNK_SAMPLES]
        } else {
            self.tail_values[i - self.sealed.len() * CHUNK_SAMPLES]
        }
    }

    /// Largest value, if any.
    pub fn max_value(&self) -> Option<f64> {
        self.iter_values().reduce(f64::max)
    }

    /// Smallest value, if any.
    pub fn min_value(&self) -> Option<f64> {
        self.iter_values().reduce(f64::min)
    }

    /// Value at or before `time` (sample-and-hold), if any sample exists
    /// at or before it.
    pub fn sample_at(&self, time: SimTime) -> Option<f64> {
        // Binary search over logical indices for the last sample ≤ `time`.
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.time_at(mid) <= time {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            None
        } else {
            Some(self.value_at(lo - 1))
        }
    }

    /// Restricts to samples within `[from, to]` (inclusive).
    pub fn window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.iter().filter(move |(t, _)| *t >= from && *t <= to)
    }

    /// Bytes of sample storage held in sealed chunks — the part of the
    /// series a `clone()` shares instead of copying. Diagnostic for the
    /// fork-cost bench; not part of any simulation result.
    pub fn shared_bytes(&self) -> usize {
        self.sealed.len()
            * CHUNK_SAMPLES
            * (std::mem::size_of::<SimTime>() + std::mem::size_of::<f64>())
    }
}

/// Flat serialized form: the historical `{times, values}` pair, so the
/// chunked representation is invisible in every artifact.
#[derive(Serialize, Deserialize)]
struct TimeSeriesWire {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl Serialize for TimeSeries {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let (times, values) = self.iter().unzip();
        TimeSeriesWire { times, values }.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for TimeSeries {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let wire = TimeSeriesWire::deserialize(deserializer)?;
        if wire.times.len() != wire.values.len() {
            return Err(serde::de::Error::custom(
                "time series times/values length mismatch",
            ));
        }
        let mut ts = TimeSeries::with_capacity(wire.times.len());
        for (t, v) in wire.times.into_iter().zip(wire.values) {
            if ts.last_time().is_some_and(|last| t < last) {
                return Err(serde::de::Error::custom("time series samples out of order"));
            }
            ts.record(t, v);
        }
        Ok(ts)
    }
}

/// A fixed-bin histogram over a closed value range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "invalid histogram range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the range top.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(low_edge, high_edge)` of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }
}

/// Named metric store for one simulation run.
///
/// Plays the role of OMNeT++'s result files: modules record scalars and
/// vectors under hierarchical string names (e.g. `"veh.1.speed"`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Recorder {
    scalars: BTreeMap<String, RunningStats>,
    vectors: BTreeMap<String, TimeSeries>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation to the named scalar statistic.
    pub fn record_scalar(&mut self, name: &str, value: f64) {
        self.scalars
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Appends a sample to the named output vector.
    pub fn record_vector(&mut self, name: &str, time: SimTime, value: f64) {
        self.vectors
            .entry(name.to_owned())
            .or_default()
            .record(time, value);
    }

    /// Looks up a scalar statistic.
    pub fn scalar(&self, name: &str) -> Option<&RunningStats> {
        self.scalars.get(name)
    }

    /// Looks up an output vector.
    pub fn vector(&self, name: &str) -> Option<&TimeSeries> {
        self.vectors.get(name)
    }

    /// Iterates over all scalar statistics in name order.
    pub fn scalars(&self) -> impl Iterator<Item = (&str, &RunningStats)> {
        self.scalars.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over all output vectors in name order.
    pub fn vectors(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.vectors.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..33] {
            a.record(x);
        }
        for &x in &xs[33..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.record(1.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn time_series_ordering_and_lookup() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(1), 10.0);
        ts.record(SimTime::from_secs(2), 20.0);
        ts.record(SimTime::from_secs(4), 40.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.sample_at(SimTime::from_secs(3)), Some(20.0));
        assert_eq!(ts.sample_at(SimTime::from_secs(4)), Some(40.0));
        assert_eq!(ts.sample_at(SimTime::from_millis(500)), None);
        assert_eq!(ts.max_value(), Some(40.0));
        assert_eq!(ts.min_value(), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "must be recorded in order")]
    fn time_series_rejects_out_of_order() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(2), 1.0);
        ts.record(SimTime::from_secs(1), 2.0);
    }

    #[test]
    fn time_series_window() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.record(SimTime::from_secs(i), i as f64);
        }
        let w: Vec<f64> = ts
            .window(SimTime::from_secs(3), SimTime::from_secs(6))
            .map(|(_, v)| v)
            .collect();
        assert_eq!(w, vec![3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.99, -1.0, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.bins(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 8);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }

    #[test]
    fn recorder_scalars_and_vectors() {
        let mut r = Recorder::new();
        r.record_scalar("veh.0.decel", 1.0);
        r.record_scalar("veh.0.decel", 3.0);
        r.record_vector("veh.0.speed", SimTime::from_secs(1), 30.0);
        assert_eq!(r.scalar("veh.0.decel").unwrap().count(), 2);
        assert_eq!(r.vector("veh.0.speed").unwrap().len(), 1);
        assert!(r.scalar("missing").is_none());
        assert_eq!(r.scalars().count(), 1);
        assert_eq!(r.vectors().count(), 1);
    }
}
