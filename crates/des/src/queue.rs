//! The future event set: a deterministic priority queue of scheduled events.
//!
//! Ordering follows OMNeT++ semantics: events are delivered in order of
//! `(time, priority, insertion sequence)`. Two events scheduled for the same
//! instant with the same priority are delivered in the order they were
//! scheduled, which makes runs reproducible regardless of heap internals.

use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeSet, BinaryHeap};

use crate::time::SimTime;

/// Handle to a scheduled event, usable for cancellation.
///
/// Ids are unique per [`EventQueue`] and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// Raw id value (mainly useful for logging).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Delivery priority for events that share a timestamp.
///
/// Lower values are delivered first (OMNeT++ convention). The default is 0.
pub type EventPriority = i16;

#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    priority: EventPriority,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then(self.priority.cmp(&other.priority))
            .then(self.seq.cmp(&other.seq))
    }
}

/// A future event set (FES) over an arbitrary event payload type `E`.
///
/// This is the kernel data structure of the simulator: everything that
/// happens later — traffic steps, MAC timers, frame arrivals — is an entry
/// here. Events can be [cancelled](EventQueue::cancel) by id; cancellation is
/// O(1) (lazy removal on pop).
///
/// When `E: Clone` the whole queue is `Clone`: a clone is an exact snapshot
/// (same pending events, same sequence counter, same statistics), so a run
/// resumed from the clone delivers the identical event sequence.
///
/// # Examples
///
/// ```
/// use comfase_des::queue::EventQueue;
/// use comfase_des::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "sooner"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    // BTreeSet (not HashSet) so snapshot/fork state stays order-deterministic.
    cancelled: BTreeSet<u64>,
    next_seq: u64,
    scheduled_total: u64,
    delivered_total: u64,
    cancelled_total: u64,
    // Sim-sanitizer state: timestamp of the last delivered event, so debug
    // builds catch any non-monotone delivery at the queue boundary.
    last_popped: Option<SimTime>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            next_seq: 0,
            scheduled_total: 0,
            delivered_total: 0,
            cancelled_total: 0,
            last_popped: None,
        }
    }

    /// Schedules `payload` for delivery at `time` with default priority.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        self.schedule_with_priority(time, 0, payload)
    }

    /// Schedules `payload` for delivery at `time` with an explicit priority
    /// (lower priorities are delivered first among same-time events).
    pub fn schedule_with_priority(
        &mut self,
        time: SimTime,
        priority: EventPriority,
        payload: E,
    ) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Reverse(Scheduled {
            time,
            priority,
            seq,
            payload,
        }));
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet been delivered or cancelled.
    /// The payload is dropped lazily when the event would have fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        let fresh = self.cancelled.insert(id.0);
        if fresh {
            self.cancelled_total += 1;
        }
        fresh
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    /// Removes and returns the next event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let Reverse(s) = self.heap.pop()?;
        self.delivered_total += 1;
        debug_assert!(
            self.last_popped.is_none_or(|last| s.time >= last),
            "future event set delivered out of order: {} after {}",
            s.time,
            self.last_popped.unwrap_or(SimTime::ZERO),
        );
        self.last_popped = Some(s.time);
        Some((s.time, s.payload))
    }

    /// Removes and returns the next event if it is due at or before `limit`.
    pub fn pop_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= limit => self.pop(),
            _ => None,
        }
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.live_cancelled()
    }

    /// `true` if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events delivered via `pop`.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Total number of successful cancellations.
    ///
    /// A cancelled event that was already cancelled (or never existed)
    /// does not count; this is the number of events that were scheduled
    /// and will never be delivered.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        // A cleared queue may be reused for a fresh run from t = 0, so the
        // monotonicity sanitizer restarts too.
        self.last_popped = None;
    }

    fn live_cancelled(&self) -> usize {
        // Cancelled ids are removed from the set as their events are skipped,
        // so the set only contains ids that are still in the heap.
        self.cancelled.len()
    }

    fn skip_cancelled(&mut self) {
        while let Some(Reverse(s)) = self.heap.peek() {
            if self.cancelled.remove(&s.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3), 'c');
        q.schedule(t(1), 'a');
        q.schedule(t(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn same_time_fifo_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn priority_breaks_time_ties() {
        let mut q = EventQueue::new();
        q.schedule_with_priority(t(5), 1, "low");
        q.schedule_with_priority(t(5), -1, "high");
        q.schedule_with_priority(t(5), 0, "mid");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["high", "mid", "low"]);
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(999)));
    }

    #[test]
    fn pop_at_or_before_respects_limit() {
        let mut q = EventQueue::new();
        q.schedule(t(1), "a");
        q.schedule(t(3), "b");
        assert_eq!(q.pop_at_or_before(t(2)), Some((t(1), "a")));
        assert_eq!(q.pop_at_or_before(t(2)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.delivered_total(), 1);
    }

    #[test]
    fn cancelled_total_counts_only_fresh_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        let b = q.schedule(t(2), ());
        assert_eq!(q.cancelled_total(), 0);
        q.cancel(a);
        q.cancel(a); // double cancel: not counted again
        q.cancel(EventId(999)); // unknown id: not counted
        q.cancel(b);
        assert_eq!(q.cancelled_total(), 2);
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(4), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(4)));
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        let mut now = SimTime::ZERO;
        q.schedule(now + SimDuration::from_millis(10), 0u32);
        let mut seen = Vec::new();
        while let Some((time, k)) = q.pop() {
            assert!(time >= now, "time must be monotone");
            now = time;
            seen.push(k);
            if k < 5 {
                // schedule two children, one sooner one later
                q.schedule(time + SimDuration::from_millis(5), k + 10);
                q.schedule(time + SimDuration::from_millis(1), k + 1);
            }
        }
        assert!(seen.len() > 5);
    }
}
