//! Fixed-point simulation time.
//!
//! OMNeT++ represents simulation time as a fixed-point 64-bit integer to keep
//! event ordering exact and runs reproducible. We follow the same approach:
//! [`SimTime`] is an instant measured in integer **nanoseconds** since the
//! start of the simulation, and [`SimDuration`] is a signed span with the same
//! resolution. All simulator components (traffic stepping, MAC timers, frame
//! airtime, propagation delay) operate on these types, so two runs with the
//! same seed produce bit-identical event schedules on every platform.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of nanoseconds per second, the fixed-point scale of [`SimTime`].
pub const NANOS_PER_SEC: i64 = 1_000_000_000;

/// An instant in simulation time, in integer nanoseconds from t = 0.
///
/// `SimTime` is totally ordered and exact: unlike `f64` seconds there is no
/// accumulation error when stepping a simulation millions of times.
///
/// # Examples
///
/// ```
/// use comfase_des::time::{SimTime, SimDuration};
///
/// let t = SimTime::from_secs_f64(1.5) + SimDuration::from_millis(250);
/// assert_eq!(t.as_secs_f64(), 1.75);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(i64);

/// A signed span of simulation time, in integer nanoseconds.
///
/// # Examples
///
/// ```
/// use comfase_des::time::SimDuration;
///
/// let beacon_interval = SimDuration::from_secs_f64(0.1);
/// assert_eq!(beacon_interval * 10, SimDuration::from_secs(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(i64);

impl SimTime {
    /// The simulation origin, t = 0.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (~292 years); used as "never".
    pub const MAX: SimTime = SimTime(i64::MAX);

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: i64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(us: i64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: i64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from floating-point seconds, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is not finite or does not fit in the representable
    /// range.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Raw nanosecond count since t = 0.
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// This instant as floating-point seconds (lossy beyond 2^53 ns).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier` (negative if `earlier` is later).
    pub const fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating addition: clamps at [`SimTime::MAX`] instead of wrapping.
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as "forever".
    pub const MAX: SimDuration = SimDuration(i64::MAX);

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: i64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from whole microseconds.
    pub const fn from_micros(us: i64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(ns: i64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from floating-point seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is not finite or does not fit in the representable
    /// range.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// This span as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// `true` if the span is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// `true` if the span is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Absolute value of the span.
    pub const fn abs(self) -> SimDuration {
        SimDuration(self.0.abs())
    }

    /// Returns the shorter of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

fn secs_to_nanos(secs: f64) -> i64 {
    assert!(
        secs.is_finite(),
        "simulation time must be finite, got {secs}"
    );
    let ns = (secs * NANOS_PER_SEC as f64).round();
    assert!(
        ns >= i64::MIN as f64 && ns <= i64::MAX as f64,
        "simulation time out of range: {secs} s"
    );
    ns as i64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign<SimDuration> for SimTime {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Neg for SimDuration {
    type Output = SimDuration;
    fn neg(self) -> SimDuration {
        SimDuration(-self.0)
    }
}

impl Mul<i64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: i64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<i64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: i64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div for SimDuration {
    /// Ratio of two spans (how many `rhs` fit in `self`), truncated.
    type Output = i64;
    fn div(self, rhs: SimDuration) -> i64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.6}s", self.as_secs_f64())
    }
}

impl From<SimDuration> for SimTime {
    /// Reinterprets a span from t = 0 as an instant.
    fn from(d: SimDuration) -> Self {
        SimTime(d.0)
    }
}

impl From<SimTime> for SimDuration {
    /// Reinterprets an instant as the span since t = 0.
    fn from(t: SimTime) -> Self {
        SimDuration(t.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(1500), SimTime::from_secs_f64(1.5));
        assert_eq!(SimTime::from_micros(250), SimTime::from_nanos(250_000));
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn float_conversion_rounds_to_nearest_nanosecond() {
        // 0.1 s is not representable in binary floating point; the fixed
        // point representation must still be exactly 100_000_000 ns.
        assert_eq!(SimTime::from_secs_f64(0.1).as_nanos(), 100_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.2).as_nanos(), 200_000_000);
    }

    #[test]
    fn arithmetic_is_exact() {
        let step = SimDuration::from_secs_f64(0.01);
        let mut t = SimTime::ZERO;
        for _ in 0..6000 {
            t += step;
        }
        // 6000 * 0.01 s = exactly 60 s in fixed point (would drift in f64).
        assert_eq!(t, SimTime::from_secs(60));
    }

    #[test]
    fn instant_differences_and_ordering() {
        let a = SimTime::from_secs(17);
        let b = SimTime::from_secs_f64(21.8);
        assert_eq!(b - a, SimDuration::from_secs_f64(4.8));
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!((a - b).is_negative());
        assert_eq!((a - b).abs(), b - a);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(200);
        assert_eq!(d * 5, SimDuration::from_secs(1));
        assert_eq!(d / 2, SimDuration::from_millis(100));
        assert_eq!(SimDuration::from_secs(1) / d, 5);
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn display_formats_in_seconds() {
        assert_eq!(SimTime::from_millis(1250).to_string(), "1.250000s");
        assert_eq!(SimDuration::from_millis(-30).to_string(), "-0.030000s");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_seconds_panic() {
        let _ = SimTime::from_secs_f64(f64::NAN);
    }
}
