//! Property-based tests for the DES kernel.

use comfase_des::queue::EventQueue;
use comfase_des::rng::{RngStream, StreamId};
use comfase_des::sim::Simulator;
use comfase_des::stats::{RunningStats, TimeSeries};
use comfase_des::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// Drives a self-feeding simulation (each event with value `v > 0` spawns a
/// follow-up at a deterministic offset) until `limit`, recording every
/// delivery.
fn run_feedback_sim(sim: &mut Simulator<u32>, log: &mut Vec<(i64, u32)>, limit: SimTime) {
    sim.run_until(limit, |sim, t, v| {
        log.push((t.as_nanos(), v));
        if v > 0 {
            sim.schedule_in(SimDuration::from_nanos(1 + i64::from(v) * 37), v - 1);
        }
    });
}

proptest! {
    /// Popping the queue always yields events in non-decreasing time order,
    /// whatever order they were scheduled in.
    #[test]
    fn queue_pops_in_time_order(times in proptest::collection::vec(0i64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::from_nanos(i64::MIN);
        let mut seen = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            seen += 1;
        }
        prop_assert_eq!(seen, times.len());
    }

    /// Same-time events are delivered in insertion order regardless of how
    /// many share the timestamp.
    #[test]
    fn queue_is_stable_for_ties(groups in proptest::collection::vec(0i64..10, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &g) in groups.iter().enumerate() {
            q.schedule(SimTime::from_nanos(g), i);
        }
        let mut per_time_last: std::collections::HashMap<i64, usize> = Default::default();
        while let Some((t, i)) = q.pop() {
            if let Some(&prev) = per_time_last.get(&t.as_nanos()) {
                prop_assert!(i > prev, "insertion order violated at {t}");
            }
            per_time_last.insert(t.as_nanos(), i);
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn queue_cancellation_is_exact(
        times in proptest::collection::vec(0i64..1000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times.iter().enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_nanos(t), i)))
            .collect();
        let mut expect: std::collections::HashSet<usize> =
            (0..times.len()).collect();
        for ((i, id), &c) in ids.iter().zip(cancel_mask.iter().chain(std::iter::repeat(&false))) {
            if c {
                prop_assert!(q.cancel(*id));
                expect.remove(i);
            }
        }
        let mut got = std::collections::HashSet::new();
        while let Some((_, i)) = q.pop() {
            got.insert(i);
        }
        prop_assert_eq!(got, expect);
    }

    /// Snapshotting the kernel at an arbitrary point and resuming the clone
    /// reproduces the uninterrupted execution exactly: same deliveries in
    /// the same order, same clock, same counters.
    #[test]
    fn kernel_snapshot_resume_equals_uninterrupted(
        seeds in proptest::collection::vec((0i64..1_000_000, 0u32..8), 1..100),
        cut in 0i64..1_000_000,
    ) {
        let horizon = SimTime::from_nanos(1_000_010);
        let build = || {
            let mut sim = Simulator::new(42);
            for &(t, v) in &seeds {
                sim.schedule_at(SimTime::from_nanos(t), v);
            }
            sim
        };

        // Uninterrupted reference run.
        let mut reference = build();
        let mut reference_log = Vec::new();
        run_feedback_sim(&mut reference, &mut reference_log, horizon);

        // Run to the cut point, snapshot, drop the original, resume the
        // clone to the horizon.
        let mut original = build();
        let mut resumed_log = Vec::new();
        run_feedback_sim(&mut original, &mut resumed_log, SimTime::from_nanos(cut));
        let mut resumed = original.clone();
        drop(original);
        run_feedback_sim(&mut resumed, &mut resumed_log, horizon);

        prop_assert_eq!(resumed_log, reference_log);
        prop_assert_eq!(resumed.now(), reference.now());
        prop_assert_eq!(resumed.pending(), reference.pending());
        prop_assert_eq!(resumed.scheduled(), reference.scheduled());
        prop_assert_eq!(resumed.delivered(), reference.delivered());
    }

    /// SimTime float round-trip is within 0.5 ns of the fixed-point value.
    #[test]
    fn simtime_float_roundtrip(secs in -1.0e6f64..1.0e6) {
        let t = SimTime::from_secs_f64(secs);
        let back = t.as_secs_f64();
        // Half a nanosecond of quantisation plus the f64 ulp at this magnitude.
        let tol = 0.5e-9 + secs.abs() * 4.0 * f64::EPSILON;
        prop_assert!((back - secs).abs() <= tol, "{secs} -> {back}");
    }

    /// Instant/duration arithmetic is consistent: (a + d) - a == d.
    #[test]
    fn simtime_arith_roundtrip(a in -1_000_000_000i64..1_000_000_000, d in -1_000_000_000i64..1_000_000_000) {
        let ta = SimTime::from_nanos(a);
        let dd = SimDuration::from_nanos(d);
        prop_assert_eq!((ta + dd) - ta, dd);
        prop_assert_eq!(ta + dd - dd, ta);
    }

    /// Welford merge equals sequential accumulation for arbitrary splits.
    #[test]
    fn stats_merge_equals_sequential(
        xs in proptest::collection::vec(-1.0e3f64..1.0e3, 2..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((xs.len() as f64) * split_frac) as usize;
        let mut whole = RunningStats::new();
        for &x in &xs { whole.record(x); }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..split] { a.record(x); }
        for &x in &xs[split..] { b.record(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-4);
    }

    /// Derived RNG streams with distinct ids produce distinct sequences.
    #[test]
    fn rng_streams_distinct(seed in any::<u64>(), id1 in 0u64..1000, id2 in 0u64..1000) {
        prop_assume!(id1 != id2);
        let mut a = RngStream::derive(seed, StreamId(id1));
        let mut b = RngStream::derive(seed, StreamId(id2));
        let equal = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        prop_assert!(equal <= 1, "streams nearly identical");
    }

    /// uniform_range stays within bounds.
    #[test]
    fn rng_uniform_range_in_bounds(seed in any::<u64>(), lo in -100.0f64..100.0, width in 0.001f64..100.0) {
        let mut r = RngStream::new(seed);
        let hi = lo + width;
        for _ in 0..100 {
            let x = r.uniform_range(lo, hi);
            prop_assert!(x >= lo && x < hi);
        }
    }

    /// below(n) stays within [0, n).
    #[test]
    fn rng_below_in_bounds(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut r = RngStream::new(seed);
        for _ in 0..64 {
            prop_assert!(r.below(n) < n);
        }
    }

    /// TimeSeries sample-and-hold returns the last sample at or before t.
    #[test]
    fn timeseries_sample_and_hold(raw in proptest::collection::vec((0i64..10_000, -100.0f64..100.0), 1..100), probe in 0i64..10_000) {
        let mut pts = raw;
        pts.sort_by_key(|(t, _)| *t);
        pts.dedup_by_key(|(t, _)| *t);
        let mut ts = TimeSeries::new();
        for &(t, v) in &pts {
            ts.record(SimTime::from_nanos(t), v);
        }
        let probe_t = SimTime::from_nanos(probe);
        let expect = pts.iter().rev().find(|(t, _)| *t <= probe).map(|&(_, v)| v);
        prop_assert_eq!(ts.sample_at(probe_t), expect);
    }
}
