//! Kernel validation against queueing theory: an M/M/1 queue simulated on
//! the DES kernel must reproduce the analytic utilisation and (roughly)
//! the mean number in system, and a deterministic D/D/1 system must be
//! exact. This exercises the kernel end-to-end: event scheduling, time
//! ordering, RNG streams and statistics.

use comfase_des::rng::StreamId;
use comfase_des::sim::Simulator;
use comfase_des::stats::RunningStats;
use comfase_des::time::{SimDuration, SimTime};

#[derive(Debug)]
enum Ev {
    Arrival,
    Departure,
}

struct Mm1Result {
    utilisation: f64,
    mean_in_system: f64,
    served: u64,
}

/// Simulates an M/M/1 queue for `horizon_s` seconds.
fn run_mm1(seed: u64, lambda: f64, mu: f64, horizon_s: i64) -> Mm1Result {
    let mut sim: Simulator<Ev> = Simulator::new(seed);
    let mut arrivals = sim.rng(StreamId(1));
    let mut services = sim.rng(StreamId(2));
    let horizon = SimTime::from_secs(horizon_s);

    let mut queue_len: u64 = 0; // customers in system
    let mut served = 0u64;
    // Time-weighted statistics.
    let mut last_change = SimTime::ZERO;
    let mut area_in_system = 0.0;
    let mut busy_time = 0.0;
    let mut in_system = RunningStats::new();

    let first = SimDuration::from_secs_f64(arrivals.exponential(1.0 / lambda));
    sim.schedule_in(first, Ev::Arrival);

    while let Some((now, ev)) = sim.pop_due(horizon) {
        let dt = (now - last_change).as_secs_f64();
        area_in_system += queue_len as f64 * dt;
        if queue_len > 0 {
            busy_time += dt;
        }
        last_change = now;
        in_system.record(queue_len as f64);
        match ev {
            Ev::Arrival => {
                queue_len += 1;
                if queue_len == 1 {
                    let s = SimDuration::from_secs_f64(services.exponential(1.0 / mu));
                    sim.schedule_in(s, Ev::Departure);
                }
                let next = SimDuration::from_secs_f64(arrivals.exponential(1.0 / lambda));
                sim.schedule_in(next, Ev::Arrival);
            }
            Ev::Departure => {
                assert!(queue_len > 0, "departure from an empty system");
                queue_len -= 1;
                served += 1;
                if queue_len > 0 {
                    let s = SimDuration::from_secs_f64(services.exponential(1.0 / mu));
                    sim.schedule_in(s, Ev::Departure);
                }
            }
        }
    }
    sim.advance_to(horizon);
    let total = horizon.as_secs_f64();
    Mm1Result {
        utilisation: busy_time / total,
        mean_in_system: area_in_system / total,
        served,
    }
}

#[test]
fn mm1_matches_analytic_utilisation() {
    // rho = lambda / mu = 0.5 -> L = rho / (1 - rho) = 1.0.
    let r = run_mm1(7, 5.0, 10.0, 20_000);
    assert!((r.utilisation - 0.5).abs() < 0.02, "rho {}", r.utilisation);
    assert!(
        (r.mean_in_system - 1.0).abs() < 0.15,
        "L {}",
        r.mean_in_system
    );
    // Throughput equals the arrival rate in a stable queue.
    let throughput = r.served as f64 / 20_000.0;
    assert!((throughput - 5.0).abs() < 0.1, "X {throughput}");
}

#[test]
fn mm1_heavier_load_longer_queue() {
    let light = run_mm1(3, 3.0, 10.0, 10_000);
    let heavy = run_mm1(3, 8.0, 10.0, 10_000);
    assert!(heavy.mean_in_system > light.mean_in_system * 2.0);
    assert!(heavy.utilisation > light.utilisation);
}

#[test]
fn dd1_is_exact() {
    // Deterministic arrivals every 100 ms, service 40 ms: never more than
    // one in system, utilisation exactly 0.4.
    let mut sim: Simulator<Ev> = Simulator::new(1);
    let horizon = SimTime::from_secs(100);
    let mut in_system = 0u32;
    let mut max_in_system = 0u32;
    let mut busy_ns: i64 = 0;
    sim.schedule_in(SimDuration::from_millis(100), Ev::Arrival);
    while let Some((_, ev)) = sim.pop_due(horizon) {
        match ev {
            Ev::Arrival => {
                in_system += 1;
                max_in_system = max_in_system.max(in_system);
                sim.schedule_in(SimDuration::from_millis(40), Ev::Departure);
                sim.schedule_in(SimDuration::from_millis(100), Ev::Arrival);
                busy_ns += SimDuration::from_millis(40).as_nanos();
            }
            Ev::Departure => in_system -= 1,
        }
    }
    assert_eq!(max_in_system, 1);
    // 999 or 1000 arrivals depending on the horizon boundary; utilisation
    // approaches 0.4 exactly.
    let utilisation = busy_ns as f64 / horizon.as_nanos() as f64;
    assert!((utilisation - 0.4).abs() < 0.001, "{utilisation}");
}

#[test]
fn kernel_replays_identically_across_runs() {
    let a = run_mm1(42, 5.0, 10.0, 1_000);
    let b = run_mm1(42, 5.0, 10.0, 1_000);
    assert_eq!(a.served, b.served);
    assert_eq!(a.utilisation, b.utilisation);
    assert_eq!(a.mean_in_system, b.mean_in_system);
}
