//! A minimal, comment- and string-aware tokenizer for Rust source.
//!
//! The auditor's rules are lexical: they look for identifiers and short
//! token sequences (`HashMap`, `Instant :: now`, `static mut`, a
//! `.partial_cmp(..).unwrap()` chain). A full parse is unnecessary — what
//! *is* necessary is never matching inside comments, doc comments, string
//! literals, or char literals, and knowing the line of every token. This
//! module provides exactly that, with zero dependencies, so the CI gate
//! builds instantly and cannot be broken by upstream churn.
//!
//! The lexer also extracts the two pieces of file-level metadata the rules
//! need:
//!
//! * [`AllowAnnotation`]s — `// comfase-lint: allow(<rule>, reason = "...")`
//!   comments that exempt a single site;
//! * test regions ([`test_line_ranges`]) — line spans of `#[cfg(test)]` /
//!   `#[test]` items, which are exempt from the determinism rules (tests may
//!   freely use wall clocks and hash maps; simulation state may not).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `static`, `mut`, ...).
    Ident,
    /// A punctuation token. `::` is a single token; everything else is one
    /// character.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind of token.
    pub kind: TokenKind,
    /// The token text.
    pub text: String,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// `true` if this is an identifier with the given text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// `true` if this is a punctuation token with the given text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// A parsed `// comfase-lint: allow(...)` annotation.
///
/// A well-formed annotation names a rule and carries a non-empty reason:
///
/// ```text
/// // comfase-lint: allow(hash-collections, reason = "membership-only set")
/// ```
///
/// It exempts matching violations on its own line (trailing comment) and on
/// the line directly below (standalone comment line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowAnnotation {
    /// 1-based line the annotation comment is on.
    pub line: u32,
    /// The rule name inside `allow(...)` (may be unknown; validated later).
    pub rule: String,
    /// The reason string (empty when missing — then `problem` is set).
    pub reason: String,
    /// `Some(description)` when the annotation is malformed and must be
    /// reported instead of honoured.
    pub problem: Option<String>,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All identifier/punctuation tokens outside comments and literals.
    pub tokens: Vec<Token>,
    /// All `comfase-lint:` annotations found in line comments.
    pub allows: Vec<AllowAnnotation>,
}

const MARKER: &str = "comfase-lint:";

/// Lexes `source` into tokens and lint annotations.
pub fn lex(source: &str) -> LexedFile {
    let bytes = source.as_bytes();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let comment = &source[start..i];
                if let Some(pos) = comment.find(MARKER) {
                    out.allows
                        .push(parse_annotation(line, &comment[pos + MARKER.len()..]));
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, possibly nested.
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => i = skip_string(bytes, i, &mut line),
            b'\'' => i = skip_char_or_lifetime(bytes, i, &mut line),
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let text = &source[start..i];
                // String prefixes: r"", r#""#, b"", br"", b''; also raw
                // identifiers r#name.
                match (text, bytes.get(i)) {
                    ("r" | "br" | "b" | "rb", Some(&b'"')) => {
                        i = if text.contains('r') {
                            skip_raw_string(bytes, i, 0, &mut line)
                        } else {
                            skip_string(bytes, i, &mut line)
                        };
                    }
                    ("r" | "br" | "b" | "rb", Some(&b'#')) => {
                        let mut hashes = 0usize;
                        let mut j = i;
                        while bytes.get(j) == Some(&b'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&b'"') {
                            i = skip_raw_string(bytes, j, hashes, &mut line);
                        } else {
                            // Raw identifier (r#match): lex the ident after the '#'.
                            i = j;
                            let start = i;
                            while i < bytes.len()
                                && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric())
                            {
                                i += 1;
                            }
                            out.tokens.push(Token {
                                kind: TokenKind::Ident,
                                text: source[start..i].to_string(),
                                line,
                            });
                        }
                    }
                    ("b", Some(&b'\'')) => i = skip_char_or_lifetime(bytes, i, &mut line),
                    _ => out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: text.to_string(),
                        line,
                    }),
                }
            }
            c if c.is_ascii_digit() => {
                // Numbers produce no tokens; just consume them (taking care
                // not to swallow the `..` of a range like `0..10`).
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                if bytes.get(i) == Some(&b'.')
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    i += 1;
                    while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric())
                    {
                        i += 1;
                    }
                }
            }
            b':' if bytes.get(i + 1) == Some(&b':') => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: "::".to_string(),
                    line,
                });
                i += 2;
            }
            c => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Consumes a `"..."` string starting at the opening quote (or at a `b`/`r`
/// prefix position where `bytes[i]` is the quote). Returns the index after
/// the closing quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(bytes[i], b'"');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                // Escapes cover two bytes; `\<newline>` (line continuation)
                // still advances the line counter.
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Consumes a raw string whose opening quote is at `i` with `hashes` hash
/// marks. Returns the index after the closing delimiter.
fn skip_raw_string(bytes: &[u8], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    debug_assert_eq!(bytes[i], b'"');
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if bytes[i] == b'"'
            && bytes[i + 1..].iter().take_while(|&&b| b == b'#').count() >= hashes
        {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// Consumes either a lifetime (`'a`, no token emitted) or a char literal
/// (`'x'`, `'\n'`), starting at the `'`. Returns the index after it.
fn skip_char_or_lifetime(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(bytes[i], b'\'');
    i += 1;
    if i >= bytes.len() {
        return i;
    }
    let c = bytes[i];
    if (c == b'_' || c.is_ascii_alphabetic()) && bytes.get(i + 1) != Some(&b'\'') {
        // Lifetime: consume the identifier and stop (no closing quote).
        while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
            i += 1;
        }
        return i;
    }
    // Char literal; handle escapes and give up at end of line (malformed).
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => {
                *line += 1;
                return i + 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Parses the text after `comfase-lint:` into an [`AllowAnnotation`].
fn parse_annotation(line: u32, rest: &str) -> AllowAnnotation {
    let malformed = |problem: &str| AllowAnnotation {
        line,
        rule: String::new(),
        reason: String::new(),
        problem: Some(problem.to_string()),
    };
    let rest = rest.trim();
    let Some(body) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
    else {
        return malformed("expected `allow(<rule>, reason = \"...\")`");
    };
    let Some((rule, reason_part)) = body.split_once(',') else {
        return malformed("missing `reason = \"...\"` (a non-empty reason is required)");
    };
    let rule = rule.trim().to_string();
    let Some(reason_value) = reason_part.trim().strip_prefix("reason") else {
        return malformed("expected `reason = \"...\"` after the rule name");
    };
    let Some(quoted) = reason_value.trim().strip_prefix('=') else {
        return malformed("expected `=` after `reason`");
    };
    let quoted = quoted.trim();
    let reason = quoted
        .strip_prefix('"')
        .and_then(|q| q.strip_suffix('"'))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return malformed("the reason must be a non-empty quoted string");
    }
    AllowAnnotation {
        line,
        rule,
        reason: reason.to_string(),
        problem: None,
    }
}

/// Returns the inclusive line ranges of test-only items: any item annotated
/// `#[test]` or `#[cfg(test)]` (including `mod tests { ... }` blocks).
///
/// These regions are exempt from the determinism rules.
pub fn test_line_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let Some(close) = matching(tokens, i + 1, "[", "]") else {
            break;
        };
        let attr = &tokens[i + 2..close];
        let is_test = (attr.len() == 1 && attr[0].is_ident("test"))
            || (attr.iter().any(|t| t.is_ident("cfg")) && attr.iter().any(|t| t.is_ident("test")));
        if !is_test {
            i = close + 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip any further attributes, then find the item body (or `;`).
        let mut j = close + 1;
        while tokens.get(j).is_some_and(|t| t.is_punct("#"))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct("["))
        {
            match matching(tokens, j + 1, "[", "]") {
                Some(c) => j = c + 1,
                None => return ranges,
            }
        }
        let mut end = None;
        while let Some(t) = tokens.get(j) {
            if t.is_punct(";") {
                end = Some(j);
                break;
            }
            if t.is_punct("{") {
                end = matching(tokens, j, "{", "}");
                break;
            }
            j += 1;
        }
        match end {
            Some(e) => {
                ranges.push((start_line, tokens[e].line));
                i = e + 1;
            }
            None => {
                ranges.push((start_line, u32::MAX));
                break;
            }
        }
    }
    ranges
}

/// Index of the token matching the opener at `open_idx` (`tokens[open_idx]`
/// must be `open`), or `None` if unbalanced.
fn matching(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    debug_assert!(tokens[open_idx].is_punct(open));
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            /// doc HashMap
            let s = "HashMap";
            let r = r#"HashMap"#;
            let c = 'H';
            let real = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"BTreeMap".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a HashMap<u32, u32>) {}");
        assert!(ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn numbers_and_ranges_survive() {
        let ids = idents("for i in 0..10 { let x = 1.5e3; HashSet }");
        assert!(ids.contains(&"HashSet".to_string()));
    }

    #[test]
    fn path_sep_is_one_token() {
        let lexed = lex("std::env::var");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["std", "::", "env", "::", "var"]);
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn multiline_strings_count_lines() {
        // Both a hard newline and a `\`-continuation inside a string advance
        // the line counter.
        let lexed = lex("let a = \"x\ny \\\nz\";\nHashMap");
        let t = lexed.tokens.last().unwrap();
        assert!(t.is_ident("HashMap"));
        assert_eq!(t.line, 4);
    }

    #[test]
    fn well_formed_annotation_parses() {
        let lexed = lex("// comfase-lint: allow(hash-collections, reason = \"membership only\")");
        assert_eq!(lexed.allows.len(), 1);
        let a = &lexed.allows[0];
        assert_eq!(a.rule, "hash-collections");
        assert_eq!(a.reason, "membership only");
        assert!(a.problem.is_none());
    }

    #[test]
    fn annotation_without_reason_is_malformed() {
        let lexed = lex("// comfase-lint: allow(wall-clock)");
        assert!(lexed.allows[0].problem.is_some());
        let lexed = lex("// comfase-lint: allow(wall-clock, reason = \"\")");
        assert!(lexed.allows[0].problem.is_some());
        let lexed = lex("// comfase-lint: deny(everything)");
        assert!(lexed.allows[0].problem.is_some());
    }

    #[test]
    fn cfg_test_mod_region_found() {
        let src = "struct A;\n#[cfg(test)]\nmod tests {\n fn x() {}\n}\nstruct B;";
        let lexed = lex(src);
        let ranges = test_line_ranges(&lexed.tokens);
        assert_eq!(ranges, vec![(2, 5)]);
    }

    #[test]
    fn test_fn_region_found() {
        let src = "#[test]\nfn yes() {\n body();\n}\nfn no() {}";
        let lexed = lex(src);
        let ranges = test_line_ranges(&lexed.tokens);
        assert_eq!(ranges, vec![(1, 4)]);
    }

    #[test]
    fn non_test_attrs_are_not_regions() {
        let src = "#[derive(Debug)]\nstruct A { x: u32 }";
        let lexed = lex(src);
        assert!(test_line_ranges(&lexed.tokens).is_empty());
    }

    #[test]
    fn cfg_test_on_use_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nstruct A { b: usize }";
        let lexed = lex(src);
        assert_eq!(test_line_ranges(&lexed.tokens), vec![(1, 2)]);
    }
}
