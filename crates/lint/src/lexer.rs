//! A minimal, comment- and string-aware tokenizer for Rust source.
//!
//! The auditor's rules are lexical: they look for identifiers and short
//! token sequences (`HashMap`, `Instant :: now`, `static mut`, a
//! `.partial_cmp(..).unwrap()` chain). A full parse is unnecessary — what
//! *is* necessary is never matching inside comments, doc comments, string
//! literals, or char literals, and knowing the line of every token. This
//! module provides exactly that, with zero dependencies, so the CI gate
//! builds instantly and cannot be broken by upstream churn.
//!
//! The lexer also extracts the two pieces of file-level metadata the rules
//! need:
//!
//! * [`AllowAnnotation`]s — `// comfase-lint: allow(<rule>, reason = "...")`
//!   comments that exempt a single site;
//! * test regions ([`test_line_ranges`]) — line spans of `#[cfg(test)]` /
//!   `#[test]` items, which are exempt from the determinism rules (tests may
//!   freely use wall clocks and hash maps; simulation state may not).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `static`, `mut`, ...).
    Ident,
    /// A punctuation token. `::` is a single token; everything else is one
    /// character.
    Punct,
    /// A numeric literal, with its raw text (`0`, `1.5e3`, `0.0f64`,
    /// `0x1F`). The float-reduction rule needs to see `fold` seeds.
    Number,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind of token.
    pub kind: TokenKind,
    /// The token text.
    pub text: String,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// `true` if this is an identifier with the given text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// `true` if this is a punctuation token with the given text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }

    /// `true` if this is a numeric literal of floating-point type: it has a
    /// fractional part, an exponent, or an `f32`/`f64` suffix.
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokenKind::Number {
            return false;
        }
        let t = self.text.as_str();
        if t.starts_with("0x") || t.starts_with("0o") || t.starts_with("0b") {
            return false;
        }
        t.contains('.')
            || t.ends_with("f32")
            || t.ends_with("f64")
            || t.contains('e')
            || t.contains('E')
    }
}

/// A parsed `// comfase-lint: allow(...)` annotation.
///
/// A well-formed annotation names a rule and carries a non-empty reason:
///
/// ```text
/// // comfase-lint: allow(hash-collections, reason = "membership-only set")
/// ```
///
/// It exempts matching violations on its own line (trailing comment) and on
/// the line directly below (standalone comment line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowAnnotation {
    /// 1-based line the annotation comment is on.
    pub line: u32,
    /// The rule name inside `allow(...)` (may be unknown; validated later).
    pub rule: String,
    /// The reason string (empty when missing — then `problem` is set).
    pub reason: String,
    /// `Some(description)` when the annotation is malformed and must be
    /// reported instead of honoured.
    pub problem: Option<String>,
}

/// A parsed `// comfase-lint: host-region(reason = "...")` marker.
///
/// The marker declares that the *next item* (or, when it appears before any
/// code in the file, the whole file) is host-side supervision code: it runs
/// on the campaign runner's side of the host/sim boundary and never touches
/// forked simulation state. Host-side rules (wall-clock, interior
/// mutability, sim I/O, environment reads) are exempt inside the region;
/// sim-determinism rules (hash collections, ambient RNG, float ordering,
/// float reductions) stay in force.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostRegionAnnotation {
    /// 1-based line the marker comment is on.
    pub line: u32,
    /// The justification string (why this code is host-side).
    pub reason: String,
    /// `Some(description)` when malformed; the region is then not honoured.
    pub problem: Option<String>,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All identifier/punctuation/number tokens outside comments and
    /// literals.
    pub tokens: Vec<Token>,
    /// All `comfase-lint: allow(...)` annotations found in line comments.
    pub allows: Vec<AllowAnnotation>,
    /// All `comfase-lint: host-region(...)` markers found in line comments.
    pub host_regions: Vec<HostRegionAnnotation>,
}

const MARKER: &str = "comfase-lint:";

/// Lexes `source` into tokens and lint annotations.
pub fn lex(source: &str) -> LexedFile {
    let bytes = source.as_bytes();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let comment = &source[start..i];
                if let Some(pos) = comment.find(MARKER) {
                    let rest = comment[pos + MARKER.len()..].trim();
                    if let Some(tail) = rest.strip_prefix("host-region") {
                        out.host_regions.push(parse_host_region(line, tail));
                    } else {
                        out.allows.push(parse_annotation(line, rest));
                    }
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, possibly nested.
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => i = skip_string(bytes, i, &mut line),
            b'\'' => i = skip_char_or_lifetime(bytes, i, &mut line),
            c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                // Non-ASCII bytes join the identifier: a Unicode ident must
                // lex as one token, never split into ASCII fragments that
                // could fabricate (or hide) a watched name.
                let start = i;
                while i < bytes.len()
                    && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric() || bytes[i] >= 0x80)
                {
                    i += 1;
                }
                let text = &source[start..i];
                // String prefixes: r"", r#""#, b"", br"", b''; also raw
                // identifiers r#name.
                match (text, bytes.get(i)) {
                    ("r" | "br" | "b" | "rb", Some(&b'"')) => {
                        i = if text.contains('r') {
                            skip_raw_string(bytes, i, 0, &mut line)
                        } else {
                            skip_string(bytes, i, &mut line)
                        };
                    }
                    ("r" | "br" | "b" | "rb", Some(&b'#')) => {
                        let mut hashes = 0usize;
                        let mut j = i;
                        while bytes.get(j) == Some(&b'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&b'"') {
                            i = skip_raw_string(bytes, j, hashes, &mut line);
                        } else {
                            // Raw identifier (r#match): lex the ident after the '#'.
                            i = j;
                            let start = i;
                            while i < bytes.len()
                                && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric())
                            {
                                i += 1;
                            }
                            out.tokens.push(Token {
                                kind: TokenKind::Ident,
                                text: source[start..i].to_string(),
                                line,
                            });
                        }
                    }
                    ("b", Some(&b'\'')) => i = skip_char_or_lifetime(bytes, i, &mut line),
                    _ => out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: text.to_string(),
                        line,
                    }),
                }
            }
            c if c.is_ascii_digit() => {
                // Numeric literal (taking care not to swallow the `..` of a
                // range like `0..10`). Emitted as a token so rules can see
                // e.g. the float seed of a `fold(0.0, ..)`.
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                if bytes.get(i) == Some(&b'.')
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    i += 1;
                    while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric())
                    {
                        i += 1;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            b':' if bytes.get(i + 1) == Some(&b':') => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: "::".to_string(),
                    line,
                });
                i += 2;
            }
            c => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Consumes a `"..."` string starting at the opening quote (or at a `b`/`r`
/// prefix position where `bytes[i]` is the quote). Returns the index after
/// the closing quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(bytes[i], b'"');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                // Escapes cover two bytes; `\<newline>` (line continuation)
                // still advances the line counter.
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Consumes a raw string whose opening quote is at `i` with `hashes` hash
/// marks. Returns the index after the closing delimiter.
fn skip_raw_string(bytes: &[u8], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    debug_assert_eq!(bytes[i], b'"');
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if bytes[i] == b'"'
            && bytes[i + 1..].iter().take_while(|&&b| b == b'#').count() >= hashes
        {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// Consumes either a lifetime (`'a`, no token emitted) or a char literal
/// (`'x'`, `'\n'`), starting at the `'`. Returns the index after it.
fn skip_char_or_lifetime(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(bytes[i], b'\'');
    i += 1;
    if i >= bytes.len() {
        return i;
    }
    let c = bytes[i];
    if (c == b'_' || c.is_ascii_alphabetic()) && bytes.get(i + 1) != Some(&b'\'') {
        // Lifetime: consume the identifier and stop (no closing quote).
        while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
            i += 1;
        }
        return i;
    }
    // Char literal; handle escapes and give up at end of line (malformed).
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => {
                *line += 1;
                return i + 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Parses the text after `comfase-lint:` into an [`AllowAnnotation`].
fn parse_annotation(line: u32, rest: &str) -> AllowAnnotation {
    let malformed = |problem: &str| AllowAnnotation {
        line,
        rule: String::new(),
        reason: String::new(),
        problem: Some(problem.to_string()),
    };
    let rest = rest.trim();
    let Some(body) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
    else {
        return malformed("expected `allow(<rule>, reason = \"...\")`");
    };
    let Some((rule, reason_part)) = body.split_once(',') else {
        return malformed("missing `reason = \"...\"` (a non-empty reason is required)");
    };
    let rule = rule.trim().to_string();
    let Some(reason_value) = reason_part.trim().strip_prefix("reason") else {
        return malformed("expected `reason = \"...\"` after the rule name");
    };
    let Some(quoted) = reason_value.trim().strip_prefix('=') else {
        return malformed("expected `=` after `reason`");
    };
    let quoted = quoted.trim();
    let reason = quoted
        .strip_prefix('"')
        .and_then(|q| q.strip_suffix('"'))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return malformed("the reason must be a non-empty quoted string");
    }
    AllowAnnotation {
        line,
        rule,
        reason: reason.to_string(),
        problem: None,
    }
}

/// Parses the text after `comfase-lint: host-region` into a
/// [`HostRegionAnnotation`].
fn parse_host_region(line: u32, rest: &str) -> HostRegionAnnotation {
    let malformed = |problem: &str| HostRegionAnnotation {
        line,
        reason: String::new(),
        problem: Some(problem.to_string()),
    };
    let rest = rest.trim();
    let Some(body) = rest.strip_prefix('(').and_then(|r| r.strip_suffix(')')) else {
        return malformed("expected `host-region(reason = \"...\")`");
    };
    let Some(value) = body.trim().strip_prefix("reason") else {
        return malformed("expected `reason = \"...\"` inside `host-region(...)`");
    };
    let Some(quoted) = value.trim().strip_prefix('=') else {
        return malformed("expected `=` after `reason`");
    };
    let reason = quoted
        .trim()
        .strip_prefix('"')
        .and_then(|q| q.strip_suffix('"'))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return malformed("the host-region reason must be a non-empty quoted string");
    }
    HostRegionAnnotation {
        line,
        reason: reason.to_string(),
        problem: None,
    }
}

/// One resolved host-side region: the inclusive line span a well-formed
/// `host-region` marker covers, plus the marker it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostRegion {
    /// Line of the marker comment.
    pub marker_line: u32,
    /// First exempt line.
    pub start: u32,
    /// Last exempt line (`u32::MAX` for file-scope / trailing regions).
    pub end: u32,
    /// The justification carried by the marker.
    pub reason: String,
}

/// Resolves well-formed `host-region` markers to line spans.
///
/// A marker placed before the first token of the file *and* separated from
/// it by at least one line covers the whole file; a marker directly above
/// an item (or trailing on its first line) covers that one item (attributes
/// included), ending at the item's closing `}` or `;` — the same span logic
/// as test regions.
pub fn host_region_ranges(lexed: &LexedFile) -> Vec<HostRegion> {
    let first_code_line = lexed.tokens.first().map_or(u32::MAX, |t| t.line);
    let mut out = Vec::new();
    for marker in &lexed.host_regions {
        if marker.problem.is_some() {
            continue;
        }
        if marker.line.saturating_add(1) < first_code_line {
            out.push(HostRegion {
                marker_line: marker.line,
                start: 1,
                end: u32::MAX,
                reason: marker.reason.clone(),
            });
            continue;
        }
        let end = item_end_after(&lexed.tokens, marker.line);
        out.push(HostRegion {
            marker_line: marker.line,
            start: marker.line,
            end,
            reason: marker.reason.clone(),
        });
    }
    out
}

/// Line on which the item starting at or after `line` ends (closing `}` or
/// `;`), or `u32::MAX` when no such item end is found.
fn item_end_after(tokens: &[Token], line: u32) -> u32 {
    let mut j = match tokens.iter().position(|t| t.line >= line) {
        Some(j) => j,
        None => return u32::MAX,
    };
    // Skip leading attributes.
    while tokens.get(j).is_some_and(|t| t.is_punct("#"))
        && tokens.get(j + 1).is_some_and(|t| t.is_punct("["))
    {
        match matching(tokens, j + 1, "[", "]") {
            Some(c) => j = c + 1,
            None => return u32::MAX,
        }
    }
    while let Some(t) = tokens.get(j) {
        if t.is_punct(";") {
            return t.line;
        }
        if t.is_punct("{") {
            return match matching(tokens, j, "{", "}") {
                Some(e) => tokens[e].line,
                None => u32::MAX,
            };
        }
        j += 1;
    }
    u32::MAX
}

/// Returns the inclusive line ranges of test-only items: any item annotated
/// `#[test]` or `#[cfg(test)]` (including `mod tests { ... }` blocks).
///
/// These regions are exempt from the determinism rules.
pub fn test_line_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let Some(close) = matching(tokens, i + 1, "[", "]") else {
            break;
        };
        let attr = &tokens[i + 2..close];
        let is_test = (attr.len() == 1 && attr[0].is_ident("test"))
            || (attr.iter().any(|t| t.is_ident("cfg")) && attr.iter().any(|t| t.is_ident("test")));
        if !is_test {
            i = close + 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip any further attributes, then find the item body (or `;`).
        let mut j = close + 1;
        while tokens.get(j).is_some_and(|t| t.is_punct("#"))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct("["))
        {
            match matching(tokens, j + 1, "[", "]") {
                Some(c) => j = c + 1,
                None => return ranges,
            }
        }
        let mut end = None;
        while let Some(t) = tokens.get(j) {
            if t.is_punct(";") {
                end = Some(j);
                break;
            }
            if t.is_punct("{") {
                end = matching(tokens, j, "{", "}");
                break;
            }
            j += 1;
        }
        match end {
            Some(e) => {
                ranges.push((start_line, tokens[e].line));
                i = e + 1;
            }
            None => {
                ranges.push((start_line, u32::MAX));
                break;
            }
        }
    }
    ranges
}

/// Index of the token matching the opener at `open_idx` (`tokens[open_idx]`
/// must be `open`), or `None` if unbalanced.
fn matching(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    debug_assert!(tokens[open_idx].is_punct(open));
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            /// doc HashMap
            let s = "HashMap";
            let r = r#"HashMap"#;
            let c = 'H';
            let real = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"BTreeMap".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a HashMap<u32, u32>) {}");
        assert!(ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn numbers_and_ranges_survive() {
        let ids = idents("for i in 0..10 { let x = 1.5e3; HashSet }");
        assert!(ids.contains(&"HashSet".to_string()));
    }

    #[test]
    fn path_sep_is_one_token() {
        let lexed = lex("std::env::var");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["std", "::", "env", "::", "var"]);
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn multiline_strings_count_lines() {
        // Both a hard newline and a `\`-continuation inside a string advance
        // the line counter.
        let lexed = lex("let a = \"x\ny \\\nz\";\nHashMap");
        let t = lexed.tokens.last().unwrap();
        assert!(t.is_ident("HashMap"));
        assert_eq!(t.line, 4);
    }

    #[test]
    fn well_formed_annotation_parses() {
        let lexed = lex("// comfase-lint: allow(hash-collections, reason = \"membership only\")");
        assert_eq!(lexed.allows.len(), 1);
        let a = &lexed.allows[0];
        assert_eq!(a.rule, "hash-collections");
        assert_eq!(a.reason, "membership only");
        assert!(a.problem.is_none());
    }

    #[test]
    fn annotation_without_reason_is_malformed() {
        let lexed = lex("// comfase-lint: allow(wall-clock)");
        assert!(lexed.allows[0].problem.is_some());
        let lexed = lex("// comfase-lint: allow(wall-clock, reason = \"\")");
        assert!(lexed.allows[0].problem.is_some());
        let lexed = lex("// comfase-lint: deny(everything)");
        assert!(lexed.allows[0].problem.is_some());
    }

    #[test]
    fn cfg_test_mod_region_found() {
        let src = "struct A;\n#[cfg(test)]\nmod tests {\n fn x() {}\n}\nstruct B;";
        let lexed = lex(src);
        let ranges = test_line_ranges(&lexed.tokens);
        assert_eq!(ranges, vec![(2, 5)]);
    }

    #[test]
    fn test_fn_region_found() {
        let src = "#[test]\nfn yes() {\n body();\n}\nfn no() {}";
        let lexed = lex(src);
        let ranges = test_line_ranges(&lexed.tokens);
        assert_eq!(ranges, vec![(1, 4)]);
    }

    #[test]
    fn non_test_attrs_are_not_regions() {
        let src = "#[derive(Debug)]\nstruct A { x: u32 }";
        let lexed = lex(src);
        assert!(test_line_ranges(&lexed.tokens).is_empty());
    }

    #[test]
    fn cfg_test_on_use_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nstruct A { b: usize }";
        let lexed = lex(src);
        assert_eq!(test_line_ranges(&lexed.tokens), vec![(1, 2)]);
    }

    #[test]
    fn numbers_are_tokens_and_float_detection_works() {
        let lexed = lex("let a = 0.0; let b = 1_000; let c = 2.5e3; let d = 0x1F; let e = 3f64;");
        let nums: Vec<&Token> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .collect();
        let texts: Vec<&str> = nums.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["0.0", "1_000", "2.5e3", "0x1F", "3f64"]);
        let floats: Vec<bool> = nums.iter().map(|t| t.is_float_literal()).collect();
        assert_eq!(floats, [true, false, true, false, true]);
    }

    #[test]
    fn unicode_idents_lex_as_one_token() {
        // A split ident would fabricate ASCII fragments; `héllo` must stay
        // whole and `HashMap`-after survive.
        let ids = idents("let héllo = 1; HashMap");
        assert_eq!(ids, ["let", "héllo", "HashMap"]);
    }

    #[test]
    fn byte_and_raw_literals_are_invisible() {
        let src = r###"
            let a = b"HashMap";
            let b = br#"HashSet"#;
            let c = b'\'';
            let d = '/';
            let e = r#"Instant // thread_rng"#;
            BTreeMap
        "###;
        let ids = idents(src);
        assert_eq!(
            ids,
            ["let", "a", "let", "b", "let", "c", "let", "d", "let", "e", "BTreeMap"],
            "literals leaked tokens"
        );
        for leaked in ["HashMap", "HashSet", "Instant", "thread_rng"] {
            assert!(
                !ids.contains(&leaked.to_string()),
                "{leaked} leaked out of a literal"
            );
        }
    }

    #[test]
    fn char_literal_with_slashes_does_not_open_a_comment() {
        // A `'/'` char must not make the rest of the line look like `//`.
        let ids = idents("let sep = '/'; HashMap::new()");
        assert!(ids.contains(&"HashMap".to_string()), "{ids:?}");
    }

    #[test]
    fn host_region_annotation_parses() {
        let lexed = lex("// comfase-lint: host-region(reason = \"campaign supervision\")");
        assert_eq!(lexed.host_regions.len(), 1);
        let hr = &lexed.host_regions[0];
        assert_eq!(hr.reason, "campaign supervision");
        assert!(hr.problem.is_none());
        assert!(lexed.allows.is_empty());
    }

    #[test]
    fn host_region_without_reason_is_malformed() {
        for src in [
            "// comfase-lint: host-region",
            "// comfase-lint: host-region()",
            "// comfase-lint: host-region(reason = \"\")",
            "// comfase-lint: host-region(because)",
        ] {
            let lexed = lex(src);
            assert!(lexed.host_regions[0].problem.is_some(), "{src}");
        }
    }

    #[test]
    fn file_scope_host_region_covers_everything() {
        // A blank line between the marker and the first code makes it
        // file-scope; a marker glued to the next item is item-scope.
        let src =
            "// comfase-lint: host-region(reason = \"harness binary\")\n\nuse x;\nfn main() {}";
        let lexed = lex(src);
        let regions = host_region_ranges(&lexed);
        assert_eq!(regions.len(), 1);
        assert_eq!((regions[0].start, regions[0].end), (1, u32::MAX));
    }

    #[test]
    fn top_of_file_marker_adjacent_to_an_item_is_item_scope() {
        let src = "// comfase-lint: host-region(reason = \"one fn\")\nfn host() {}\nfn sim() {}";
        let lexed = lex(src);
        let regions = host_region_ranges(&lexed);
        assert_eq!(regions.len(), 1);
        assert_eq!((regions[0].start, regions[0].end), (1, 2));
    }

    #[test]
    fn item_scope_host_region_covers_next_item_only() {
        let src = "fn sim() {}\n// comfase-lint: host-region(reason = \"journal io\")\nfn host() {\n  x();\n}\nfn sim2() {}";
        let lexed = lex(src);
        let regions = host_region_ranges(&lexed);
        assert_eq!(regions.len(), 1);
        assert_eq!((regions[0].start, regions[0].end), (2, 5));
    }

    #[test]
    fn malformed_host_region_produces_no_range() {
        let src = "// comfase-lint: host-region()\nfn f() {}";
        let lexed = lex(src);
        assert!(host_region_ranges(&lexed).is_empty());
    }
}
