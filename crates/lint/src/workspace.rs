//! Workspace discovery: which files the `--workspace` scan covers.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The simulation crates whose `src/` trees must uphold the determinism
/// invariants. The telemetry crate (`obs`) is scanned too: its sim-side
/// recorders must never read host clocks — only the host profiler section,
/// sanctioned as a `host-region`, may.
pub const SIM_CRATES: &[&str] = &["des", "traffic", "wireless", "platoon", "core", "obs"];

/// Additional audited `crates/<name>/src` trees: host tooling whose
/// non-host-region code must still uphold the sim-determinism rules (the
/// bench harness replays campaigns and must not perturb them; the dist
/// crate partitions and merges campaigns whose artifacts must stay
/// byte-identical, so its shard/merge logic is held to the same bar).
pub const EXTRA_CRATES: &[&str] = &["bench", "dist"];

/// Walks up from `start` to the first directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(contents) = fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// All `.rs` files under `crates/<sim>/src` for every simulation crate,
/// sorted for deterministic reports.
pub fn sim_source_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for krate in SIM_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("simulation crate source dir missing: {}", src.display()),
            ));
        }
        collect_rs(&src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

/// Everything `--workspace` audits: the sim crates, the extra audited
/// crates (`bench`, `dist`), and the integration-test crate's non-test helpers
/// (`tests/src` — `tests/tests/*` files are `#[cfg(test)]`-style harnesses
/// and stay out of scope). Sorted for deterministic reports.
pub fn audited_source_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = sim_source_files(root)?;
    for krate in EXTRA_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("audited crate source dir missing: {}", src.display()),
            ));
        }
        collect_rs(&src, &mut files)?;
    }
    let tests_src = root.join("tests").join("src");
    if tests_src.is_dir() {
        collect_rs(&tests_src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

/// Recursively collects `.rs` files under `dir` (also sorted by the caller).
pub fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders `path` relative to `root` when possible (for stable diagnostics).
pub fn display_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_crate_list_matches_workspace_layout() {
        // The lint crate lives in crates/lint; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf();
        for krate in SIM_CRATES {
            assert!(
                root.join("crates").join(krate).join("src").is_dir(),
                "missing sim crate {krate}"
            );
        }
    }

    #[test]
    fn audited_scope_includes_bench_and_tests_src() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf();
        let files = audited_source_files(&root).expect("audited files");
        let labels: Vec<String> = files.iter().map(|f| display_path(&root, f)).collect();
        assert!(
            labels.iter().any(|l| l.starts_with("crates/bench/src")),
            "bench missing from audit scope: {labels:?}"
        );
        assert!(
            labels.iter().any(|l| l.starts_with("crates/dist/src")),
            "dist missing from audit scope: {labels:?}"
        );
        assert!(
            labels.iter().any(|l| l.starts_with("tests/src")),
            "tests/src missing from audit scope: {labels:?}"
        );
        assert!(
            !labels.iter().any(|l| l.starts_with("tests/tests")),
            "test harnesses must stay out of scope: {labels:?}"
        );
    }

    #[test]
    fn workspace_root_found_from_nested_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let root = find_workspace_root(&here).expect("root");
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn display_path_strips_root() {
        let root = Path::new("/a/b");
        assert_eq!(
            display_path(root, Path::new("/a/b/crates/des/src/lib.rs")),
            "crates/des/src/lib.rs"
        );
        assert_eq!(display_path(root, Path::new("/x/y.rs")), "/x/y.rs");
    }
}
