//! Workspace discovery: which files the `--workspace` scan covers.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The simulation crates whose `src/` trees must uphold the determinism
/// invariants. Test/bench/example code and the tooling crates (`bench`,
/// `lint`) are intentionally not scanned. The telemetry crate (`obs`) is
/// scanned too: its sim-side recorders must never read host clocks — only
/// the explicitly waived host profiler section may.
pub const SIM_CRATES: &[&str] = &["des", "traffic", "wireless", "platoon", "core", "obs"];

/// Walks up from `start` to the first directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(contents) = fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// All `.rs` files under `crates/<sim>/src` for every simulation crate,
/// sorted for deterministic reports.
pub fn sim_source_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for krate in SIM_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("simulation crate source dir missing: {}", src.display()),
            ));
        }
        collect_rs(&src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

/// Recursively collects `.rs` files under `dir` (also sorted by the caller).
pub fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders `path` relative to `root` when possible (for stable diagnostics).
pub fn display_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_crate_list_matches_workspace_layout() {
        // The lint crate lives in crates/lint; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf();
        for krate in SIM_CRATES {
            assert!(
                root.join("crates").join(krate).join("src").is_dir(),
                "missing sim crate {krate}"
            );
        }
    }

    #[test]
    fn workspace_root_found_from_nested_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let root = find_workspace_root(&here).expect("root");
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn display_path_strips_root() {
        let root = Path::new("/a/b");
        assert_eq!(
            display_path(root, Path::new("/a/b/crates/des/src/lib.rs")),
            "crates/des/src/lib.rs"
        );
        assert_eq!(display_path(root, Path::new("/x/y.rs")), "/x/y.rs");
    }
}
