//! Incremental lint cache keyed by file content hash.
//!
//! The per-file phase of the auditor (lex → textual findings plus
//! annotations and symbol summary) is a pure function of the file's bytes, so its output
//! can be reused verbatim whenever the content hash matches. The cross-file
//! use-graph pass is *not* cached — it depends on every file's symbols and
//! is cheap (a table join), so it always runs over the (mostly cached)
//! phase-1 artifacts. A warm workspace lint therefore does no lexing at all
//! and completes in milliseconds, while still catching cross-file
//! regressions: editing one file re-lexes only that file, and the use-graph
//! re-resolves against the updated symbol table.
//!
//! The cache file (`.lint-cache.json`) is written deterministically
//! (`BTreeMap` order) and versioned: a version mismatch or any parse
//! irregularity simply drops the cache (correctness never depends on it).

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::diagnostics::json_string as js;
use crate::json::{self, Value};
use crate::lexer::HostRegion;
use crate::rules::{static_rule_id, RawFinding};
use crate::usegraph::{BindKind, Binding, FileSymbols, UseSite};
use crate::{AllowSite, FileAnalysis};

/// Format version of `.lint-cache.json`.
pub const CACHE_VERSION: u64 = 1;

/// Content hash of a source file: 64-bit FNV-1a folded over 8-byte chunks
/// (chunking keeps debug-build hashing fast enough for the warm-lint
/// latency target; the exact function only needs to be stable, not
/// standard).
pub fn content_hash(source: &str) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let bytes = source.as_bytes();
    let mut h = OFFSET ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h ^= word;
        h = h.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:016x}")
}

/// A loaded cache: per-file phase-1 analyses keyed by display label.
#[derive(Debug, Default)]
pub struct Cache {
    files: BTreeMap<String, FileAnalysis>,
}

impl Cache {
    /// Returns the cached analysis for `label` when its content hash
    /// matches the current file bytes.
    pub fn lookup(&self, label: &str, hash: &str) -> Option<FileAnalysis> {
        self.files.get(label).filter(|a| a.hash == hash).cloned()
    }

    /// Number of cached file entries.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

/// Loads the cache, returning an empty cache on any miss, version mismatch
/// or parse irregularity (the cache is an accelerator, never an input).
pub fn load(path: &Path) -> Cache {
    let Ok(text) = fs::read_to_string(path) else {
        return Cache::default();
    };
    let Ok(root) = json::parse(&text) else {
        return Cache::default();
    };
    if root.get("version").and_then(Value::as_u64) != Some(CACHE_VERSION) {
        return Cache::default();
    }
    let Some(files) = root.get("files").and_then(Value::as_object) else {
        return Cache::default();
    };
    let mut cache = Cache::default();
    for (label, entry) in files {
        if let Some(analysis) = decode_entry(label, entry) {
            cache.files.insert(label.clone(), analysis);
        }
    }
    cache
}

/// Writes the cache from the given analyses (deterministic key order).
///
/// # Errors
///
/// Fails when the file cannot be written.
pub fn save(path: &Path, analyses: &[FileAnalysis]) -> io::Result<()> {
    let mut entries: BTreeMap<&str, &FileAnalysis> = BTreeMap::new();
    for a in analyses {
        entries.insert(&a.label, a);
    }
    let mut out = String::from("{");
    out.push_str(&format!("\"version\":{CACHE_VERSION},\"files\":{{"));
    for (i, (label, a)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&js(label));
        out.push(':');
        out.push_str(&encode_entry(a));
    }
    out.push_str("}}\n");
    fs::write(path, out)
}

fn encode_entry(a: &FileAnalysis) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"hash\":{},", js(&a.hash)));
    out.push_str("\"findings\":[");
    for (i, f) in a.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "[{},{},{},{}]",
            js(f.rule),
            f.line,
            f.host_ok,
            js(&f.message)
        ));
    }
    out.push_str("],\"allows\":[");
    for (i, al) in a.allows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "[{},{},{}]",
            al.line,
            js(&al.rule),
            js(&al.reason)
        ));
    }
    out.push_str("],\"bad\":[");
    for (i, (line, problem)) in a.bad_annotations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{line},{}]", js(problem)));
    }
    out.push_str("],\"regions\":[");
    for (i, r) in a.host_regions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "[{},{},{},{}]",
            r.marker_line,
            r.start,
            r.end,
            js(&r.reason)
        ));
    }
    out.push_str("],\"tests\":[");
    for (i, (s, e)) in a.test_ranges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{s},{e}]"));
    }
    out.push_str("],\"bindings\":[");
    for (i, b) in a.symbols.bindings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let kind = match b.kind {
            BindKind::Use => "use",
            BindKind::TypeAlias => "type",
        };
        out.push_str(&format!(
            "[{},{},{},{},{}]",
            js(&b.name),
            js(&b.target.join("::")),
            b.line,
            b.is_pub,
            js(kind)
        ));
    }
    out.push_str("],\"locals\":[");
    for (i, l) in a.symbols.locals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&js(l));
    }
    out.push_str("],\"sites\":[");
    for (i, s) in a.symbols.sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{},{}]", s.line, js(&s.path.join("::"))));
    }
    out.push_str("]}");
    out
}

fn decode_entry(label: &str, entry: &Value) -> Option<FileAnalysis> {
    let hash = entry.get("hash")?.as_str()?.to_string();
    let mut findings = Vec::new();
    for row in entry.get("findings")?.as_array()? {
        let cols = row.as_array()?;
        findings.push(RawFinding {
            rule: static_rule_id(cols.first()?.as_str()?)?,
            line: u32::try_from(cols.get(1)?.as_u64()?).ok()?,
            host_ok: matches!(cols.get(2)?, Value::Bool(true)),
            message: cols.get(3)?.as_str()?.to_string(),
        });
    }
    let mut allows = Vec::new();
    for row in entry.get("allows")?.as_array()? {
        let cols = row.as_array()?;
        allows.push(AllowSite {
            line: u32::try_from(cols.first()?.as_u64()?).ok()?,
            rule: cols.get(1)?.as_str()?.to_string(),
            reason: cols.get(2)?.as_str()?.to_string(),
        });
    }
    let mut bad_annotations = Vec::new();
    for row in entry.get("bad")?.as_array()? {
        let cols = row.as_array()?;
        bad_annotations.push((
            u32::try_from(cols.first()?.as_u64()?).ok()?,
            cols.get(1)?.as_str()?.to_string(),
        ));
    }
    let mut host_regions = Vec::new();
    for row in entry.get("regions")?.as_array()? {
        let cols = row.as_array()?;
        host_regions.push(HostRegion {
            marker_line: u32::try_from(cols.first()?.as_u64()?).ok()?,
            start: u32::try_from(cols.get(1)?.as_u64()?).ok()?,
            end: u32::try_from(cols.get(2)?.as_u64()?).ok()?,
            reason: cols.get(3)?.as_str()?.to_string(),
        });
    }
    let mut test_ranges = Vec::new();
    for row in entry.get("tests")?.as_array()? {
        let cols = row.as_array()?;
        test_ranges.push((
            u32::try_from(cols.first()?.as_u64()?).ok()?,
            u32::try_from(cols.get(1)?.as_u64()?).ok()?,
        ));
    }
    let mut symbols = FileSymbols::default();
    for row in entry.get("bindings")?.as_array()? {
        let cols = row.as_array()?;
        let kind = match cols.get(4)?.as_str()? {
            "use" => BindKind::Use,
            "type" => BindKind::TypeAlias,
            _ => return None,
        };
        symbols.bindings.push(Binding {
            name: cols.first()?.as_str()?.to_string(),
            target: split_path(cols.get(1)?.as_str()?),
            line: u32::try_from(cols.get(2)?.as_u64()?).ok()?,
            is_pub: matches!(cols.get(3)?, Value::Bool(true)),
            kind,
        });
    }
    for l in entry.get("locals")?.as_array()? {
        symbols.locals.push(l.as_str()?.to_string());
    }
    for row in entry.get("sites")?.as_array()? {
        let cols = row.as_array()?;
        symbols.sites.push(UseSite {
            line: u32::try_from(cols.first()?.as_u64()?).ok()?,
            path: split_path(cols.get(1)?.as_str()?),
        });
    }
    Some(FileAnalysis {
        label: label.to_string(),
        hash,
        findings,
        allows,
        bad_annotations,
        host_regions,
        test_ranges,
        symbols,
    })
}

fn split_path(joined: &str) -> Vec<String> {
    joined.split("::").map(str::to_string).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_source;

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let a = content_hash("fn main() {}");
        assert_eq!(a, content_hash("fn main() {}"));
        assert_ne!(a, content_hash("fn main() { }"));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn round_trip_preserves_the_analysis() {
        let src = "// comfase-lint: allow(hash-collections, reason = \"membership only\")\n\
                   use std::collections::HashMap as Map;\n\
                   // comfase-lint: host-region(reason = \"journal writer\")\n\
                   fn host() { let t = Instant::now(); }\n\
                   #[cfg(test)]\nmod tests { fn t() {} }\n";
        let analysis = analyze_source("crates/des/src/a.rs", src);
        let dir = std::env::temp_dir().join(format!("comfase-lint-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        save(&path, std::slice::from_ref(&analysis)).unwrap();
        let cache = load(&path);
        let back = cache
            .lookup("crates/des/src/a.rs", &analysis.hash)
            .expect("cache hit");
        assert_eq!(back.findings, analysis.findings);
        assert_eq!(back.allows.len(), analysis.allows.len());
        assert_eq!(back.host_regions, analysis.host_regions);
        assert_eq!(back.test_ranges, analysis.test_ranges);
        assert_eq!(back.symbols, analysis.symbols);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_hash_misses() {
        let analysis = analyze_source("a.rs", "fn f() {}");
        let dir = std::env::temp_dir().join(format!("comfase-lint-stale-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.json");
        save(&path, std::slice::from_ref(&analysis)).unwrap();
        let cache = load(&path);
        assert!(cache.lookup("a.rs", "0000000000000000").is_none());
        assert!(cache.lookup("b.rs", &analysis.hash).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_or_missing_cache_is_empty() {
        assert!(load(Path::new("/nonexistent/.lint-cache.json")).is_empty());
        let dir = std::env::temp_dir().join(format!("comfase-lint-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(load(&path).is_empty());
        std::fs::write(&path, "{\"version\": 99, \"files\": {}}").unwrap();
        assert!(load(&path).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
