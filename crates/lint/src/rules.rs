//! The determinism rule set (D1–D5) and the per-file checker.
//!
//! Each rule guards one way a simulation run can silently stop being
//! bit-reproducible. The campaign runner's golden-run comparison and the
//! prefix-fork optimisation are only sound when two runs with the same seed
//! are identical; these rules turn the known ways of losing that property
//! into CI failures. See `DESIGN.md` ("Determinism invariants") for the full
//! rationale of each rule.

use crate::diagnostics::Violation;
use crate::lexer::{lex, test_line_ranges, Token, TokenKind};

/// One auditor rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case id, used in diagnostics and `allow(...)`.
    pub id: &'static str,
    /// One-line description of what the rule forbids.
    pub summary: &'static str,
    /// Why violating it breaks reproducibility.
    pub why: &'static str,
}

/// Rule id for D1.
pub const HASH_COLLECTIONS: &str = "hash-collections";
/// Rule id for D2.
pub const WALL_CLOCK: &str = "wall-clock";
/// Rule id for D3.
pub const AMBIENT_RNG: &str = "ambient-rng";
/// Rule id for D4.
pub const GLOBAL_STATE: &str = "global-state";
/// Rule id for D5.
pub const FLOAT_ORDERING: &str = "float-ordering";
/// Pseudo-rule id for malformed `comfase-lint:` annotations.
pub const BAD_ANNOTATION: &str = "bad-annotation";

/// The full rule set, in diagnostic order.
pub const RULES: &[Rule] = &[
    Rule {
        id: HASH_COLLECTIONS,
        summary: "no `HashMap`/`HashSet` in simulation-state code (use `BTreeMap`/`BTreeSet`)",
        why: "hash iteration order is randomized per process, so any iteration \
              or serialization leaks nondeterminism into forked/snapshot runs",
    },
    Rule {
        id: WALL_CLOCK,
        summary: "no wall-clock reads (`Instant`, `SystemTime`) in simulation code",
        why: "simulation time must come from the DES kernel clock; wall-clock \
              values differ between runs and between fork points",
    },
    Rule {
        id: AMBIENT_RNG,
        summary: "no ambient randomness (`thread_rng`, `rand::random`, `from_entropy`, `OsRng`)",
        why: "all randomness must flow from seeded `comfase-des` RNG streams so \
              equal seeds give bit-identical runs",
    },
    Rule {
        id: GLOBAL_STATE,
        summary: "no mutable globals (`static mut`, `lazy_static`, `OnceLock`) or `std::env` reads",
        why: "process-global state survives across experiments and forks, and \
              environment reads make results depend on the host shell",
    },
    Rule {
        id: FLOAT_ORDERING,
        summary: "no `.partial_cmp(..).unwrap()`/`.expect(..)` on floats (use `total_cmp`)",
        why: "partial comparisons panic or reorder on NaN; `total_cmp` gives a \
              deterministic total order for every input",
    },
];

/// `true` if `id` names a real rule (annotations may only reference these).
pub fn is_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Identifiers that fire D1 wherever they appear in non-test code.
const HASH_IDENTS: &[&str] = &[
    "HashMap",
    "HashSet",
    "RandomState",
    "AHashMap",
    "AHashSet",
    "FxHashMap",
    "FxHashSet",
    "IndexMap",
    "IndexSet",
];

/// Identifiers that fire D2.
const CLOCK_IDENTS: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];

/// Identifiers that fire D3.
const RNG_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "getrandom",
];

/// Identifiers that fire D4 on their own.
const GLOBAL_IDENTS: &[&str] = &["lazy_static", "OnceLock", "OnceCell", "LazyLock"];

/// `env::<fn>` calls that fire D4.
const ENV_FNS: &[&str] = &["var", "vars", "var_os", "vars_os", "args", "args_os"];

/// Scans one file and returns its violations.
///
/// `file` is only used to label diagnostics. Test regions (`#[cfg(test)]`,
/// `#[test]`) are exempt; sites carrying a well-formed matching
/// `comfase-lint: allow(...)` annotation (same line or the line above) are
/// suppressed; malformed annotations are themselves reported as
/// [`BAD_ANNOTATION`] violations.
pub fn check_file(file: &str, source: &str) -> Vec<Violation> {
    let lexed = lex(source);
    let test_ranges = test_line_ranges(&lexed.tokens);
    let lines: Vec<&str> = source.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let in_tests = |line: u32| test_ranges.iter().any(|&(s, e)| s <= line && line <= e);

    let mut raw: Vec<(&'static str, u32, String)> = Vec::new();
    scan_tokens(&lexed.tokens, &mut raw);

    let mut out = Vec::new();
    for (rule_id, line, message) in raw {
        if in_tests(line) {
            continue;
        }
        let allowed = lexed.allows.iter().any(|a| {
            a.problem.is_none() && a.rule == rule_id && (a.line == line || a.line + 1 == line)
        });
        if allowed {
            continue;
        }
        out.push(Violation {
            rule: rule_id.to_string(),
            file: file.to_string(),
            line,
            message,
            snippet: snippet(line),
        });
    }
    for a in &lexed.allows {
        if in_tests(a.line) {
            continue;
        }
        let problem = match &a.problem {
            Some(p) => Some(p.clone()),
            None if !is_rule(&a.rule) => Some(format!(
                "unknown rule `{}`; known rules: {}",
                a.rule,
                RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
            )),
            None => None,
        };
        if let Some(p) = problem {
            out.push(Violation {
                rule: BAD_ANNOTATION.to_string(),
                file: file.to_string(),
                line: a.line,
                message: format!("malformed lint annotation: {p}"),
                snippet: snippet(a.line),
            });
        }
    }
    out.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    out
}

/// Runs every rule over the token stream, pushing `(rule, line, message)`.
fn scan_tokens(tokens: &[Token], raw: &mut Vec<(&'static str, u32, String)>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            // D4: `static mut` items.
            continue;
        }
        let text = t.text.as_str();
        if HASH_IDENTS.contains(&text) {
            raw.push((
                HASH_COLLECTIONS,
                t.line,
                format!(
                    "`{text}` in simulation-state code: iteration order is \
                     nondeterministic and breaks fork bit-identity; use \
                     `BTreeMap`/`BTreeSet`"
                ),
            ));
        } else if CLOCK_IDENTS.contains(&text) {
            raw.push((
                WALL_CLOCK,
                t.line,
                format!(
                    "wall-clock `{text}` in simulation code: time must come \
                     from the DES kernel (`Simulator::now`), never the host clock"
                ),
            ));
        } else if RNG_IDENTS.contains(&text) {
            raw.push((
                AMBIENT_RNG,
                t.line,
                format!(
                    "ambient randomness `{text}`: use a seeded \
                     `comfase_des::rng::RngStream` so equal seeds reproduce runs"
                ),
            ));
        } else if GLOBAL_IDENTS.contains(&text) {
            raw.push((
                GLOBAL_STATE,
                t.line,
                format!(
                    "`{text}` creates process-global state that leaks across \
                     experiments; thread state through `World` instead"
                ),
            ));
        } else if text == "static" && tokens.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            raw.push((
                GLOBAL_STATE,
                t.line,
                "`static mut` is mutable global state; thread state through \
                 `World` instead"
                    .to_string(),
            ));
        } else if text == "env"
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && tokens
                .get(i + 2)
                .is_some_and(|n| n.kind == TokenKind::Ident && ENV_FNS.contains(&n.text.as_str()))
        {
            raw.push((
                GLOBAL_STATE,
                t.line,
                format!(
                    "`env::{}` read in simulation code: results must not depend \
                     on the host environment; take configuration explicitly",
                    tokens[i + 2].text
                ),
            ));
        } else if text == "std"
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|n| n.is_ident("env"))
            && !tokens.get(i + 3).is_some_and(|n| n.is_punct("::"))
        {
            // `use std::env;` (the qualified-call form is caught above).
            raw.push((
                GLOBAL_STATE,
                t.line,
                "`std::env` in simulation code: results must not depend on the \
                 host environment"
                    .to_string(),
            ));
        } else if text == "rand" && tokens.get(i + 1).is_some_and(|n| n.is_punct("::")) {
            if tokens.get(i + 2).is_some_and(|n| n.is_ident("random")) {
                raw.push((
                    AMBIENT_RNG,
                    t.line,
                    "`rand::random` draws from the thread-local RNG; use a \
                     seeded `comfase_des::rng::RngStream`"
                        .to_string(),
                ));
            }
        } else if text == "partial_cmp"
            && i > 0
            && tokens[i - 1].is_punct(".")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            // D5: `.partial_cmp(..)` whose result is immediately unwrapped.
            if let Some(close) = matching_paren(tokens, i + 1) {
                if tokens.get(close + 1).is_some_and(|n| n.is_punct("."))
                    && tokens
                        .get(close + 2)
                        .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                {
                    raw.push((
                        FLOAT_ORDERING,
                        t.line,
                        format!(
                            "`.partial_cmp(..).{}()` panics or misorders on NaN; \
                             use `f64::total_cmp` for a deterministic total order",
                            tokens[close + 2].text
                        ),
                    ));
                }
            }
        }
    }
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(src: &str) -> Vec<String> {
        check_file("test.rs", src)
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn hash_map_field_fires() {
        assert_eq!(
            rules_hit("struct S { m: HashMap<u32, u32> }"),
            vec![HASH_COLLECTIONS]
        );
    }

    #[test]
    fn instant_now_fires() {
        assert_eq!(
            rules_hit("fn f() { let t = Instant::now(); }"),
            vec![WALL_CLOCK]
        );
    }

    #[test]
    fn thread_rng_and_rand_random_fire() {
        assert_eq!(
            rules_hit("fn f() { let x = thread_rng(); let y: f64 = rand::random(); }"),
            vec![AMBIENT_RNG, AMBIENT_RNG]
        );
    }

    #[test]
    fn static_mut_and_env_fire() {
        assert_eq!(
            rules_hit("static mut COUNTER: u32 = 0;"),
            vec![GLOBAL_STATE]
        );
        assert_eq!(
            rules_hit("fn f() { let p = std::env::var(\"PATH\"); }"),
            vec![GLOBAL_STATE]
        );
        assert_eq!(rules_hit("use std::env;"), vec![GLOBAL_STATE]);
    }

    #[test]
    fn immutable_static_is_fine() {
        assert!(rules_hit("static NAME: &str = \"x\";").is_empty());
    }

    #[test]
    fn partial_cmp_unwrap_fires_across_lines() {
        let src = "fn f(a: f64, b: f64) { a.partial_cmp(&b)\n    .unwrap(); }";
        assert_eq!(rules_hit(src), vec![FLOAT_ORDERING]);
    }

    #[test]
    fn partial_cmp_definition_does_not_fire() {
        let src = "impl PartialOrd for S { fn partial_cmp(&self, o: &Self) -> Option<Ordering> { Some(self.cmp(o)) } }";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn handled_partial_cmp_does_not_fire() {
        assert!(rules_hit(
            "fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap_or(Ordering::Equal); }"
        )
        .is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n use std::collections::HashMap;\n fn t() { let i = Instant::now(); }\n}";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses_same_line_and_next_line() {
        let trailing = "struct S { m: HashSet<u32> } // comfase-lint: allow(hash-collections, reason = \"membership only\")";
        assert!(rules_hit(trailing).is_empty());
        let above =
            "// comfase-lint: allow(hash-collections, reason = \"membership only\")\nstruct S { m: HashSet<u32> }";
        assert!(rules_hit(above).is_empty());
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src =
            "// comfase-lint: allow(wall-clock, reason = \"wrong rule\")\nstruct S { m: HashSet<u32> }";
        assert_eq!(rules_hit(src), vec![HASH_COLLECTIONS]);
    }

    #[test]
    fn malformed_annotation_is_reported() {
        assert_eq!(
            rules_hit("// comfase-lint: allow(hash-collections)"),
            vec![BAD_ANNOTATION]
        );
        assert_eq!(
            rules_hit("// comfase-lint: allow(no-such-rule, reason = \"hm\")"),
            vec![BAD_ANNOTATION]
        );
    }

    #[test]
    fn clean_source_is_silent() {
        let src = "use std::collections::BTreeMap;\nstruct S { m: BTreeMap<u32, u32> }";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn violations_carry_location_and_snippet() {
        let v = check_file("crates/x/src/a.rs", "\nstruct S { m: HashMap<u32, u32> }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].file, "crates/x/src/a.rs");
        assert_eq!(v[0].line, 2);
        assert!(v[0].snippet.contains("HashMap"));
    }
}
